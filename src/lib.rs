//! # P3GM — Privacy-Preserving Phased Generative Model
//!
//! A from-scratch Rust reproduction of
//! *"P3GM: Private High-Dimensional Data Release via Privacy Preserving
//! Phased Generative Model"* (Takagi, Takahashi, Cao, Yoshikawa — ICDE 2021).
//!
//! This crate is a thin facade that re-exports the workspace:
//!
//! * [`store`] — versioned binary snapshot codec for persisting trained
//!   models (magic + version + tags + checksum, std-only, no serde).
//! * [`server`] — std-only HTTP synthesis service serving snapshot files
//!   (model registry with hot reload, privacy budget ledger, strict
//!   request parsing).
//! * [`obs`] — deterministic observability core (atomic counters, gauges,
//!   fixed-bucket histograms, Prometheus text exposition, injectable-clock
//!   spans); telemetry is post-processing and never part of DP state.
//! * [`parallel`] — deterministic std-only data parallelism (scoped thread
//!   pool, ordered map-reduce, `P3GM_THREADS` override).
//! * [`linalg`] — dense matrices, Jacobi eigendecomposition, Cholesky.
//! * [`nn`] — MLP/CNN layers, per-example backprop, optimizers, DP-SGD.
//! * [`privacy`] — DP mechanisms (Gaussian, Laplace, Wishart, exponential)
//!   and accounting (RDP, moments accountant, zCDP, calibration).
//! * [`preprocess`] — PCA / DP-PCA, scalers, encoders.
//! * [`mixture`] — GMM, EM, DP-EM, (DP) k-means.
//! * [`datasets`] — synthetic stand-ins for the paper's six datasets.
//! * [`classifiers`] — logistic regression, AdaBoost, GBM, XGBoost-style
//!   boosting, MLP/CNN classifiers, AUROC/AUPRC/accuracy.
//! * [`core`] — VAE, DP-VAE, PGM, P3GM, P3GM(AE) and labelled synthesis.
//! * [`baselines`] — DP-GM and PrivBayes.
//! * [`eval`] — the experiment harness regenerating every table and figure
//!   of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```no_run
//! use p3gm::core::{PgmConfig, PhasedGenerativeModel, GenerativeModel};
//! use p3gm::datasets::tabular::adult_like;
//! use p3gm::core::synthesis::LabelledSynthesizer;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let data = adult_like(&mut rng, 2000);
//! let (synth, prepared) =
//!     LabelledSynthesizer::prepare(&data.features, &data.labels, data.n_classes).unwrap();
//! let config = PgmConfig::default();           // (ε ≈ 1, δ = 1e-5) training
//! let (model, _history) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).unwrap();
//! println!("privacy: {:?}", model.training_privacy_spec());
//! let samples = model.sample(&mut rng, 100);   // differentially private synthetic rows
//! assert_eq!(samples.rows(), 100);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `EXPERIMENTS.md`
//! for the paper-vs-measured comparison of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Versioned binary snapshot codec (model persistence).
pub use p3gm_store as store;

/// HTTP synthesis service (model registry, hot reload, budget ledger).
pub use p3gm_server as server;

/// Deterministic metrics, Prometheus exposition, and injectable-clock spans.
pub use p3gm_obs as obs;

/// Deterministic data-parallel execution layer.
pub use p3gm_parallel as parallel;

/// Dense linear algebra substrate.
pub use p3gm_linalg as linalg;

/// Neural-network substrate (MLP, CNN, DP-SGD).
pub use p3gm_nn as nn;

/// Differential-privacy mechanisms and accounting.
pub use p3gm_privacy as privacy;

/// Preprocessing: PCA/DP-PCA, scalers, encoders.
pub use p3gm_preprocess as preprocess;

/// Gaussian mixtures, EM/DP-EM, k-means.
pub use p3gm_mixture as mixture;

/// Synthetic datasets mirroring the paper's evaluation data.
pub use p3gm_datasets as datasets;

/// Downstream classifiers and metrics.
pub use p3gm_classifiers as classifiers;

/// The P3GM model family (VAE, DP-VAE, PGM, P3GM, P3GM(AE)).
pub use p3gm_core as core;

/// Baseline DP generative models (DP-GM, PrivBayes).
pub use p3gm_baselines as baselines;

/// Experiment harness for the paper's tables and figures.
pub use p3gm_eval as eval;
