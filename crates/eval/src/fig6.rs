//! Figure 6: privacy composition — the total ε of the P3GM pipeline as a
//! function of the DP-SGD noise multiplier σ_s, computed with (a) the
//! paper's RDP composition (Theorem 4) and (b) the baseline composition
//! (zCDP for DP-EM + plain moments accountant for DP-SGD + sequential
//! combination).
//!
//! The paper's claim, which this experiment verifies numerically: the RDP
//! composition yields a strictly smaller ε across the sweep. We also report
//! the tighter sampled-Gaussian RDP bound as an ablation (it is what most
//! production accountants implement).

use crate::report::{fmt_eps, TextTable};
use crate::scale::Scale;
use p3gm_privacy::rdp::{DpSgdBound, RdpAccountant};
use p3gm_privacy::zcdp::baseline_composition_epsilon;

/// The pipeline parameters the sweep holds fixed (a scaled-down version of
/// the paper's MNIST schedule).
#[derive(Debug, Clone, Copy)]
pub struct Fig6Setting {
    /// DP-PCA budget ε_p.
    pub eps_p: f64,
    /// DP-EM iterations T_e.
    pub t_e: usize,
    /// DP-EM noise multiplier σ_e.
    pub sigma_e: f64,
    /// Number of MoG components.
    pub k: usize,
    /// DP-SGD steps T_s.
    pub t_s: usize,
    /// DP-SGD sampling probability q.
    pub q: f64,
    /// Target δ.
    pub delta: f64,
}

impl Default for Fig6Setting {
    fn default() -> Self {
        Fig6Setting {
            eps_p: 0.1,
            t_e: 20,
            sigma_e: 150.0,
            k: 3,
            t_s: 2000,
            q: 0.005,
            delta: 1e-5,
        }
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// The DP-SGD noise multiplier.
    pub sigma_s: f64,
    /// Total ε under the paper's RDP composition (Theorem 4, Eq. 4 bound).
    pub eps_rdp: f64,
    /// Total ε under the zCDP + MA baseline composition.
    pub eps_baseline: f64,
    /// Total ε when the DP-SGD term uses the tighter sampled-Gaussian RDP
    /// bound (ablation).
    pub eps_rdp_sampled_gaussian: f64,
}

/// The regenerated Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Report {
    /// The fixed pipeline parameters.
    pub setting: Fig6Setting,
    /// One point per σ_s value.
    pub points: Vec<Fig6Point>,
}

/// Runs the Figure 6 sweep with the default σ_s grid for the scale.
pub fn run(scale: Scale) -> Fig6Report {
    let sigmas: Vec<f64> = match scale {
        Scale::Smoke => vec![1.0, 4.0, 16.0],
        Scale::Paper => vec![1.0, 1.42, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0],
    };
    run_sweep(Fig6Setting::default(), &sigmas)
}

/// Runs the sweep for an explicit setting and σ_s grid.
pub fn run_sweep(setting: Fig6Setting, sigmas: &[f64]) -> Fig6Report {
    let points = sigmas
        .iter()
        .map(|&sigma_s| {
            let eps_rdp = RdpAccountant::p3gm_total(
                setting.eps_p,
                setting.t_e,
                setting.sigma_e,
                setting.k,
                setting.t_s,
                setting.q,
                sigma_s,
                setting.delta,
            )
            .expect("valid accounting parameters")
            .epsilon;
            let eps_baseline = baseline_composition_epsilon(
                setting.eps_p,
                setting.t_e,
                setting.sigma_e,
                setting.k,
                setting.t_s,
                setting.q,
                sigma_s,
                setting.delta,
            )
            .expect("valid accounting parameters");
            let eps_sg = {
                let mut acc = RdpAccountant::default();
                acc.add_pure_dp(setting.eps_p).expect("valid eps_p");
                acc.add_dp_em(setting.t_e, setting.sigma_e, setting.k)
                    .expect("valid DP-EM parameters");
                acc.add_dp_sgd(setting.t_s, setting.q, sigma_s, DpSgdBound::SampledGaussian)
                    .expect("valid DP-SGD parameters");
                acc.to_dp(setting.delta).expect("valid delta").epsilon
            };
            Fig6Point {
                sigma_s,
                eps_rdp,
                eps_baseline,
                eps_rdp_sampled_gaussian: eps_sg,
            }
        })
        .collect();
    Fig6Report { setting, points }
}

impl Fig6Report {
    /// Renders the sweep as a text table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "Figure 6: total epsilon vs DP-SGD noise multiplier (T_e={}, sigma_e={}, T_s={}, q={}, delta={})\n\n",
            self.setting.t_e, self.setting.sigma_e, self.setting.t_s, self.setting.q, self.setting.delta
        );
        let mut table = TextTable::new(&[
            "sigma_s",
            "zCDP+MA (baseline)",
            "RDP (paper Thm 4)",
            "RDP sampled-Gaussian (ablation)",
        ]);
        for p in &self.points {
            table.add_row(vec![
                format!("{:.2}", p.sigma_s),
                fmt_eps(p.eps_baseline),
                fmt_eps(p.eps_rdp),
                fmt_eps(p.eps_rdp_sampled_gaussian),
            ]);
        }
        out.push_str(&table.render());
        out
    }

    /// Whether the RDP composition is tighter than the baseline at every
    /// swept point (the paper's claim).
    pub fn rdp_always_tighter(&self) -> bool {
        self.points.iter().all(|p| p.eps_rdp < p.eps_baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdp_is_tighter_across_the_sweep() {
        let report = run(Scale::Smoke);
        assert_eq!(report.points.len(), 3);
        assert!(report.rdp_always_tighter());
        // The sampled-Gaussian ablation is at least as tight as Eq. (4).
        for p in &report.points {
            assert!(p.eps_rdp_sampled_gaussian <= p.eps_rdp * 1.0001);
            assert!(p.eps_rdp.is_finite() && p.eps_rdp > 0.0);
        }
        // Epsilon decreases as sigma grows, for both methods.
        for w in report.points.windows(2) {
            assert!(w[1].eps_rdp <= w[0].eps_rdp);
            assert!(w[1].eps_baseline <= w[0].eps_baseline);
        }
        let text = report.to_text();
        assert!(text.contains("sigma_s"));
        assert!(text.contains("zCDP+MA"));
    }

    #[test]
    fn paper_scale_sweep_has_nine_points() {
        let report = run(Scale::Paper);
        assert_eq!(report.points.len(), 9);
        assert!(report.rdp_always_tighter());
    }
}
