//! # p3gm-eval
//!
//! The experiment harness that regenerates every table and figure of the
//! P3GM paper's evaluation (§VI), at a scale that runs on a single CPU core.
//!
//! | Module     | Paper artefact | What it reports |
//! |------------|----------------|-----------------|
//! | [`table5`] | Table V        | AUROC/AUPRC of four classifiers trained on VAE / PGM / P3GM synthetic Credit data |
//! | [`table6`] | Table VI       | mean AUROC/AUPRC of PrivBayes / DP-GM / P3GM / original on four tabular datasets |
//! | [`table7`] | Table VII      | classification accuracy on MNIST-like / Fashion-like synthetic images |
//! | [`fig2`]   | Figure 2       | sample sheets (ASCII) + fidelity/diversity statistics for VAE / DP-VAE / DP-GM / P3GM |
//! | [`fig4`]   | Figure 4       | AUROC/AUPRC vs ε on the Credit-like data |
//! | [`fig5`]   | Figure 5       | accuracy vs number of PCA components (plus a MoG-component ablation) |
//! | [`fig6`]   | Figure 6       | ε vs σ_s under RDP composition vs the zCDP+MA baseline |
//! | [`fig7`]   | Figure 7       | reconstruction-loss and utility learning curves for DP-VAE / P3GM(AE) / P3GM |
//!
//! Every experiment takes a [`Scale`]: [`Scale::Smoke`] keeps the runs small
//! enough for `cargo test`, [`Scale::Paper`] is the configuration the
//! benchmark harness uses to regenerate the reported numbers. The dataset
//! sizes and network widths for both scales (and how they relate to the
//! paper's originals) are recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod report;
pub mod scale;
pub mod table5;
pub mod table6;
pub mod table7;

pub use common::{GenerativeKind, TrainedGenerator};
pub use scale::Scale;
