//! Figure 5: effect of the number of PCA components `d_p` on P3GM's
//! downstream accuracy (MNIST-like data), plus an ablation over the number
//! of MoG components `d_m` that DESIGN.md calls out.
//!
//! The paper's shape: accuracy is poor for very small `d_p` (not enough
//! expressive power), peaks in an intermediate range (≈10–100 on real
//! MNIST), and degrades again when `d_p` is so large that the DP-EM prior
//! suffers from the curse of dimensionality.

use crate::common::{
    evaluate_images, experiment_rng, make_dataset, pgm_config_for, stratified_split, GenerativeKind,
};
use crate::report::{fmt_metric, TextTable};
use crate::scale::Scale;
use p3gm_classifiers::mlp_classifier::MlpClassifier;
use p3gm_core::pgm::PhasedGenerativeModel;
use p3gm_core::synthesis::{synthesize_labelled, LabelledSynthesizer};
use p3gm_datasets::DatasetKind;

/// One point of the d_p sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Number of PCA components.
    pub dp: usize,
    /// Downstream classification accuracy.
    pub accuracy: f64,
}

/// One point of the MoG-components ablation.
#[derive(Debug, Clone, Copy)]
pub struct MogAblationPoint {
    /// Number of mixture components `d_m`.
    pub dm: usize,
    /// Downstream classification accuracy.
    pub accuracy: f64,
}

/// The regenerated Figure 5 plus the d_m ablation.
#[derive(Debug, Clone)]
pub struct Fig5Report {
    /// Accuracy as a function of the number of PCA components.
    pub dp_sweep: Vec<Fig5Point>,
    /// Accuracy as a function of the number of MoG components (at the best
    /// d_p of the sweep).
    pub dm_ablation: Vec<MogAblationPoint>,
}

/// Runs the Figure 5 experiment with the default sweeps for the scale.
pub fn run(scale: Scale) -> Fig5Report {
    let (dps, dms): (Vec<usize>, Vec<usize>) = match scale {
        Scale::Smoke => (vec![2, 8], vec![2, 4]),
        Scale::Paper => (vec![2, 4, 8, 16, 32], vec![1, 3, 5]),
    };
    run_sweeps(scale, &dps, &dms)
}

/// Runs the sweeps with explicit `d_p` and `d_m` grids.
pub fn run_sweeps(scale: Scale, dps: &[usize], dms: &[usize]) -> Fig5Report {
    let mut rng = experiment_rng(55);
    let dataset = make_dataset(&mut rng, DatasetKind::Mnist, scale);
    let split = stratified_split(&mut rng, &dataset, scale.test_fraction());
    let train = &split.train;
    let test = &split.test;
    let epsilon = 1.0;
    let d = train.n_features();

    let evaluate_with =
        |latent_dim: usize, mog_components: usize, rng: &mut rand::rngs::StdRng| -> f64 {
            let (synth, prepared) =
                LabelledSynthesizer::prepare(&train.features, &train.labels, train.n_classes)
                    .expect("prepare labelled data");
            let mut cfg = pgm_config_for(
                scale,
                GenerativeKind::P3gm,
                epsilon,
                prepared.rows(),
                prepared.cols(),
            );
            cfg.latent_dim = latent_dim.min(prepared.cols() - 1).max(1);
            cfg.mog_components = mog_components.max(1);
            let (model, _) =
                PhasedGenerativeModel::fit(rng, &prepared, cfg).expect("P3GM training");
            let counts = train.matched_label_counts(scale.n_synthetic());
            let (synth_x, synth_y) =
                synthesize_labelled(&model, &synth, rng, &counts).expect("synthesis");
            let mut clf = MlpClassifier::new(
                rng,
                synth_x.cols(),
                scale.hidden_dim().max(32),
                train.n_classes,
            );
            clf.epochs = 12;
            clf.fit(rng, &synth_x, &synth_y);
            clf.score(&test.features, &test.labels)
        };

    let dp_sweep: Vec<Fig5Point> = dps
        .iter()
        .map(|&dp| Fig5Point {
            dp,
            accuracy: evaluate_with(dp.min(d), scale.mog_components(), &mut rng),
        })
        .collect();

    // Run the MoG ablation at the best d_p found in the sweep.
    let best_dp = dp_sweep
        .iter()
        .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
        .map(|p| p.dp)
        .unwrap_or(scale.latent_dim());
    let dm_ablation: Vec<MogAblationPoint> = dms
        .iter()
        .map(|&dm| MogAblationPoint {
            dm,
            accuracy: evaluate_with(best_dp.min(d), dm, &mut rng),
        })
        .collect();

    Fig5Report {
        dp_sweep,
        dm_ablation,
    }
}

/// Sanity reference: the accuracy of the full P3GM default at the same
/// scale (used by the bench narrative, not by the sweep itself).
pub fn reference_accuracy(scale: Scale) -> f64 {
    let mut rng = experiment_rng(56);
    let dataset = make_dataset(&mut rng, DatasetKind::Mnist, scale);
    let split = stratified_split(&mut rng, &dataset, scale.test_fraction());
    evaluate_images(
        &mut rng,
        GenerativeKind::P3gm,
        &split.train,
        &split.test,
        scale,
        1.0,
    )
}

impl Fig5Report {
    /// Renders both sweeps as text tables.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "Figure 5: P3GM accuracy vs number of PCA components d_p (MNIST-like, (1, 1e-5)-DP)\n\n",
        );
        let mut table = TextTable::new(&["d_p", "accuracy"]);
        for p in &self.dp_sweep {
            table.add_row(vec![p.dp.to_string(), fmt_metric(p.accuracy)]);
        }
        out.push_str(&table.render());
        out.push('\n');
        out.push_str("Ablation: accuracy vs number of MoG components d_m\n");
        let mut table = TextTable::new(&["d_m", "accuracy"]);
        for p in &self.dm_ablation {
            table.add_row(vec![p.dm.to_string(), fmt_metric(p.accuracy)]);
        }
        out.push_str(&table.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tiny_sweep() {
        let report = run_sweeps(Scale::Smoke, &[4], &[2]);
        assert_eq!(report.dp_sweep.len(), 1);
        assert_eq!(report.dm_ablation.len(), 1);
        for p in &report.dp_sweep {
            assert!(p.accuracy.is_finite() && (0.0..=1.0).contains(&p.accuracy));
        }
        let text = report.to_text();
        assert!(text.contains("d_p"));
        assert!(text.contains("d_m"));
    }
}
