//! Shared machinery of the experiment harness: dataset construction,
//! privacy-budget calibration, model training and the
//! train-on-synthetic / test-on-real evaluation protocol.

use crate::scale::Scale;
use p3gm_baselines::dpgm::{DpGm, DpGmConfig};
use p3gm_baselines::privbayes::{PrivBayes, PrivBayesConfig};
use p3gm_classifiers::mlp_classifier::MlpClassifier;
use p3gm_classifiers::suite::{evaluate_binary_suite, SuiteReport};
use p3gm_core::config::{PgmConfig, VaeConfig};
use p3gm_core::pgm::PhasedGenerativeModel;
use p3gm_core::synthesis::{synthesize_labelled, LabelledSynthesizer};
use p3gm_core::vae::Vae;
use p3gm_core::GenerativeModel;
use p3gm_datasets::dataset::{Dataset, TrainTestSplit};
use p3gm_datasets::{images, tabular, DatasetKind};
use p3gm_linalg::Matrix;
use p3gm_privacy::calibrate::{calibrate_dpem_sigma, calibrate_dpsgd_sigma};
use rand::rngs::StdRng;

/// The δ used throughout the paper's experiments.
pub const DELTA: f64 = 1e-5;

/// Which generative model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenerativeKind {
    /// Non-private VAE.
    Vae,
    /// VAE trained with DP-SGD.
    DpVae,
    /// Non-private phased generative model.
    Pgm,
    /// Differentially private phased generative model (the paper's method).
    P3gm,
    /// P3GM with frozen encoder variance (autoencoder-like ablation).
    P3gmAe,
    /// DP-GM baseline (private k-means + per-cluster VAEs).
    DpGm,
    /// PrivBayes baseline (DP Bayesian network).
    PrivBayes,
    /// No generative model: train the classifiers on the real data
    /// (the "original" column of Table VI).
    Original,
}

impl GenerativeKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            GenerativeKind::Vae => "VAE",
            GenerativeKind::DpVae => "DP-VAE",
            GenerativeKind::Pgm => "PGM",
            GenerativeKind::P3gm => "P3GM",
            GenerativeKind::P3gmAe => "P3GM(AE)",
            GenerativeKind::DpGm => "DP-GM",
            GenerativeKind::PrivBayes => "PrivBayes",
            GenerativeKind::Original => "original",
        }
    }

    /// Whether the model consumes privacy budget.
    pub fn is_private(&self) -> bool {
        matches!(
            self,
            GenerativeKind::DpVae
                | GenerativeKind::P3gm
                | GenerativeKind::P3gmAe
                | GenerativeKind::DpGm
                | GenerativeKind::PrivBayes
        )
    }
}

/// A trained generative model of any kind, sampled uniformly by the harness.
// A handful of these exist per experiment, so the size imbalance between
// variants is irrelevant; boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum TrainedGenerator {
    /// A (DP-)VAE.
    Vae(Vae),
    /// A (non-)private phased generative model.
    Pgm(PhasedGenerativeModel),
    /// The DP-GM baseline.
    DpGm(DpGm),
    /// The PrivBayes baseline.
    PrivBayes(PrivBayes),
}

impl GenerativeModel for TrainedGenerator {
    fn sample(&self, rng: &mut dyn rand::RngCore, n: usize) -> Matrix {
        match self {
            TrainedGenerator::Vae(m) => m.sample(rng, n),
            TrainedGenerator::Pgm(m) => m.sample(rng, n),
            TrainedGenerator::DpGm(m) => m.sample(rng, n),
            TrainedGenerator::PrivBayes(m) => m.sample(rng, n),
        }
    }
}

/// Builds the synthetic stand-in for one of the paper's datasets at the
/// given scale.
pub fn make_dataset(rng: &mut StdRng, kind: DatasetKind, scale: Scale) -> Dataset {
    match kind {
        DatasetKind::KaggleCredit => tabular::kaggle_credit_like(rng, scale.n_credit()),
        DatasetKind::Adult => tabular::adult_like(rng, scale.n_tabular()),
        DatasetKind::Isolet => {
            tabular::isolet_like_with_dims(rng, scale.n_tabular(), scale.isolet_dims())
        }
        DatasetKind::Esr => tabular::esr_like_with_dims(rng, scale.n_tabular(), scale.esr_dims()),
        DatasetKind::Mnist => images::mnist_like(rng, scale.n_images(), scale.image_size()),
        DatasetKind::FashionMnist => {
            images::fashion_mnist_like(rng, scale.n_images(), scale.image_size())
        }
    }
}

/// Stratified train/test split: every class is split separately so that the
/// heavily imbalanced datasets (0.2% positives) keep positives on both
/// sides.
pub fn stratified_split(rng: &mut StdRng, dataset: &Dataset, test_fraction: f64) -> TrainTestSplit {
    let mut train_parts: Vec<Dataset> = Vec::new();
    let mut test_parts: Vec<Dataset> = Vec::new();
    for class in 0..dataset.n_classes {
        let class_data = dataset.filter_by_label(class);
        if class_data.n_samples() == 0 {
            continue;
        }
        if class_data.n_samples() == 1 {
            train_parts.push(class_data);
            continue;
        }
        let split = class_data.train_test_split(rng, test_fraction);
        train_parts.push(split.train);
        test_parts.push(split.test);
    }
    TrainTestSplit {
        train: concat_datasets(&train_parts, dataset),
        test: concat_datasets(&test_parts, dataset),
    }
}

fn concat_datasets(parts: &[Dataset], template: &Dataset) -> Dataset {
    let mut features: Option<Matrix> = None;
    let mut labels: Vec<usize> = Vec::new();
    for p in parts {
        if p.n_samples() == 0 {
            continue;
        }
        features = Some(match features {
            None => p.features.clone(),
            Some(acc) => acc.vstack(&p.features).expect("parts share a width"),
        });
        labels.extend_from_slice(&p.labels);
    }
    let features = features.unwrap_or_else(|| {
        // Degenerate fallback: a single row from the template keeps the
        // downstream metric code well-defined.
        labels.push(template.labels[0]);
        template
            .features
            .select_rows(&[0])
            .expect("template has at least one row")
    });
    Dataset::new(features, labels, template.n_classes, &template.name)
}

/// Builds the P3GM configuration for a target total ε on `n` rows of `d`
/// features, calibrating σ_e and σ_s with the RDP accountant. Non-private
/// kinds get the same architecture without noise.
pub fn pgm_config_for(
    scale: Scale,
    kind: GenerativeKind,
    target_eps: f64,
    n: usize,
    d: usize,
) -> PgmConfig {
    let latent = scale.latent_dim().min(d.saturating_sub(1).max(1));
    let mut cfg = PgmConfig {
        latent_dim: latent.max(1),
        hidden_dim: scale.hidden_dim(),
        mog_components: scale.mog_components(),
        epochs: scale.epochs(),
        batch_size: scale.batch_size().min(n.max(2)),
        learning_rate: 1e-3,
        clip_norm: 1.0,
        private: matches!(kind, GenerativeKind::P3gm | GenerativeKind::P3gmAe),
        eps_p: (0.1 * target_eps).clamp(1e-3, 0.1),
        sigma_e: 100.0,
        em_iterations: 10,
        sigma_s: 1.5,
        delta: DELTA,
        variance_mode: p3gm_core::config::VarianceMode::Learned,
        decoder_loss: p3gm_core::config::DecoderLoss::Bernoulli,
    };
    if matches!(kind, GenerativeKind::P3gmAe) {
        cfg = cfg.autoencoder_variant();
    }
    if cfg.private {
        // Give DP-EM ~25% of the budget (after PCA), DP-SGD the rest.
        let em_budget = (0.25 * (target_eps - cfg.eps_p)).max(1e-3);
        cfg.sigma_e = calibrate_dpem_sigma(em_budget, DELTA, cfg.em_iterations, cfg.mog_components)
            .unwrap_or(200.0);
        let t_s = cfg.sgd_steps(n);
        let q = cfg.sampling_probability(n);
        cfg.sigma_s = calibrate_dpsgd_sigma(
            target_eps,
            DELTA,
            cfg.eps_p,
            cfg.em_iterations,
            cfg.sigma_e,
            cfg.mog_components,
            t_s,
            q,
        )
        .unwrap_or(5.0);
    }
    cfg
}

/// Builds the (DP-)VAE configuration; for DP-VAE the noise multiplier is
/// calibrated so that DP-SGD alone consumes `target_eps`.
pub fn vae_config_for(
    scale: Scale,
    private: bool,
    target_eps: f64,
    n: usize,
    d: usize,
) -> VaeConfig {
    let mut cfg = VaeConfig {
        latent_dim: scale.latent_dim().min(d.saturating_sub(1).max(1)).max(1),
        hidden_dim: scale.hidden_dim(),
        epochs: scale.epochs(),
        batch_size: scale.batch_size().min(n.max(2)),
        learning_rate: 1e-3,
        clip_norm: 1.0,
        sigma_s: 0.0,
        delta: DELTA,
        decoder_loss: p3gm_core::config::DecoderLoss::Bernoulli,
    };
    if private {
        let t_s = cfg.sgd_steps(n);
        let q = cfg.sampling_probability(n);
        cfg.sigma_s =
            calibrate_dpsgd_sigma(target_eps, DELTA, 0.0, 0, 1.0, 1, t_s, q).unwrap_or(5.0);
    }
    cfg
}

/// Trains a generative model of the requested kind on prepared rows
/// (feature-weighted `[0,1]`-scaled features + one-hot labels, see
/// `LabelledSynthesizer::prepare`) under a total budget of
/// `target_eps` (ignored by the non-private kinds).
pub fn train_generator(
    rng: &mut StdRng,
    kind: GenerativeKind,
    prepared: &Matrix,
    scale: Scale,
    target_eps: f64,
) -> TrainedGenerator {
    let n = prepared.rows();
    let d = prepared.cols();
    match kind {
        GenerativeKind::Vae => {
            let cfg = vae_config_for(scale, false, target_eps, n, d);
            let (model, _) = Vae::fit(rng, prepared, cfg).expect("VAE training failed");
            TrainedGenerator::Vae(model)
        }
        GenerativeKind::DpVae => {
            let cfg = vae_config_for(scale, true, target_eps, n, d);
            let (model, _) = Vae::fit(rng, prepared, cfg).expect("DP-VAE training failed");
            TrainedGenerator::Vae(model)
        }
        GenerativeKind::Pgm | GenerativeKind::P3gm | GenerativeKind::P3gmAe => {
            let cfg = pgm_config_for(scale, kind, target_eps, n, d);
            let (model, _) =
                PhasedGenerativeModel::fit(rng, prepared, cfg).expect("PGM training failed");
            TrainedGenerator::Pgm(model)
        }
        GenerativeKind::DpGm => {
            let n_clusters = 4;
            let per_cluster = (n / n_clusters).max(8);
            let mut vae_cfg = vae_config_for(scale, true, 0.75 * target_eps, per_cluster, d);
            vae_cfg.latent_dim = vae_cfg.latent_dim.min(4);
            vae_cfg.hidden_dim = vae_cfg.hidden_dim.min(32);
            let cfg = DpGmConfig {
                n_clusters,
                kmeans_epsilon: 0.2 * target_eps,
                count_epsilon: 0.05 * target_eps,
                kmeans_iterations: 3,
                vae: vae_cfg,
                delta: DELTA,
            };
            let model = DpGm::fit(rng, prepared, cfg).expect("DP-GM training failed");
            TrainedGenerator::DpGm(model)
        }
        GenerativeKind::PrivBayes => {
            // Discretization granularity follows the (public) record count:
            // fine bins starve the noisy conditional tables below a few
            // thousand rows, destroying the very correlations PrivBayes is
            // supposed to preserve, so small runs use coarse binary bins.
            let (n_bins, degree) = if n < 2_000 { (2, 1) } else { (8, 2) };
            let cfg = PrivBayesConfig {
                n_bins,
                degree,
                epsilon: target_eps,
                max_candidates: 128,
            };
            let model = PrivBayes::fit(rng, prepared, cfg).expect("PrivBayes training failed");
            TrainedGenerator::PrivBayes(model)
        }
        GenerativeKind::Original => {
            unreachable!("GenerativeKind::Original does not train a generative model")
        }
    }
}

/// The full Table V/VI protocol for one (dataset, model) cell: train the
/// generator on the real training split, synthesize data with the real
/// label ratio, train the four classifiers on the synthetic data, and score
/// them on the real test split. For [`GenerativeKind::Original`] the
/// classifiers are trained directly on the real training data.
pub fn evaluate_tabular(
    rng: &mut StdRng,
    kind: GenerativeKind,
    train: &Dataset,
    test: &Dataset,
    scale: Scale,
    target_eps: f64,
) -> SuiteReport {
    if matches!(kind, GenerativeKind::Original) {
        return evaluate_binary_suite(&train.features, &train.labels, &test.features, &test.labels);
    }
    let (synth_x, synth_y) = synthesize_for(rng, kind, train, scale, target_eps);
    evaluate_binary_suite(&synth_x, &synth_y, &test.features, &test.labels)
}

/// The Table VII protocol for one (image dataset, model) cell: synthesize
/// labelled images and report the accuracy of an MLP classifier trained on
/// them and evaluated on real test images.
pub fn evaluate_images(
    rng: &mut StdRng,
    kind: GenerativeKind,
    train: &Dataset,
    test: &Dataset,
    scale: Scale,
    target_eps: f64,
) -> f64 {
    let (train_x, train_y) = if matches!(kind, GenerativeKind::Original) {
        (train.features.clone(), train.labels.clone())
    } else {
        synthesize_for(rng, kind, train, scale, target_eps)
    };
    let mut clf = MlpClassifier::new(
        rng,
        train_x.cols(),
        scale.hidden_dim().max(32),
        train.n_classes,
    );
    clf.epochs = 12;
    clf.fit(rng, &train_x, &train_y);
    clf.score(&test.features, &test.labels)
}

/// Trains the generator and synthesizes a labelled dataset with the real
/// label ratio (paper §VI).
pub fn synthesize_for(
    rng: &mut StdRng,
    kind: GenerativeKind,
    train: &Dataset,
    scale: Scale,
    target_eps: f64,
) -> (Matrix, Vec<usize>) {
    let (synth, prepared) =
        LabelledSynthesizer::prepare(&train.features, &train.labels, train.n_classes)
            .expect("prepare labelled data");
    let generator = train_generator(rng, kind, &prepared, scale, target_eps);
    let counts = train.matched_label_counts(scale.n_synthetic());
    synthesize_labelled(&generator, &synth, rng, &counts).expect("synthesis failed")
}

/// Deterministic RNG for the experiments (one fixed seed per experiment id
/// keeps the regenerated tables stable across runs).
pub fn experiment_rng(experiment_id: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(0x5050_3347_4d00 ^ experiment_id)
}

/// Convenience used by a few experiments: mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Draws `n` samples and splits them back into features/labels — used by
/// the Figure 2 experiment to inspect raw samples.
pub fn sample_images(
    rng: &mut StdRng,
    generator: &TrainedGenerator,
    synth: &LabelledSynthesizer,
    n: usize,
) -> (Matrix, Vec<usize>) {
    let raw = generator.sample(rng, n);
    synth
        .split(&raw)
        .expect("generated rows have the prepared width")
}

/// Helper for experiments that need a quick non-degenerate subsample for
/// smoke tests.
pub fn subsample_rows(rng: &mut StdRng, m: &Matrix, n: usize) -> Matrix {
    let n = n.min(m.rows());
    let mut idx: Vec<usize> = (0..m.rows()).collect();
    use rand::seq::SliceRandom;
    idx.shuffle(rng);
    idx.truncate(n);
    m.select_rows(&idx).expect("indices in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_privacy_flags() {
        assert_eq!(GenerativeKind::P3gm.name(), "P3GM");
        assert_eq!(GenerativeKind::Original.name(), "original");
        assert!(GenerativeKind::P3gm.is_private());
        assert!(GenerativeKind::DpGm.is_private());
        assert!(!GenerativeKind::Vae.is_private());
        assert!(!GenerativeKind::Original.is_private());
    }

    #[test]
    fn make_dataset_shapes() {
        let mut rng = experiment_rng(1);
        let credit = make_dataset(&mut rng, DatasetKind::KaggleCredit, Scale::Smoke);
        assert_eq!(credit.n_features(), 29);
        let mnist = make_dataset(&mut rng, DatasetKind::Mnist, Scale::Smoke);
        assert_eq!(mnist.n_features(), Scale::Smoke.image_size().pow(2));
        assert_eq!(mnist.n_classes, 10);
        let isolet = make_dataset(&mut rng, DatasetKind::Isolet, Scale::Smoke);
        assert_eq!(isolet.n_features(), Scale::Smoke.isolet_dims());
    }

    #[test]
    fn stratified_split_keeps_minority_class_on_both_sides() {
        let mut rng = experiment_rng(2);
        let credit = make_dataset(&mut rng, DatasetKind::KaggleCredit, Scale::Smoke);
        let split = stratified_split(&mut rng, &credit, 0.25);
        assert!(split.train.positive_fraction() > 0.0);
        assert!(split.test.labels.contains(&1));
        assert_eq!(
            split.train.n_samples() + split.test.n_samples(),
            credit.n_samples()
        );
    }

    #[test]
    fn calibrated_p3gm_config_respects_the_budget() {
        let cfg = pgm_config_for(Scale::Smoke, GenerativeKind::P3gm, 1.0, 500, 30);
        assert!(cfg.private);
        let spec = p3gm_privacy::rdp::RdpAccountant::p3gm_total(
            cfg.eps_p,
            cfg.em_iterations,
            cfg.sigma_e,
            cfg.mog_components,
            cfg.sgd_steps(500),
            cfg.sampling_probability(500),
            cfg.sigma_s,
            DELTA,
        )
        .unwrap();
        assert!(spec.epsilon <= 1.0 + 1e-6, "epsilon {}", spec.epsilon);
        assert!(
            spec.epsilon > 0.5,
            "calibration too loose: {}",
            spec.epsilon
        );
    }

    #[test]
    fn non_private_configs_have_no_noise() {
        let cfg = pgm_config_for(Scale::Smoke, GenerativeKind::Pgm, 1.0, 500, 30);
        assert!(!cfg.private);
        let vae = vae_config_for(Scale::Smoke, false, 1.0, 500, 30);
        assert_eq!(vae.sigma_s, 0.0);
        let dp_vae = vae_config_for(Scale::Smoke, true, 1.0, 500, 30);
        assert!(dp_vae.sigma_s > 0.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn end_to_end_tabular_evaluation_smoke() {
        // One cheap end-to-end pass through the protocol with the fastest
        // private model (PrivBayes) and the original baseline.
        let mut rng = experiment_rng(3);
        let adult = make_dataset(&mut rng, DatasetKind::Adult, Scale::Smoke);
        let split = stratified_split(&mut rng, &adult, 0.25);
        let original = evaluate_tabular(
            &mut rng,
            GenerativeKind::Original,
            &split.train,
            &split.test,
            Scale::Smoke,
            1.0,
        );
        assert!(original.mean_auroc() > 0.6, "{}", original.mean_auroc());
        let privbayes = evaluate_tabular(
            &mut rng,
            GenerativeKind::PrivBayes,
            &split.train,
            &split.test,
            Scale::Smoke,
            1.0,
        );
        // PrivBayes on a low-dimensional dataset should be clearly better
        // than chance but no better than training on the real data.
        assert!(privbayes.mean_auroc() <= original.mean_auroc() + 0.1);
        assert!(
            privbayes.mean_auroc() > 0.35,
            "privbayes auroc {}",
            privbayes.mean_auroc()
        );
    }
}
