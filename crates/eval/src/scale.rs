//! Experiment scale: how large the synthetic datasets and networks are.
//!
//! The paper's experiments run on GPUs over datasets of up to 285 k rows
//! and 784 features; this reproduction runs everything on one CPU core, so
//! each experiment is scaled down. The scale factors live here (and are
//! documented in `EXPERIMENTS.md`) so that every experiment and bench uses
//! the same, explicit configuration.

/// How large an experiment run is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for `cargo test` — a few hundred rows, a handful of epochs.
    Smoke,
    /// The configuration used by the bench harness to regenerate the paper's
    /// tables and figures (minutes of CPU time in total).
    Paper,
}

impl Scale {
    /// Number of rows generated for the binary tabular datasets
    /// (train + test together).
    pub fn n_tabular(&self) -> usize {
        match self {
            Scale::Smoke => 400,
            Scale::Paper => 2000,
        }
    }

    /// Number of rows for the heavily imbalanced Credit-like dataset (a
    /// larger pool so that the 0.2% positive class is represented).
    pub fn n_credit(&self) -> usize {
        match self {
            Scale::Smoke => 800,
            Scale::Paper => 2500,
        }
    }

    /// Number of images for the MNIST-/Fashion-like datasets.
    pub fn n_images(&self) -> usize {
        match self {
            Scale::Smoke => 300,
            Scale::Paper => 800,
        }
    }

    /// Side length of the synthetic images (the paper uses 28; this
    /// reproduction uses a reduced resolution).
    pub fn image_size(&self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Paper => 14,
        }
    }

    /// Feature count used for the ISOLET-like dataset (617 in the paper).
    pub fn isolet_dims(&self) -> usize {
        match self {
            Scale::Smoke => 64,
            Scale::Paper => 128,
        }
    }

    /// Feature count used for the ESR-like dataset (179 in the paper).
    pub fn esr_dims(&self) -> usize {
        match self {
            Scale::Smoke => 48,
            Scale::Paper => 96,
        }
    }

    /// Hidden width of the encoder/decoder MLPs (1000 in the paper).
    pub fn hidden_dim(&self) -> usize {
        match self {
            Scale::Smoke => 24,
            Scale::Paper => 48,
        }
    }

    /// Latent dimensionality `d'` (the paper uses 10).
    pub fn latent_dim(&self) -> usize {
        match self {
            Scale::Smoke => 6,
            Scale::Paper => 10,
        }
    }

    /// Training epochs of the generative models (5–10 in the paper).
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Paper => 6,
        }
    }

    /// Mini-batch size.
    pub fn batch_size(&self) -> usize {
        match self {
            Scale::Smoke => 32,
            Scale::Paper => 64,
        }
    }

    /// Number of synthetic rows generated for the downstream evaluation
    /// (the paper matches the real training-set size).
    pub fn n_synthetic(&self) -> usize {
        match self {
            Scale::Smoke => 300,
            Scale::Paper => 1000,
        }
    }

    /// Number of mixture components of the MoG prior (the paper uses 3).
    pub fn mog_components(&self) -> usize {
        3
    }

    /// Fraction of rows held out as the real test set (the paper uses 10%).
    pub fn test_fraction(&self) -> f64 {
        match self {
            Scale::Smoke => 0.25,
            Scale::Paper => 0.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_larger_than_smoke() {
        assert!(Scale::Paper.n_tabular() > Scale::Smoke.n_tabular());
        assert!(Scale::Paper.n_credit() > Scale::Smoke.n_credit());
        assert!(Scale::Paper.n_images() > Scale::Smoke.n_images());
        assert!(Scale::Paper.image_size() >= Scale::Smoke.image_size());
        assert!(Scale::Paper.isolet_dims() > Scale::Smoke.isolet_dims());
        assert!(Scale::Paper.hidden_dim() >= Scale::Smoke.hidden_dim());
        assert!(Scale::Paper.epochs() >= Scale::Smoke.epochs());
        assert!(Scale::Paper.n_synthetic() > Scale::Smoke.n_synthetic());
    }

    #[test]
    fn shared_constants() {
        assert_eq!(Scale::Smoke.mog_components(), 3);
        assert!(Scale::Smoke.test_fraction() > 0.0 && Scale::Smoke.test_fraction() < 1.0);
        assert!(Scale::Paper.latent_dim() <= Scale::Paper.isolet_dims());
    }
}
