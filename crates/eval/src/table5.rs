//! Table V: accuracy comparison with non-private models on the Kaggle
//! Credit dataset.
//!
//! Four classifiers are trained on synthetic data from VAE, PGM and P3GM
//! (ε = 1, δ = 1e-5) and evaluated on the real test split; the paper's
//! claim is that PGM ≈ VAE (the phased model loses little expressive power)
//! and that P3GM stays close to both despite the DP noise.

use crate::common::{
    evaluate_tabular, experiment_rng, make_dataset, stratified_split, GenerativeKind,
};
use crate::report::{fmt_metric, TextTable};
use crate::scale::Scale;
use p3gm_classifiers::suite::{ClassifierKind, SuiteReport};
use p3gm_datasets::DatasetKind;

/// The models compared in Table V, in column order.
pub const TABLE5_MODELS: [GenerativeKind; 3] = [
    GenerativeKind::Vae,
    GenerativeKind::Pgm,
    GenerativeKind::P3gm,
];

/// The regenerated Table V.
#[derive(Debug, Clone)]
pub struct Table5Report {
    /// Per-model suite reports (AUROC/AUPRC per classifier), aligned with
    /// [`TABLE5_MODELS`].
    pub per_model: Vec<(GenerativeKind, SuiteReport)>,
    /// The target privacy budget used for P3GM.
    pub epsilon: f64,
}

/// Runs the Table V experiment.
pub fn run(scale: Scale) -> Table5Report {
    let mut rng = experiment_rng(5);
    let dataset = make_dataset(&mut rng, DatasetKind::KaggleCredit, scale);
    let split = stratified_split(&mut rng, &dataset, scale.test_fraction());
    let epsilon = 1.0;
    let per_model = TABLE5_MODELS
        .into_iter()
        .map(|kind| {
            let report =
                evaluate_tabular(&mut rng, kind, &split.train, &split.test, scale, epsilon);
            (kind, report)
        })
        .collect();
    Table5Report { per_model, epsilon }
}

impl Table5Report {
    /// Renders the table in the paper's layout (classifiers as rows, models
    /// as columns, AUROC block then AUPRC block).
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "Table V: AUROC / AUPRC on Kaggle Credit (classifiers trained on synthetic data)\n",
        );
        out.push_str(&format!(
            "P3GM privacy budget: ({}, 1e-5)-DP\n\n",
            self.epsilon
        ));
        for (metric_name, pick) in [("AUROC", 0usize), ("AUPRC", 1usize)] {
            let mut header = vec!["classifier"];
            let names: Vec<&str> = self.per_model.iter().map(|(k, _)| k.name()).collect();
            header.extend(names.iter());
            let mut table = TextTable::new(&header);
            for clf in ClassifierKind::all() {
                let mut cells = vec![clf.name().to_string()];
                for (_, report) in &self.per_model {
                    let scores = report.scores_for(clf).expect("classifier present");
                    let value = if pick == 0 {
                        scores.auroc
                    } else {
                        scores.auprc
                    };
                    cells.push(fmt_metric(value));
                }
                table.add_row(cells);
            }
            out.push_str(metric_name);
            out.push('\n');
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Mean AUROC of one model across the four classifiers.
    pub fn mean_auroc(&self, kind: GenerativeKind) -> Option<f64> {
        self.per_model
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, r)| r.mean_auroc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_full_table() {
        let report = run(Scale::Smoke);
        assert_eq!(report.per_model.len(), 3);
        for (_, suite) in &report.per_model {
            assert_eq!(suite.per_classifier.len(), 4);
            for (_, s) in &suite.per_classifier {
                assert!(s.auroc.is_finite() && (0.0..=1.0).contains(&s.auroc));
                assert!(s.auprc.is_finite() && (0.0..=1.0).contains(&s.auprc));
            }
        }
        let text = report.to_text();
        assert!(text.contains("AUROC"));
        assert!(text.contains("AUPRC"));
        assert!(text.contains("P3GM"));
        assert!(text.contains("XgBoost"));
    }
}
