//! Figure 7: learning efficiency — how quickly DP-VAE, P3GM(AE) and P3GM
//! converge under the same privacy constraint.
//!
//! * Panels (a)/(b): per-epoch reconstruction loss of DP-VAE vs P3GM on the
//!   MNIST-like and Credit-like data. The paper's shape: P3GM's loss drops
//!   faster and more monotonically because the frozen encoder mean shrinks
//!   the search space.
//! * Panels (c)/(d): per-epoch downstream utility (classification accuracy
//!   on MNIST-like, AUROC on Credit-like) of DP-VAE, P3GM(AE) and P3GM. The
//!   paper's shape: P3GM(AE) converges earliest, P3GM ends best, DP-VAE
//!   trails both.

use crate::common::{
    experiment_rng, make_dataset, pgm_config_for, stratified_split, vae_config_for, GenerativeKind,
};
use crate::report::{fmt_metric, TextTable};
use crate::scale::Scale;
use p3gm_classifiers::mlp_classifier::MlpClassifier;
use p3gm_classifiers::suite::{evaluate_one, ClassifierKind};
use p3gm_core::pgm::PhasedGenerativeModel;
use p3gm_core::synthesis::{synthesize_labelled, LabelledSynthesizer};
use p3gm_core::vae::Vae;
use p3gm_datasets::dataset::Dataset;
use p3gm_datasets::DatasetKind;
use rand::rngs::StdRng;

/// Learning curves of one model on one dataset.
#[derive(Debug, Clone)]
pub struct LearningCurve {
    /// The model.
    pub model: GenerativeKind,
    /// Reconstruction loss after every epoch.
    pub reconstruction: Vec<f64>,
    /// Downstream utility (accuracy for images, AUROC for Credit) after
    /// every epoch.
    pub utility: Vec<f64>,
}

/// The regenerated Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Report {
    /// Curves on the MNIST-like data (panels a and c).
    pub mnist: Vec<LearningCurve>,
    /// Curves on the Credit-like data (panels b and d).
    pub credit: Vec<LearningCurve>,
    /// Number of epochs trained.
    pub epochs: usize,
}

/// Runs the Figure 7 experiment.
pub fn run(scale: Scale) -> Fig7Report {
    let epochs = match scale {
        Scale::Smoke => 3,
        Scale::Paper => 8,
    };
    let mut rng = experiment_rng(77);

    let mnist = dataset_curves(&mut rng, DatasetKind::Mnist, scale, epochs, true);
    let credit = dataset_curves(&mut rng, DatasetKind::KaggleCredit, scale, epochs, false);
    Fig7Report {
        mnist,
        credit,
        epochs,
    }
}

/// Trains DP-VAE, P3GM(AE) and P3GM epoch by epoch on one dataset, recording
/// the reconstruction loss and downstream utility after every epoch.
fn dataset_curves(
    rng: &mut StdRng,
    dataset_kind: DatasetKind,
    scale: Scale,
    epochs: usize,
    image_task: bool,
) -> Vec<LearningCurve> {
    let dataset = make_dataset(rng, dataset_kind, scale);
    let split = stratified_split(rng, &dataset, scale.test_fraction());
    let train = &split.train;
    let test = &split.test;
    let epsilon = 1.0;

    let (synth, prepared) =
        LabelledSynthesizer::prepare(&train.features, &train.labels, train.n_classes)
            .expect("prepare labelled data");
    let n = prepared.rows();
    let d = prepared.cols();

    let mut curves = Vec::new();

    // DP-VAE.
    {
        let mut cfg = vae_config_for(scale, true, epsilon, n, d);
        cfg.epochs = epochs;
        let mut model = Vae::new(rng, d, cfg).expect("DP-VAE construction");
        let mut reconstruction = Vec::with_capacity(epochs);
        let mut utility = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            model.train_epoch(rng, &prepared).expect("DP-VAE epoch");
            reconstruction.push(model.reconstruction_loss(&prepared));
            utility.push(downstream_utility(
                rng, &model, &synth, train, test, scale, image_task,
            ));
        }
        curves.push(LearningCurve {
            model: GenerativeKind::DpVae,
            reconstruction,
            utility,
        });
    }

    // P3GM(AE) and P3GM share the Encoding Phase structure but differ in the
    // variance mode.
    for kind in [GenerativeKind::P3gmAe, GenerativeKind::P3gm] {
        let mut cfg = pgm_config_for(scale, kind, epsilon, n, d);
        cfg.epochs = epochs;
        let mut model =
            PhasedGenerativeModel::encode_phase(rng, &prepared, cfg).expect("encode phase");
        let mut reconstruction = Vec::with_capacity(epochs);
        let mut utility = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            model
                .train_epoch(rng, &prepared)
                .expect("decode phase epoch");
            reconstruction.push(model.reconstruction_loss(&prepared));
            utility.push(downstream_utility(
                rng, &model, &synth, train, test, scale, image_task,
            ));
        }
        curves.push(LearningCurve {
            model: kind,
            reconstruction,
            utility,
        });
    }

    curves
}

/// Downstream utility of a partially-trained generative model: accuracy of
/// an MLP classifier for image tasks, AUROC of a logistic-regression model
/// for the Credit task (one classifier keeps the per-epoch cost modest).
fn downstream_utility(
    rng: &mut StdRng,
    model: &dyn p3gm_core::GenerativeModel,
    synth: &LabelledSynthesizer,
    train: &Dataset,
    test: &Dataset,
    scale: Scale,
    image_task: bool,
) -> f64 {
    let counts = train.matched_label_counts(scale.n_synthetic().min(600));
    let (synth_x, synth_y) = match synthesize_labelled(model, synth, rng, &counts) {
        Ok(pair) => pair,
        Err(_) => return if image_task { 0.0 } else { 0.5 },
    };
    if image_task {
        let mut clf = MlpClassifier::new(rng, synth_x.cols(), 32, train.n_classes);
        clf.epochs = 8;
        clf.fit(rng, &synth_x, &synth_y);
        clf.score(&test.features, &test.labels)
    } else {
        let scores = evaluate_one(
            ClassifierKind::LogisticRegression,
            &synth_x,
            &synth_y,
            &test.features,
            &test.labels,
        );
        // `evaluate_one` already computes AUROC on the real test set, which
        // is the metric the paper plots in panel (d).
        scores.auroc
    }
}

impl Fig7Report {
    /// Renders all four panels as text tables.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "Figure 7: learning efficiency over {} epochs at (1, 1e-5)-DP\n\n",
            self.epochs
        );
        out.push_str(&panel(
            "(a) reconstruction loss per epoch (MNIST-like)",
            &self.mnist,
            |c| &c.reconstruction,
        ));
        out.push_str(&panel(
            "(b) reconstruction loss per epoch (Kaggle-Credit-like)",
            &self.credit,
            |c| &c.reconstruction,
        ));
        out.push_str(&panel(
            "(c) classification accuracy per epoch (MNIST-like)",
            &self.mnist,
            |c| &c.utility,
        ));
        out.push_str(&panel(
            "(d) AUROC per epoch (Kaggle-Credit-like)",
            &self.credit,
            |c| &c.utility,
        ));
        out
    }

    /// The curve of one model on the MNIST-like panel.
    pub fn mnist_curve(&self, model: GenerativeKind) -> Option<&LearningCurve> {
        self.mnist.iter().find(|c| c.model == model)
    }

    /// The curve of one model on the Credit-like panel.
    pub fn credit_curve(&self, model: GenerativeKind) -> Option<&LearningCurve> {
        self.credit.iter().find(|c| c.model == model)
    }
}

fn panel(
    title: &str,
    curves: &[LearningCurve],
    pick: impl Fn(&LearningCurve) -> &Vec<f64>,
) -> String {
    let epochs = curves.first().map(|c| pick(c).len()).unwrap_or(0);
    let mut header: Vec<String> = vec!["model".to_string()];
    header.extend((1..=epochs).map(|e| format!("epoch {e}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for curve in curves {
        let mut cells = vec![curve.model.name().to_string()];
        cells.extend(pick(curve).iter().map(|v| fmt_metric(*v)));
        table.add_row(cells);
    }
    format!("{title}\n{}\n", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_curves() {
        let report = run(Scale::Smoke);
        assert_eq!(report.mnist.len(), 3);
        assert_eq!(report.credit.len(), 3);
        for curve in report.mnist.iter().chain(report.credit.iter()) {
            assert_eq!(curve.reconstruction.len(), report.epochs);
            assert_eq!(curve.utility.len(), report.epochs);
            assert!(curve.reconstruction.iter().all(|v| v.is_finite()));
            assert!(curve.utility.iter().all(|v| v.is_finite()));
        }
        assert!(report.mnist_curve(GenerativeKind::P3gm).is_some());
        assert!(report.credit_curve(GenerativeKind::DpVae).is_some());
        let text = report.to_text();
        assert!(text.contains("(a) reconstruction"));
        assert!(text.contains("(d) AUROC"));
        assert!(text.contains("P3GM(AE)"));
    }
}
