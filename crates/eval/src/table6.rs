//! Table VI: performance comparison of the private models on four tabular
//! datasets (Kaggle Credit, UCI ESR, Adult, UCI ISOLET).
//!
//! Each cell is the AUROC (or AUPRC) averaged over the four downstream
//! classifiers. The paper's claims reproduced here: P3GM beats PrivBayes
//! and DP-GM on the higher-dimensional datasets, PrivBayes is competitive
//! only on the low-dimensional Adult data, and nothing beats training on
//! the original data.

use crate::common::{
    evaluate_tabular, experiment_rng, make_dataset, stratified_split, GenerativeKind,
};
use crate::report::{fmt_metric, TextTable};
use crate::scale::Scale;
use p3gm_datasets::DatasetKind;

/// The models compared in Table VI, in column order.
pub const TABLE6_MODELS: [GenerativeKind; 4] = [
    GenerativeKind::PrivBayes,
    GenerativeKind::DpGm,
    GenerativeKind::P3gm,
    GenerativeKind::Original,
];

/// One row of Table VI (one dataset).
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// The dataset.
    pub dataset: DatasetKind,
    /// `(model, mean AUROC, mean AUPRC)` for every compared model.
    pub cells: Vec<(GenerativeKind, f64, f64)>,
}

/// The regenerated Table VI.
#[derive(Debug, Clone)]
pub struct Table6Report {
    /// One row per dataset, in the paper's order.
    pub rows: Vec<Table6Row>,
    /// The target privacy budget used for the private models.
    pub epsilon: f64,
}

/// Runs the full Table VI experiment (all four datasets).
pub fn run(scale: Scale) -> Table6Report {
    run_datasets(scale, &DatasetKind::tabular_kinds())
}

/// Runs the Table VI protocol on a subset of the datasets (used by the
/// smoke tests and by callers that want a single row).
pub fn run_datasets(scale: Scale, datasets: &[DatasetKind]) -> Table6Report {
    let mut rng = experiment_rng(6);
    let epsilon = 1.0;
    let rows = datasets
        .iter()
        .map(|&dataset_kind| {
            let dataset = make_dataset(&mut rng, dataset_kind, scale);
            let split = stratified_split(&mut rng, &dataset, scale.test_fraction());
            let cells = TABLE6_MODELS
                .into_iter()
                .map(|kind| {
                    let report =
                        evaluate_tabular(&mut rng, kind, &split.train, &split.test, scale, epsilon);
                    (kind, report.mean_auroc(), report.mean_auprc())
                })
                .collect();
            Table6Row {
                dataset: dataset_kind,
                cells,
            }
        })
        .collect();
    Table6Report { rows, epsilon }
}

impl Table6Report {
    /// Renders the table in the paper's layout.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "Table VI: mean AUROC / AUPRC over four classifiers, private models at (1, 1e-5)-DP\n\n",
        );
        for (metric_name, pick) in [("AUROC", 0usize), ("AUPRC", 1usize)] {
            let mut header = vec!["dataset"];
            let names: Vec<&str> = TABLE6_MODELS.iter().map(|k| k.name()).collect();
            header.extend(names.iter());
            let mut table = TextTable::new(&header);
            for row in &self.rows {
                let mut cells = vec![row.dataset.name().to_string()];
                for (_, auroc, auprc) in &row.cells {
                    cells.push(fmt_metric(if pick == 0 { *auroc } else { *auprc }));
                }
                table.add_row(cells);
            }
            out.push_str(metric_name);
            out.push('\n');
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// The cell value (mean AUROC) for one dataset and model.
    pub fn auroc(&self, dataset: DatasetKind, model: GenerativeKind) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset)
            .and_then(|r| r.cells.iter().find(|(k, _, _)| *k == model))
            .map(|(_, auroc, _)| *auroc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_single_dataset_row() {
        // Run only the Adult row at smoke scale to keep the test fast; the
        // full table is exercised by the bench harness.
        let report = run_datasets(Scale::Smoke, &[DatasetKind::Adult]);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.cells.len(), 4);
        for (kind, auroc, auprc) in &row.cells {
            assert!(
                auroc.is_finite() && (0.0..=1.0).contains(auroc),
                "{}: {auroc}",
                kind.name()
            );
            assert!(auprc.is_finite() && (0.0..=1.0).contains(auprc));
        }
        // Training on the original data is at least as good as any private
        // competitor (up to small-sample noise).
        let original = report
            .auroc(DatasetKind::Adult, GenerativeKind::Original)
            .unwrap();
        let privbayes = report
            .auroc(DatasetKind::Adult, GenerativeKind::PrivBayes)
            .unwrap();
        assert!(original >= privbayes - 0.15);
        let text = report.to_text();
        assert!(text.contains("Adult"));
        assert!(text.contains("P3GM"));
    }
}
