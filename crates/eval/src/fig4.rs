//! Figure 4: utility versus privacy level ε on the Kaggle-Credit-like data.
//!
//! For every ε on the sweep the private models (P3GM, DP-GM, PrivBayes) are
//! re-trained with noise calibrated to that budget, while the non-private
//! PGM is a flat reference line. The paper's shape: P3GM degrades slowly as
//! ε shrinks, DP-GM degrades quickly, PrivBayes is flat and low (it lacks
//! the capacity for this dataset regardless of budget).

use crate::common::{
    evaluate_tabular, experiment_rng, make_dataset, stratified_split, GenerativeKind,
};
use crate::report::{fmt_eps, fmt_metric, TextTable};
use crate::scale::Scale;
use p3gm_datasets::DatasetKind;

/// The models plotted in Figure 4.
pub const FIG4_MODELS: [GenerativeKind; 4] = [
    GenerativeKind::Pgm,
    GenerativeKind::P3gm,
    GenerativeKind::DpGm,
    GenerativeKind::PrivBayes,
];

/// The ε sweep used at paper scale (the paper sweeps 0.1 to 10).
pub const PAPER_EPSILONS: [f64; 5] = [0.1, 0.3, 1.0, 3.0, 10.0];

/// One point of the figure: a model evaluated at one ε.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Point {
    /// The model.
    pub model: GenerativeKind,
    /// The privacy budget used (non-private models repeat their value).
    pub epsilon: f64,
    /// Mean AUROC over the four classifiers.
    pub auroc: f64,
    /// Mean AUPRC over the four classifiers.
    pub auprc: f64,
}

/// The regenerated Figure 4 (both panels).
#[derive(Debug, Clone)]
pub struct Fig4Report {
    /// All evaluated points.
    pub points: Vec<Fig4Point>,
    /// The ε values swept.
    pub epsilons: Vec<f64>,
}

/// Runs the Figure 4 experiment over the standard sweep.
pub fn run(scale: Scale) -> Fig4Report {
    let epsilons: Vec<f64> = match scale {
        Scale::Smoke => vec![0.3, 3.0],
        Scale::Paper => PAPER_EPSILONS.to_vec(),
    };
    run_sweep(scale, &epsilons, &FIG4_MODELS)
}

/// Runs the sweep for explicit ε values and models.
pub fn run_sweep(scale: Scale, epsilons: &[f64], models: &[GenerativeKind]) -> Fig4Report {
    let mut rng = experiment_rng(4);
    let dataset = make_dataset(&mut rng, DatasetKind::KaggleCredit, scale);
    let split = stratified_split(&mut rng, &dataset, scale.test_fraction());
    let mut points = Vec::new();
    for &model in models {
        if model.is_private() {
            for &eps in epsilons {
                let report =
                    evaluate_tabular(&mut rng, model, &split.train, &split.test, scale, eps);
                points.push(Fig4Point {
                    model,
                    epsilon: eps,
                    auroc: report.mean_auroc(),
                    auprc: report.mean_auprc(),
                });
            }
        } else {
            // Non-private reference: evaluated once, replicated across the sweep.
            let report = evaluate_tabular(&mut rng, model, &split.train, &split.test, scale, 1.0);
            for &eps in epsilons {
                points.push(Fig4Point {
                    model,
                    epsilon: eps,
                    auroc: report.mean_auroc(),
                    auprc: report.mean_auprc(),
                });
            }
        }
    }
    Fig4Report {
        points,
        epsilons: epsilons.to_vec(),
    }
}

impl Fig4Report {
    /// Renders the two panels (AUROC and AUPRC vs ε) as text tables.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "Figure 4: utility in fraud detection (Kaggle Credit) vs privacy level\n\n",
        );
        for (metric_name, pick) in [("AUROC", 0usize), ("AUPRC", 1usize)] {
            let mut header: Vec<String> = vec!["model".to_string()];
            header.extend(self.epsilons.iter().map(|e| format!("eps={}", fmt_eps(*e))));
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table = TextTable::new(&header_refs);
            for model in self.models() {
                let mut cells = vec![model.name().to_string()];
                for &eps in &self.epsilons {
                    let value = self
                        .point(model, eps)
                        .map(|p| if pick == 0 { p.auroc } else { p.auprc })
                        .unwrap_or(f64::NAN);
                    cells.push(fmt_metric(value));
                }
                table.add_row(cells);
            }
            out.push_str(metric_name);
            out.push('\n');
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// The distinct models present in the report, in first-seen order.
    pub fn models(&self) -> Vec<GenerativeKind> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.model) {
                seen.push(p.model);
            }
        }
        seen
    }

    /// The point for one model at one ε.
    pub fn point(&self, model: GenerativeKind, epsilon: f64) -> Option<&Fig4Point> {
        self.points
            .iter()
            .find(|p| p.model == model && (p.epsilon - epsilon).abs() < 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_with_two_models() {
        let report = run_sweep(
            Scale::Smoke,
            &[0.5, 5.0],
            &[GenerativeKind::P3gm, GenerativeKind::PrivBayes],
        );
        assert_eq!(report.points.len(), 4);
        for p in &report.points {
            assert!(p.auroc.is_finite() && (0.0..=1.0).contains(&p.auroc));
            assert!(p.auprc.is_finite() && (0.0..=1.0).contains(&p.auprc));
        }
        assert_eq!(report.models().len(), 2);
        assert!(report.point(GenerativeKind::P3gm, 0.5).is_some());
        assert!(report.point(GenerativeKind::P3gm, 7.0).is_none());
        let text = report.to_text();
        assert!(text.contains("eps=0.500"));
        assert!(text.contains("PrivBayes"));
    }
}
