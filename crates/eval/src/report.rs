//! Plain-text report formatting shared by the experiment runners.

/// A simple text table: a header row plus data rows, rendered with aligned
/// columns. Used to print the regenerated paper tables.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must have the same number of cells as the
    /// header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a metric with 4 decimal places (the paper's precision).
pub fn fmt_metric(value: f64) -> String {
    format!("{value:.4}")
}

/// Formats an ε value with 3 decimal places.
pub fn fmt_eps(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["model", "AUROC"]);
        t.add_row(vec!["P3GM".into(), fmt_metric(0.92345)]);
        t.add_row(vec!["PrivBayes".into(), fmt_metric(0.5)]);
        let s = t.render();
        assert!(s.contains("model"));
        assert!(s.contains("0.9234") || s.contains("0.9235"));
        assert!(s.contains("PrivBayes"));
        assert_eq!(t.n_rows(), 2);
        // Every line has the same leading column width.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_metric(0.5), "0.5000");
        assert_eq!(fmt_eps(1.23456), "1.235");
    }
}
