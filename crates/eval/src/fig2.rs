//! Figure 2: qualitative sample sheets from VAE, DP-VAE, DP-GM and P3GM on
//! the MNIST-like data, plus the quantitative fidelity/diversity statistics
//! that back the paper's visual claims.
//!
//! The paper shows that DP-VAE samples are noisy, DP-GM samples are clean
//! but collapse onto cluster centroids (low diversity), and P3GM samples
//! are both clean and diverse. Since this reproduction is text-only, the
//! samples are rendered as ASCII sheets and accompanied by two numbers per
//! model:
//!
//! * **fidelity** — average distance from each sample to its nearest real
//!   training image (lower = cleaner samples);
//! * **diversity** — average pairwise distance among the samples
//!   (higher = more varied samples; mode collapse drives it toward 0).

use crate::common::{
    experiment_rng, make_dataset, stratified_split, train_generator, GenerativeKind,
};
use crate::report::{fmt_metric, TextTable};
use crate::scale::Scale;
use p3gm_core::synthesis::LabelledSynthesizer;
use p3gm_core::GenerativeModel;
use p3gm_datasets::images::ascii_art;
use p3gm_datasets::DatasetKind;
use p3gm_linalg::{vector, Matrix};

/// The models whose samples Figure 2 shows, in the paper's order
/// (the original data sheet is added separately).
pub const FIG2_MODELS: [GenerativeKind; 4] = [
    GenerativeKind::Vae,
    GenerativeKind::DpVae,
    GenerativeKind::DpGm,
    GenerativeKind::P3gm,
];

/// Samples and statistics for one model.
#[derive(Debug, Clone)]
pub struct Fig2Panel {
    /// Which model produced the samples.
    pub model: GenerativeKind,
    /// The sampled images (rows, pixel values in [0, 1]).
    pub samples: Matrix,
    /// Average distance to the nearest real training image.
    pub fidelity: f64,
    /// Average pairwise distance among the samples.
    pub diversity: f64,
}

/// The regenerated Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Report {
    /// Side length of the images.
    pub image_size: usize,
    /// Fidelity/diversity of the real data (reference panel (a)).
    pub real_diversity: f64,
    /// One panel per model.
    pub panels: Vec<Fig2Panel>,
    /// A sheet of real training images for visual reference.
    pub real_samples: Matrix,
}

/// Number of images sampled per panel.
const SAMPLES_PER_PANEL: usize = 24;

/// Runs the Figure 2 experiment.
pub fn run(scale: Scale) -> Fig2Report {
    run_models(scale, &FIG2_MODELS)
}

/// Runs the Figure 2 experiment for a subset of the models (smoke tests use
/// a cheaper subset).
pub fn run_models(scale: Scale, models: &[GenerativeKind]) -> Fig2Report {
    let mut rng = experiment_rng(2);
    let dataset = make_dataset(&mut rng, DatasetKind::Mnist, scale);
    let split = stratified_split(&mut rng, &dataset, scale.test_fraction());
    let train = &split.train;
    let epsilon = 1.0;

    let (synth, prepared) =
        LabelledSynthesizer::prepare(&train.features, &train.labels, train.n_classes)
            .expect("prepare labelled data");

    let real_samples = crate::common::subsample_rows(&mut rng, &train.features, SAMPLES_PER_PANEL);
    let real_diversity = mean_pairwise_distance(&real_samples);

    let panels = models
        .iter()
        .map(|&model| {
            let generator = train_generator(&mut rng, model, &prepared, scale, epsilon);
            let raw = generator.sample(&mut rng, SAMPLES_PER_PANEL);
            let (samples, _) = synth.split(&raw).expect("generated rows split");
            let fidelity = mean_nearest_distance(&samples, &train.features);
            let diversity = mean_pairwise_distance(&samples);
            Fig2Panel {
                model,
                samples,
                fidelity,
                diversity,
            }
        })
        .collect();

    Fig2Report {
        image_size: scale.image_size(),
        real_diversity,
        panels,
        real_samples,
    }
}

/// Average distance from each row of `samples` to its nearest row in `real`.
fn mean_nearest_distance(samples: &Matrix, real: &Matrix) -> f64 {
    if samples.rows() == 0 || real.rows() == 0 {
        return 0.0;
    }
    samples
        .row_iter()
        .map(|s| {
            real.row_iter()
                .map(|r| vector::distance(s, r))
                .fold(f64::INFINITY, f64::min)
        })
        .sum::<f64>()
        / samples.rows() as f64
}

/// Average pairwise distance among the rows of a matrix.
fn mean_pairwise_distance(m: &Matrix) -> f64 {
    let n = m.rows();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += vector::distance(m.row(i), m.row(j));
            count += 1;
        }
    }
    total / count as f64
}

impl Fig2Report {
    /// Renders the statistics table plus the ASCII sample sheets.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "Figure 2: sample quality on the MNIST-like data ((1, 1e-5)-DP for the private models)\n\n",
        );
        let mut table = TextTable::new(&[
            "panel",
            "fidelity (lower=cleaner)",
            "diversity (higher=varied)",
        ]);
        table.add_row(vec![
            "original data".to_string(),
            fmt_metric(0.0),
            fmt_metric(self.real_diversity),
        ]);
        for panel in &self.panels {
            table.add_row(vec![
                panel.model.name().to_string(),
                fmt_metric(panel.fidelity),
                fmt_metric(panel.diversity),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');

        out.push_str("(a) original data\n");
        out.push_str(&sheet(&self.real_samples, self.image_size));
        for panel in &self.panels {
            out.push_str(&format!("samples from {}\n", panel.model.name()));
            out.push_str(&sheet(&panel.samples, self.image_size));
        }
        out
    }

    /// The panel for one model, if it was run.
    pub fn panel(&self, model: GenerativeKind) -> Option<&Fig2Panel> {
        self.panels.iter().find(|p| p.model == model)
    }
}

fn sheet(samples: &Matrix, size: usize) -> String {
    let first: Vec<usize> = (0..samples.rows().min(8)).collect();
    let images = samples
        .select_rows(&first)
        .expect("indices within sample count");
    ascii_art(&images, size, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_with_cheapest_models() {
        // Only the two phased models at smoke scale: keeps the test quick
        // while exercising the full sampling + statistics path.
        let report = run_models(Scale::Smoke, &[GenerativeKind::Pgm, GenerativeKind::P3gm]);
        assert_eq!(report.panels.len(), 2);
        assert!(report.real_diversity > 0.0);
        for panel in &report.panels {
            assert_eq!(panel.samples.rows(), SAMPLES_PER_PANEL);
            assert_eq!(panel.samples.cols(), report.image_size * report.image_size);
            assert!(panel.fidelity.is_finite() && panel.fidelity >= 0.0);
            assert!(panel.diversity.is_finite() && panel.diversity >= 0.0);
        }
        let text = report.to_text();
        assert!(text.contains("fidelity"));
        assert!(text.contains("original data"));
        assert!(report.panel(GenerativeKind::P3gm).is_some());
        assert!(report.panel(GenerativeKind::DpVae).is_none());
    }

    #[test]
    fn distance_helpers() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        assert!((mean_pairwise_distance(&a) - 1.0).abs() < 1e-12);
        assert_eq!(mean_pairwise_distance(&b), 0.0);
        assert!((mean_nearest_distance(&a, &b) - 0.5).abs() < 1e-12);
    }
}
