//! Table VII: classification accuracy on the image datasets (MNIST-like and
//! Fashion-MNIST-like).
//!
//! A classifier is trained on labelled synthetic images from each
//! generative model (VAE non-private, DP-GM, PrivBayes and P3GM at
//! (1, 1e-5)-DP) and evaluated on real held-out images. The paper's shape:
//! P3GM comes close to the non-private VAE, DP-GM collapses to cluster
//! centroids (mediocre accuracy), and PrivBayes fails completely on
//! image-dimensional data.

use crate::common::{
    evaluate_images, experiment_rng, make_dataset, stratified_split, GenerativeKind,
};
use crate::report::{fmt_metric, TextTable};
use crate::scale::Scale;
use p3gm_datasets::DatasetKind;

/// The models compared in Table VII, in column order.
pub const TABLE7_MODELS: [GenerativeKind; 4] = [
    GenerativeKind::Vae,
    GenerativeKind::DpGm,
    GenerativeKind::PrivBayes,
    GenerativeKind::P3gm,
];

/// One row of Table VII.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// The image dataset.
    pub dataset: DatasetKind,
    /// `(model, accuracy)` for every compared model.
    pub accuracies: Vec<(GenerativeKind, f64)>,
}

/// The regenerated Table VII.
#[derive(Debug, Clone)]
pub struct Table7Report {
    /// One row per image dataset.
    pub rows: Vec<Table7Row>,
    /// The target privacy budget of the private models.
    pub epsilon: f64,
}

/// Runs the full Table VII experiment (both image datasets).
pub fn run(scale: Scale) -> Table7Report {
    run_datasets(scale, &[DatasetKind::Mnist, DatasetKind::FashionMnist])
}

/// Runs the Table VII protocol on a subset of the image datasets.
pub fn run_datasets(scale: Scale, datasets: &[DatasetKind]) -> Table7Report {
    let mut rng = experiment_rng(7);
    let epsilon = 1.0;
    let rows = datasets
        .iter()
        .map(|&dataset_kind| {
            let dataset = make_dataset(&mut rng, dataset_kind, scale);
            let split = stratified_split(&mut rng, &dataset, scale.test_fraction());
            let accuracies = TABLE7_MODELS
                .into_iter()
                .map(|kind| {
                    let acc =
                        evaluate_images(&mut rng, kind, &split.train, &split.test, scale, epsilon);
                    (kind, acc)
                })
                .collect();
            Table7Row {
                dataset: dataset_kind,
                accuracies,
            }
        })
        .collect();
    Table7Report { rows, epsilon }
}

impl Table7Report {
    /// Renders the table in the paper's layout.
    pub fn to_text(&self) -> String {
        let mut header = vec!["dataset"];
        let names: Vec<&str> = TABLE7_MODELS.iter().map(|k| k.name()).collect();
        header.extend(names.iter());
        let mut table = TextTable::new(&header);
        for row in &self.rows {
            let mut cells = vec![row.dataset.name().to_string()];
            for (_, acc) in &row.accuracies {
                cells.push(fmt_metric(*acc));
            }
            table.add_row(cells);
        }
        format!(
            "Table VII: classification accuracy on image datasets (private models at ({}, 1e-5)-DP)\n\n{}",
            self.epsilon,
            table.render()
        )
    }

    /// The accuracy of one model on one dataset.
    pub fn accuracy(&self, dataset: DatasetKind, model: GenerativeKind) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset)
            .and_then(|r| r.accuracies.iter().find(|(k, _)| *k == model))
            .map(|(_, acc)| *acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_single_dataset_row() {
        let report = run_datasets(Scale::Smoke, &[DatasetKind::Mnist]);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.accuracies.len(), 4);
        for (kind, acc) in &row.accuracies {
            assert!(
                acc.is_finite() && (0.0..=1.0).contains(acc),
                "{}: {acc}",
                kind.name()
            );
        }
        // At smoke scale the generative models barely train, so only the
        // protocol (shapes, ranges, table rendering) is validated here; the
        // paper-scale run in the bench harness checks the actual ordering.
        let vae = report
            .accuracy(DatasetKind::Mnist, GenerativeKind::Vae)
            .unwrap();
        assert!((0.0..=1.0).contains(&vae));
        let text = report.to_text();
        assert!(text.contains("MNIST"));
        assert!(text.contains("DP-GM"));
    }
}
