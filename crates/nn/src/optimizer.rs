//! First-order optimizers over flat parameter vectors.

/// Common interface for optimizers: apply one update given the gradient.
pub trait Optimizer {
    /// Updates `params` in place using `grad` (same length).
    fn step(&mut self, params: &mut [f64], grad: &[f64]);

    /// The base learning rate (useful for schedules and logging).
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum; `momentum` in `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(
            params.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grad.iter()) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, v), &g) in params
            .iter_mut()
            .zip(self.velocity.iter_mut())
            .zip(grad.iter())
        {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) — the optimizer the reference P3GM
/// implementation pairs with DP-SGD-style noisy gradients.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    /// `beta1^t` / `beta2^t`, maintained by one multiply per step in a
    /// fixed order — the bias correction never goes through `powi`,
    /// whose expansion order is codegen's choice.
    beta1_pow: f64,
    beta2_pow: f64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        Self::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        assert!(eps > 0.0);
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            beta1_pow: 1.0,
            beta2_pow: 1.0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of updates applied so far.
    pub fn steps_taken(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(
            params.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
            self.beta1_pow = 1.0;
            self.beta2_pow = 1.0;
        }
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        self.beta1_pow *= b1;
        self.beta2_pow *= b2;
        let bias1 = 1.0 - self.beta1_pow;
        let bias2 = 1.0 - self.beta2_pow;
        for i in 0..params.len() {
            let g = grad[i];
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)² from x = 0 with the given optimizer.
    fn minimize(opt: &mut dyn Optimizer, iters: usize) -> f64 {
        let mut params = vec![0.0];
        for _ in 0..iters {
            let grad = vec![2.0 * (params[0] - 3.0)];
            opt.step(&mut params, &grad);
        }
        params[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = minimize(&mut opt, 400);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimize(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
        assert_eq!(opt.steps_taken(), 500);
    }

    #[test]
    fn adam_handles_ill_scaled_gradients() {
        // Two coordinates with vastly different curvature; Adam's
        // per-coordinate scaling should still make progress on both.
        let mut opt = Adam::new(0.05);
        let mut params = vec![0.0, 0.0];
        for _ in 0..2000 {
            let grad = vec![2000.0 * (params[0] - 1.0), 0.02 * (params[1] - 1.0)];
            opt.step(&mut params, &grad);
        }
        assert!((params[0] - 1.0).abs() < 1e-2, "fast coord {}", params[0]);
        assert!((params[1] - 1.0).abs() < 0.2, "slow coord {}", params[1]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut sgd = Sgd::new(0.1);
        assert_eq!(sgd.learning_rate(), 0.1);
        sgd.set_learning_rate(0.01);
        assert_eq!(sgd.learning_rate(), 0.01);
        let mut adam = Adam::new(0.001);
        adam.set_learning_rate(0.002);
        assert_eq!(adam.learning_rate(), 0.002);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn step_rejects_mismatched_lengths() {
        let mut opt = Sgd::new(0.1);
        let mut params = vec![0.0, 1.0];
        opt.step(&mut params, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_bad_learning_rate() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn sgd_zero_momentum_matches_plain() {
        let mut a = Sgd::new(0.1);
        let mut b = Sgd::with_momentum(0.1, 0.0);
        let mut pa = vec![1.0, -2.0];
        let mut pb = vec![1.0, -2.0];
        let grad = vec![0.3, -0.4];
        a.step(&mut pa, &grad);
        b.step(&mut pb, &grad);
        assert_eq!(pa, pb);
    }
}
