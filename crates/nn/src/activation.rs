//! Element-wise activation functions with derivatives.

/// The activation functions used by the networks in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no non-linearity). Used for output layers whose
    /// non-linearity lives inside the loss (logits).
    Identity,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Logistic sigmoid, `1 / (1 + exp(-x))`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softplus, `log(1 + exp(x))` — a smooth positive function used when a
    /// network must output a strictly positive quantity (e.g. a variance).
    Softplus,
}

impl Activation {
    /// Applies the activation to a single value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Softplus => softplus(x),
        }
    }

    /// Derivative of the activation evaluated at the **pre-activation**
    /// value `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Softplus => sigmoid(x),
        }
    }

    /// Applies the activation element-wise to a slice, returning a new
    /// vector.
    pub fn apply_vec(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }

    /// The stable one-byte code identifying this activation in persisted
    /// snapshots (part of the `p3gm-store` wire format — never renumber).
    pub fn persist_code(self) -> u8 {
        match self {
            Activation::Identity => 0,
            Activation::Relu => 1,
            Activation::Sigmoid => 2,
            Activation::Tanh => 3,
            Activation::Softplus => 4,
        }
    }

    /// Inverse of [`Activation::persist_code`]; `None` for unknown codes.
    pub fn from_persist_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Activation::Identity,
            1 => Activation::Relu,
            2 => Activation::Sigmoid,
            3 => Activation::Tanh,
            4 => Activation::Softplus,
            _ => return None,
        })
    }

    /// Multiplies `grad` element-wise by the derivative evaluated at the
    /// pre-activation values `pre`, in place. This is the backward pass of
    /// an element-wise activation.
    pub fn backprop_inplace(self, pre: &[f64], grad: &mut [f64]) {
        debug_assert_eq!(pre.len(), grad.len());
        for (g, &z) in grad.iter_mut().zip(pre.iter()) {
            *g *= self.derivative(z);
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `log(1 + exp(x))`.
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 5] = [
        Activation::Identity,
        Activation::Relu,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Softplus,
    ];

    #[test]
    fn known_values() {
        assert_eq!(Activation::Identity.apply(-2.5), -2.5);
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
        assert!((Activation::Softplus.apply(0.0) - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in ACTS {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric}, analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) < 1e-12);
        assert!(!sigmoid(750.0).is_nan());
        assert!(!sigmoid(-750.0).is_nan());
    }

    #[test]
    fn softplus_is_stable_at_extremes() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) > 0.0);
        assert!(softplus(-100.0) < 1e-9);
        assert!(!softplus(750.0).is_nan());
    }

    #[test]
    fn apply_vec_and_backprop() {
        let pre = vec![-1.0, 0.5, 2.0];
        let out = Activation::Relu.apply_vec(&pre);
        assert_eq!(out, vec![0.0, 0.5, 2.0]);
        let mut grad = vec![1.0, 1.0, 1.0];
        Activation::Relu.backprop_inplace(&pre, &mut grad);
        assert_eq!(grad, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_derivative_at_zero_is_zero() {
        // Convention: subgradient 0 at the kink.
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
    }
}
