//! Fully-connected (affine) layer.

use p3gm_linalg::{vector, Matrix};
use p3gm_privacy::sampling;
use rand::Rng;

/// A fully-connected layer computing `z = W x + b`.
///
/// Weights are stored row-major as a flat vector of length
/// `out_dim * in_dim`; row `i` of `W` produces output `z[i]`.
#[derive(Debug, Clone)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    /// Row-major weights, `out_dim x in_dim`.
    pub weights: Vec<f64>,
    /// Biases, length `out_dim`.
    pub bias: Vec<f64>,
}

impl Linear {
    /// Creates a layer with He-style Gaussian initialization
    /// (`std = sqrt(2 / in_dim)`), appropriate for ReLU networks.
    pub fn new_he<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        let std = (2.0 / in_dim.max(1) as f64).sqrt();
        Self::new_with_std(rng, in_dim, out_dim, std)
    }

    /// Creates a layer with Xavier/Glorot-style initialization
    /// (`std = sqrt(1 / in_dim)`), appropriate for tanh/sigmoid networks and
    /// linear output heads.
    pub fn new_xavier<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        let std = (1.0 / in_dim.max(1) as f64).sqrt();
        Self::new_with_std(rng, in_dim, out_dim, std)
    }

    /// Creates a layer with Gaussian-initialized weights of the given
    /// standard deviation and zero biases.
    pub fn new_with_std<R: Rng + ?Sized>(
        rng: &mut R,
        in_dim: usize,
        out_dim: usize,
        std: f64,
    ) -> Self {
        Linear {
            in_dim,
            out_dim,
            weights: sampling::normal_vec(rng, in_dim * out_dim, std),
            bias: vec![0.0; out_dim],
        }
    }

    /// Creates a layer with all-zero weights and biases (used in tests).
    pub fn zeros(in_dim: usize, out_dim: usize) -> Self {
        Linear {
            in_dim,
            out_dim,
            weights: vec![0.0; in_dim * out_dim],
            bias: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Total number of parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass: `z = W x + b`.
    ///
    /// Uses the lane-folded [`vector::dot_lanes`] kernel — the same dot
    /// product [`Linear::forward_batch`] computes through
    /// [`Matrix::matmul_transposed_flat`] — so a single-example forward is
    /// bit-identical to the corresponding row of a batched forward.
    ///
    /// # Panics
    /// Debug-asserts that `x.len() == in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim, "Linear::forward input size");
        let mut z = self.bias.clone();
        for (i, zi) in z.iter_mut().enumerate() {
            let row = &self.weights[i * self.in_dim..(i + 1) * self.in_dim];
            *zi += vector::dot_lanes(row, x);
        }
        z
    }

    /// Batched forward pass: `Z = X Wᵀ + 1 bᵀ` for a `batch x in_dim` input,
    /// computed with the register-tiled `A·Bᵀ` kernel directly against the
    /// layer's row-major weights (no transpose is materialized).
    ///
    /// Row `i` of the result is bit-identical to `forward(x.row(i))`: both
    /// reduce each dot product with the same lane fold, and the bias add is
    /// a single IEEE addition on either side.
    ///
    /// # Panics
    /// Debug-asserts that `x.cols() == in_dim`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        debug_assert_eq!(x.cols(), self.in_dim, "Linear::forward_batch input size");
        let mut z = x
            .matmul_transposed_flat(&self.weights, self.out_dim)
            .expect("weights buffer matches layer dimensions");
        for i in 0..z.rows() {
            for (o, &b) in z.row_mut(i).iter_mut().zip(self.bias.iter()) {
                *o += b;
            }
        }
        z
    }

    /// Backward pass for one example.
    ///
    /// Given the input `x` that produced the forward pass and the gradient
    /// of the loss with respect to this layer's **pre-activation output**
    /// `grad_z`, accumulates
    ///
    /// * `grad_w[i*in+j] += grad_z[i] * x[j]`
    /// * `grad_b[i]      += grad_z[i]`
    ///
    /// into the provided buffers and returns the gradient with respect to
    /// the input `x` (`Wᵀ grad_z`), which the previous layer consumes.
    pub fn backward(
        &self,
        x: &[f64],
        grad_z: &[f64],
        grad_w: &mut [f64],
        grad_b: &mut [f64],
    ) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(grad_z.len(), self.out_dim);
        debug_assert_eq!(grad_w.len(), self.weights.len());
        debug_assert_eq!(grad_b.len(), self.bias.len());

        let mut grad_x = vec![0.0; self.in_dim];
        for i in 0..self.out_dim {
            let g = grad_z[i];
            grad_b[i] += g;
            if g == 0.0 {
                continue;
            }
            let row = &self.weights[i * self.in_dim..(i + 1) * self.in_dim];
            let grad_w_row = &mut grad_w[i * self.in_dim..(i + 1) * self.in_dim];
            for j in 0..self.in_dim {
                grad_w_row[j] += g * x[j];
                grad_x[j] += g * row[j];
            }
        }
        grad_x
    }

    /// Copies the layer's parameters (weights then bias) into `out`,
    /// returning the number of values written.
    pub fn write_params(&self, out: &mut [f64]) -> usize {
        let n = self.num_params();
        out[..self.weights.len()].copy_from_slice(&self.weights);
        out[self.weights.len()..n].copy_from_slice(&self.bias);
        n
    }

    /// Reads the layer's parameters (weights then bias) from `input`,
    /// returning the number of values consumed.
    pub fn read_params(&mut self, input: &[f64]) -> usize {
        let n = self.num_params();
        let w_len = self.weights.len();
        self.weights.copy_from_slice(&input[..w_len]);
        self.bias.copy_from_slice(&input[w_len..n]);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_known_values() {
        let mut layer = Linear::zeros(2, 2);
        layer.weights = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
        layer.bias = vec![0.5, -0.5];
        let z = layer.forward(&[1.0, 1.0]);
        assert_eq!(z, vec![3.5, 6.5]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indexed loops mirror the flat gradient layout
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new_he(&mut rng, 3, 2);
        let x = [0.3, -0.7, 1.2];
        // Loss = sum of outputs weighted by fixed coefficients.
        let coeff = [0.9, -1.4];
        let loss = |l: &Linear| -> f64 {
            let z = l.forward(&x);
            z.iter().zip(coeff.iter()).map(|(a, b)| a * b).sum()
        };

        let mut grad_w = vec![0.0; layer.weights.len()];
        let mut grad_b = vec![0.0; layer.bias.len()];
        let grad_x = layer.backward(&x, &coeff, &mut grad_w, &mut grad_b);

        let h = 1e-6;
        // Weights.
        for k in 0..layer.weights.len() {
            let mut plus = layer.clone();
            plus.weights[k] += h;
            let mut minus = layer.clone();
            minus.weights[k] -= h;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!((numeric - grad_w[k]).abs() < 1e-5, "w[{k}]");
        }
        // Biases.
        for k in 0..layer.bias.len() {
            let mut plus = layer.clone();
            plus.bias[k] += h;
            let mut minus = layer.clone();
            minus.bias[k] -= h;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!((numeric - grad_b[k]).abs() < 1e-5, "b[{k}]");
        }
        // Inputs.
        for k in 0..x.len() {
            let mut xp = x;
            xp[k] += h;
            let mut xm = x;
            xm[k] -= h;
            let zp = layer.forward(&xp);
            let zm = layer.forward(&xm);
            let lp: f64 = zp.iter().zip(coeff.iter()).map(|(a, b)| a * b).sum();
            let lm: f64 = zm.iter().zip(coeff.iter()).map(|(a, b)| a * b).sum();
            let numeric = (lp - lm) / (2.0 * h);
            assert!((numeric - grad_x[k]).abs() < 1e-5, "x[{k}]");
        }
    }

    #[test]
    fn backward_accumulates() {
        let mut layer = Linear::zeros(1, 1);
        layer.weights = vec![2.0];
        let mut gw = vec![0.0];
        let mut gb = vec![0.0];
        layer.backward(&[3.0], &[1.0], &mut gw, &mut gb);
        layer.backward(&[3.0], &[1.0], &mut gw, &mut gb);
        assert_eq!(gw, vec![6.0]);
        assert_eq!(gb, vec![2.0]);
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new_xavier(&mut rng, 4, 3);
        let mut buf = vec![0.0; layer.num_params()];
        assert_eq!(layer.write_params(&mut buf), 15);
        let mut other = Linear::zeros(4, 3);
        assert_eq!(other.read_params(&buf), 15);
        assert_eq!(other.weights, layer.weights);
        assert_eq!(other.bias, layer.bias);
    }

    #[test]
    fn initializations_have_sane_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let he = Linear::new_he(&mut rng, 100, 50);
        let var: f64 = he.weights.iter().map(|w| w * w).sum::<f64>() / he.weights.len() as f64;
        assert!((var - 0.02).abs() < 0.005, "He variance {var}");
        assert!(he.bias.iter().all(|&b| b == 0.0));

        let xavier = Linear::new_xavier(&mut rng, 100, 50);
        let var: f64 =
            xavier.weights.iter().map(|w| w * w).sum::<f64>() / xavier.weights.len() as f64;
        assert!((var - 0.01).abs() < 0.003, "Xavier variance {var}");
    }

    #[test]
    fn dims_and_param_count() {
        let layer = Linear::zeros(7, 5);
        assert_eq!(layer.in_dim(), 7);
        assert_eq!(layer.out_dim(), 5);
        assert_eq!(layer.num_params(), 40);
    }
}
