//! DP-SGD: differentially private stochastic gradient descent (paper §II-D).
//!
//! This module glues the per-example gradients produced by [`crate::mlp`]
//! to the gradient-privatization primitive in `p3gm-privacy` and an
//! [`crate::optimizer`] step.  The privacy *accounting* for the resulting
//! training run lives in `p3gm-privacy::rdp` — the trainer here only reports
//! the (steps, sampling-rate, noise) triple the accountant needs.

use crate::optimizer::Optimizer;
use p3gm_linalg::Matrix;
use p3gm_privacy::mechanisms::privatize_gradient_sum_counted;
use p3gm_privacy::PrivacyError;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of a DP-SGD run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpSgdConfig {
    /// Per-example gradient clipping norm `C`.
    pub clip_norm: f64,
    /// Noise multiplier σ (noise std is `σ · C`).
    pub noise_multiplier: f64,
    /// Expected lot (batch) size `B`.
    pub batch_size: usize,
}

impl Default for DpSgdConfig {
    fn default() -> Self {
        DpSgdConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            batch_size: 256,
        }
    }
}

impl DpSgdConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PrivacyError> {
        if self.clip_norm <= 0.0 || self.noise_multiplier < 0.0 || self.batch_size == 0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("invalid DP-SGD configuration: {self:?}"),
            });
        }
        Ok(())
    }

    /// The sampling probability `q = B / N` used by the privacy accountant
    /// for a dataset of `n` records.
    ///
    /// Clamped to `1.0` when `batch_size >= n` (a full-batch lot); the
    /// accountant accepts that boundary and charges the plain
    /// Gaussian-mechanism RDP curve for it.
    pub fn sampling_probability(&self, n: usize) -> f64 {
        (self.batch_size as f64 / n.max(1) as f64).min(1.0)
    }

    /// Privatizes a batch of per-example gradients (`B x P`, one flat
    /// gradient per row — the layout [`crate::mlp::Mlp::per_example_gradients`]
    /// produces) and applies one optimizer step to `params`. Returns the
    /// privatized average gradient (useful for logging gradient norms).
    pub fn step<R: Rng + ?Sized, O: Optimizer + ?Sized>(
        &self,
        rng: &mut R,
        per_example_grads: &Matrix,
        params: &mut [f64],
        optimizer: &mut O,
    ) -> Result<Vec<f64>, PrivacyError> {
        self.step_observed(rng, per_example_grads, params, optimizer)
            .map(|outcome| outcome.gradient)
    }

    /// Like [`step`](DpSgdConfig::step) but also reports what happened:
    /// how many per-example gradients the clip actually touched. The extra
    /// fields are telemetry derived from the same fused pass — no extra
    /// randomness, no change to the update — for `TrainReport` / metrics.
    pub fn step_observed<R: Rng + ?Sized, O: Optimizer + ?Sized>(
        &self,
        rng: &mut R,
        per_example_grads: &Matrix,
        params: &mut [f64],
        optimizer: &mut O,
    ) -> Result<DpSgdStepOutcome, PrivacyError> {
        self.validate()?;
        let (noisy, clipped) = privatize_gradient_sum_counted(
            rng,
            per_example_grads,
            self.clip_norm,
            self.noise_multiplier,
            self.batch_size,
        )?;
        optimizer.step(params, &noisy);
        Ok(DpSgdStepOutcome {
            gradient: noisy,
            clipped_examples: clipped,
            examples: per_example_grads.rows() as u64,
        })
    }
}

/// What one observed DP-SGD step did (see [`DpSgdConfig::step_observed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DpSgdStepOutcome {
    /// The privatized average gradient that was applied.
    pub gradient: Vec<f64>,
    /// Rows of the lot whose L2 norm exceeded the clip norm.
    pub clipped_examples: u64,
    /// Rows in the lot (the realized, not configured, lot size).
    pub examples: u64,
}

/// Samples a lot of `batch_size` example indices uniformly without
/// replacement from `0..n` (the paper assumes uniformly sampled batches, so
/// the sampling probability of any one record is `B/N`).
pub fn sample_batch_indices<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    batch_size: usize,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(batch_size.min(n));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn config_validation() {
        assert!(DpSgdConfig::default().validate().is_ok());
        assert!(DpSgdConfig {
            clip_norm: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DpSgdConfig {
            noise_multiplier: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DpSgdConfig {
            batch_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sampling_probability_clamped() {
        let cfg = DpSgdConfig {
            batch_size: 100,
            ..Default::default()
        };
        assert!((cfg.sampling_probability(1000) - 0.1).abs() < 1e-12);
        assert_eq!(cfg.sampling_probability(50), 1.0);
    }

    #[test]
    fn full_batch_configuration_is_accountable() {
        // batch_size >= n clamps q to 1.0; the accountant must accept the
        // clamped value instead of erroring after training already ran.
        let cfg = DpSgdConfig {
            batch_size: 100,
            ..Default::default()
        };
        let q = cfg.sampling_probability(50);
        assert_eq!(q, 1.0);
        let mut acc = p3gm_privacy::RdpAccountant::default();
        acc.add_dp_sgd(
            10,
            q,
            cfg.noise_multiplier,
            p3gm_privacy::rdp::DpSgdBound::PaperEq4,
        )
        .unwrap();
        let spec = acc.to_dp(1e-5).unwrap();
        assert!(spec.epsilon.is_finite() && spec.epsilon > 0.0);
    }

    #[test]
    fn step_without_noise_is_clipped_sgd() {
        let mut r = rng();
        let cfg = DpSgdConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.0,
            batch_size: 2,
        };
        let mut params = vec![0.0, 0.0];
        let mut opt = Sgd::new(1.0);
        // Two identical unit-norm gradients → average is the gradient itself.
        let grads = Matrix::from_rows(&[vec![0.6, 0.8], vec![0.6, 0.8]]).unwrap();
        let noisy = cfg.step(&mut r, &grads, &mut params, &mut opt).unwrap();
        assert!((noisy[0] - 0.6).abs() < 1e-12);
        assert!((params[0] + 0.6).abs() < 1e-12);
        assert!((params[1] + 0.8).abs() < 1e-12);
    }

    #[test]
    fn step_with_noise_changes_params() {
        let mut r = rng();
        let cfg = DpSgdConfig {
            clip_norm: 1.0,
            noise_multiplier: 2.0,
            batch_size: 4,
        };
        let mut params = vec![0.0; 8];
        let mut opt = Sgd::new(0.1);
        let grads = Matrix::zeros(4, 8);
        cfg.step(&mut r, &grads, &mut params, &mut opt).unwrap();
        // Pure noise: parameters moved away from zero.
        assert!(params.iter().any(|&p| p.abs() > 1e-6));
    }

    #[test]
    fn batch_indices_are_unique_and_in_range() {
        let mut r = rng();
        let idx = sample_batch_indices(&mut r, 100, 32);
        assert_eq!(idx.len(), 32);
        assert!(idx.iter().all(|&i| i < 100));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
        // Requesting more than n clamps.
        assert_eq!(sample_batch_indices(&mut r, 5, 32).len(), 5);
    }
}
