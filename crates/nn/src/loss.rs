//! Loss functions returning both the value and the gradient with respect to
//! the model output (logits where applicable).

use crate::activation::sigmoid;
use p3gm_linalg::vector;

/// Mean-squared error `1/n Σ (y - t)²` and its gradient with respect to `y`.
pub fn mse(prediction: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    debug_assert_eq!(prediction.len(), target.len());
    let n = prediction.len().max(1) as f64;
    let mut grad = vec![0.0; prediction.len()];
    let mut total = 0.0;
    for ((g, &y), &t) in grad.iter_mut().zip(prediction.iter()).zip(target.iter()) {
        let d = y - t;
        total += d * d;
        *g = 2.0 * d / n;
    }
    (total / n, grad)
}

/// Sum-squared error `Σ (y - t)²` and its gradient (no 1/n factor) — the
/// Gaussian-decoder reconstruction term of the ELBO uses the summed form.
pub fn sse(prediction: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    debug_assert_eq!(prediction.len(), target.len());
    let mut grad = vec![0.0; prediction.len()];
    let mut total = 0.0;
    for ((g, &y), &t) in grad.iter_mut().zip(prediction.iter()).zip(target.iter()) {
        let d = y - t;
        total += d * d;
        *g = 2.0 * d;
    }
    (total, grad)
}

/// Bernoulli negative log-likelihood with logits, summed over dimensions:
///
/// `Σ_i [ softplus(z_i) − t_i z_i ]` which equals
/// `−Σ_i [ t_i log σ(z_i) + (1−t_i) log(1−σ(z_i)) ]`
///
/// computed in a numerically stable way. The gradient with respect to the
/// logits is `σ(z) − t`. Targets may be soft (any value in [0, 1]) — this is
/// how the VAE decoder scores continuous data normalized to the unit
/// interval, exactly as the reference implementation does for MNIST pixels.
pub fn bce_with_logits(logits: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    debug_assert_eq!(logits.len(), target.len());
    let mut grad = vec![0.0; logits.len()];
    let mut total = 0.0;
    for ((g, &z), &t) in grad.iter_mut().zip(logits.iter()).zip(target.iter()) {
        // Stable softplus(z) - t*z = max(z,0) - t*z + ln(1 + exp(-|z|)).
        total += z.max(0.0) - t * z + (-z.abs()).exp().ln_1p();
        *g = sigmoid(z) - t;
    }
    (total, grad)
}

/// Softmax cross-entropy with an integer class label, plus gradient with
/// respect to the logits (`softmax(z) − onehot(label)`).
pub fn softmax_cross_entropy(logits: &[f64], label: usize) -> (f64, Vec<f64>) {
    debug_assert!(label < logits.len());
    let probs = vector::softmax(logits);
    let loss = -(probs[label].max(1e-300)).ln();
    let mut grad = probs;
    grad[label] -= 1.0;
    (loss, grad)
}

/// Binary logistic loss for a single logit and a 0/1 label, with gradient.
pub fn logistic_loss(logit: f64, label: f64) -> (f64, f64) {
    let loss = logit.max(0.0) - label * logit + (-logit.abs()).exp().ln_1p();
    let grad = sigmoid(logit) - label;
    (loss, grad)
}

/// KL divergence from a diagonal Gaussian `N(µ, diag(exp(logvar)))` to the
/// standard normal `N(0, I)` (the VAE regularizer), together with the
/// gradients with respect to `µ` and `logvar`:
///
/// `KL = ½ Σ_i [ µ_i² + exp(logvar_i) − logvar_i − 1 ]`
/// `∂KL/∂µ_i = µ_i`,  `∂KL/∂logvar_i = ½ (exp(logvar_i) − 1)`.
pub fn kl_diag_gaussian_standard(mu: &[f64], logvar: &[f64]) -> (f64, Vec<f64>, Vec<f64>) {
    debug_assert_eq!(mu.len(), logvar.len());
    let mut value = 0.0;
    let mut grad_mu = vec![0.0; mu.len()];
    let mut grad_logvar = vec![0.0; logvar.len()];
    for i in 0..mu.len() {
        let v = logvar[i].exp();
        value += 0.5 * (mu[i] * mu[i] + v - logvar[i] - 1.0);
        grad_mu[i] = mu[i];
        grad_logvar[i] = 0.5 * (v - 1.0);
    }
    (value, grad_mu, grad_logvar)
}

/// KL divergence between two diagonal Gaussians
/// `N(µ₀, diag(exp(logvar₀)))` and `N(µ₁, diag(σ₁²))`, with gradients with
/// respect to `µ₀` and `logvar₀`. This is the per-component term of the
/// Hershey–Olsen MoG approximation used by P3GM's Decoding Phase.
///
/// `KL = ½ Σ_i [ log σ₁ᵢ² − logvar₀ᵢ + (exp(logvar₀ᵢ) + (µ₀ᵢ−µ₁ᵢ)²)/σ₁ᵢ² − 1 ]`
pub fn kl_diag_gaussians(
    mu0: &[f64],
    logvar0: &[f64],
    mu1: &[f64],
    var1: &[f64],
) -> (f64, Vec<f64>, Vec<f64>) {
    debug_assert_eq!(mu0.len(), logvar0.len());
    debug_assert_eq!(mu0.len(), mu1.len());
    debug_assert_eq!(mu0.len(), var1.len());
    let mut value = 0.0;
    let mut grad_mu = vec![0.0; mu0.len()];
    let mut grad_logvar = vec![0.0; logvar0.len()];
    for i in 0..mu0.len() {
        let v0 = logvar0[i].exp();
        let v1 = var1[i].max(1e-12);
        let diff = mu0[i] - mu1[i];
        value += 0.5 * (v1.ln() - logvar0[i] + (v0 + diff * diff) / v1 - 1.0);
        grad_mu[i] = diff / v1;
        grad_logvar[i] = 0.5 * (v0 / v1 - 1.0);
    }
    (value, grad_mu, grad_logvar)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn mse_value_and_gradient() {
        let (v, g) = mse(&[1.0, 3.0], &[0.0, 1.0]);
        assert!((v - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 2.0).abs() < 1e-12);
        // Perfect prediction.
        let (v, g) = mse(&[2.0], &[2.0]);
        assert_eq!(v, 0.0);
        assert_eq!(g, vec![0.0]);
    }

    #[test]
    fn sse_value_and_gradient() {
        let (v, g) = sse(&[1.0, 3.0], &[0.0, 1.0]);
        assert!((v - 5.0).abs() < 1e-12);
        assert_eq!(g, vec![2.0, 4.0]);
    }

    #[test]
    fn bce_matches_reference_values() {
        // At logit 0 with target 0.5 the loss is ln 2 per dim.
        let (v, g) = bce_with_logits(&[0.0], &[0.5]);
        assert!((v - 2.0_f64.ln()).abs() < 1e-12);
        assert!(g[0].abs() < 1e-12);
        // Confident and correct → small loss.
        let (v, _) = bce_with_logits(&[10.0], &[1.0]);
        assert!(v < 1e-4);
        // Confident and wrong → large loss, gradient ≈ +1.
        let (v, g) = bce_with_logits(&[10.0], &[0.0]);
        assert!(v > 9.0);
        assert!((g[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        for &t in &[0.0, 0.3, 1.0] {
            for &z in &[-2.0, 0.1, 3.0] {
                let (_, g) = bce_with_logits(&[z], &[t]);
                let numeric = finite_diff(|zz| bce_with_logits(&[zz], &[t]).0, z);
                assert!((g[0] - numeric).abs() < 1e-5, "t={t} z={z}");
            }
        }
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let (v, g) = bce_with_logits(&[1000.0, -1000.0], &[1.0, 0.0]);
        assert!(v.is_finite());
        assert!(g.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_ce_value_and_gradient() {
        let (v, g) = softmax_cross_entropy(&[0.0, 0.0, 0.0], 1);
        assert!((v - 3.0_f64.ln()).abs() < 1e-12);
        assert!((g[1] - (1.0 / 3.0 - 1.0)).abs() < 1e-12);
        assert!((g[0] - 1.0 / 3.0).abs() < 1e-12);
        // Gradient sums to zero.
        assert!(g.iter().sum::<f64>().abs() < 1e-12);
        // Finite-difference check on one logit.
        let logits = [0.5, -0.3, 1.2];
        let (_, g) = softmax_cross_entropy(&logits, 2);
        let numeric = finite_diff(
            |z| {
                let mut l = logits;
                l[0] = z;
                softmax_cross_entropy(&l, 2).0
            },
            logits[0],
        );
        assert!((g[0] - numeric).abs() < 1e-5);
    }

    #[test]
    fn logistic_loss_values() {
        let (v, g) = logistic_loss(0.0, 1.0);
        assert!((v - 2.0_f64.ln()).abs() < 1e-12);
        assert!((g + 0.5).abs() < 1e-12);
        let numeric = finite_diff(|z| logistic_loss(z, 0.0).0, 0.7);
        let (_, g) = logistic_loss(0.7, 0.0);
        assert!((g - numeric).abs() < 1e-5);
    }

    #[test]
    fn kl_standard_zero_at_standard_normal() {
        let (v, gm, gl) = kl_diag_gaussian_standard(&[0.0, 0.0], &[0.0, 0.0]);
        assert!(v.abs() < 1e-12);
        assert!(gm.iter().all(|x| x.abs() < 1e-12));
        assert!(gl.iter().all(|x| x.abs() < 1e-12));
    }

    #[test]
    fn kl_standard_gradients_match_finite_differences() {
        let mu = [0.4, -0.7];
        let logvar = [0.3, -0.5];
        let (_, gm, gl) = kl_diag_gaussian_standard(&mu, &logvar);
        for i in 0..2 {
            let numeric_mu = finite_diff(
                |x| {
                    let mut m = mu;
                    m[i] = x;
                    kl_diag_gaussian_standard(&m, &logvar).0
                },
                mu[i],
            );
            assert!((gm[i] - numeric_mu).abs() < 1e-5);
            let numeric_lv = finite_diff(
                |x| {
                    let mut l = logvar;
                    l[i] = x;
                    kl_diag_gaussian_standard(&mu, &l).0
                },
                logvar[i],
            );
            assert!((gl[i] - numeric_lv).abs() < 1e-5);
        }
    }

    #[test]
    fn kl_between_gaussians_zero_when_equal() {
        let mu = [0.3, -0.4];
        let logvar = [0.2_f64, -0.1];
        let var: Vec<f64> = logvar.iter().map(|l| l.exp()).collect();
        let (v, _, _) = kl_diag_gaussians(&mu, &logvar, &mu, &var);
        assert!(v.abs() < 1e-12);
    }

    #[test]
    fn kl_between_gaussians_reduces_to_standard_case() {
        let mu = [0.4, -0.7];
        let logvar = [0.3, -0.5];
        let (a, gm_a, gl_a) = kl_diag_gaussian_standard(&mu, &logvar);
        let (b, gm_b, gl_b) = kl_diag_gaussians(&mu, &logvar, &[0.0, 0.0], &[1.0, 1.0]);
        assert!((a - b).abs() < 1e-12);
        for i in 0..2 {
            assert!((gm_a[i] - gm_b[i]).abs() < 1e-12);
            assert!((gl_a[i] - gl_b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn kl_between_gaussians_gradients_match_finite_differences() {
        let mu0 = [0.4, -0.7];
        let logvar0 = [0.3, -0.5];
        let mu1 = [1.0, 0.5];
        let var1 = [2.0, 0.7];
        let (_, gm, gl) = kl_diag_gaussians(&mu0, &logvar0, &mu1, &var1);
        for i in 0..2 {
            let numeric_mu = finite_diff(
                |x| {
                    let mut m = mu0;
                    m[i] = x;
                    kl_diag_gaussians(&m, &logvar0, &mu1, &var1).0
                },
                mu0[i],
            );
            assert!((gm[i] - numeric_mu).abs() < 1e-5);
            let numeric_lv = finite_diff(
                |x| {
                    let mut l = logvar0;
                    l[i] = x;
                    kl_diag_gaussians(&mu0, &l, &mu1, &var1).0
                },
                logvar0[i],
            );
            assert!((gl[i] - numeric_lv).abs() < 1e-5);
        }
    }

    #[test]
    fn kl_is_nonnegative() {
        let (v, _, _) = kl_diag_gaussians(&[1.0], &[0.5], &[-1.0], &[0.3]);
        assert!(v > 0.0);
        let (v, _, _) = kl_diag_gaussian_standard(&[2.0], &[1.0]);
        assert!(v > 0.0);
    }
}
