//! A small convolutional network used as the downstream image classifier.
//!
//! The paper's Table VII trains "one Convolutional network with 28 kernels
//! of size (3,3), MaxPooling (2,2) and two FC layers [128, 10]" on the
//! synthetic images. This module implements that architecture (scaled to the
//! synthetic image resolution) with explicit forward/backward passes:
//! [`Conv2d`] (valid padding, stride 1), [`MaxPool2d`] (2×2) and
//! [`SimpleCnn`] combining them with a two-layer fully-connected head.

use crate::linear::Linear;
use crate::loss::softmax_cross_entropy;
use crate::optimizer::Optimizer;
use p3gm_linalg::Matrix;
use p3gm_privacy::sampling;
use rand::Rng;

/// A 2-D convolution layer with stride 1 and valid (no) padding, operating
/// on single-channel square images.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Number of output channels (kernels).
    pub out_channels: usize,
    /// Kernel side length.
    pub kernel: usize,
    /// Kernel weights: one `kernel²`-wide row per output channel.
    pub weights: Matrix,
    /// Per-channel bias.
    pub bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized kernels.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, out_channels: usize, kernel: usize) -> Self {
        let fan_in = (kernel * kernel) as f64;
        let std = (2.0 / fan_in).sqrt();
        Conv2d {
            out_channels,
            kernel,
            weights: Matrix::from_vec(
                out_channels,
                kernel * kernel,
                sampling::normal_vec(rng, out_channels * kernel * kernel, std),
            )
            .expect("kernel buffer length matches shape"),
            bias: vec![0.0; out_channels],
        }
    }

    /// Output side length for an input of side `size`.
    pub fn out_size(&self, size: usize) -> usize {
        size + 1 - self.kernel
    }

    /// Forward pass: input is a `size x size` single-channel image
    /// (row-major); the output matrix holds one `out_size²`-wide feature map
    /// per channel row.
    pub fn forward(&self, input: &[f64], size: usize) -> Matrix {
        debug_assert_eq!(input.len(), size * size);
        let out = self.out_size(size);
        let mut maps = Matrix::zeros(self.out_channels, out * out);
        for c in 0..self.out_channels {
            let w = self.weights.row(c);
            let b = self.bias[c];
            let map = maps.row_mut(c);
            for oy in 0..out {
                for ox in 0..out {
                    let mut acc = b;
                    for ky in 0..self.kernel {
                        let row =
                            &input[(oy + ky) * size + ox..(oy + ky) * size + ox + self.kernel];
                        let wrow = &w[ky * self.kernel..(ky + 1) * self.kernel];
                        for (iv, wv) in row.iter().zip(wrow.iter()) {
                            acc += iv * wv;
                        }
                    }
                    map[oy * out + ox] = acc;
                }
            }
        }
        maps
    }

    /// Backward pass: accumulates kernel/bias gradients given the gradient
    /// of the loss with respect to the output maps (one map per row).
    /// `grad_weights` is the flat row-major `out_channels x kernel²` kernel
    /// gradient buffer (a sub-slice of the model's flat gradient).
    pub fn backward(
        &self,
        input: &[f64],
        size: usize,
        grad_maps: &Matrix,
        grad_weights: &mut [f64],
        grad_bias: &mut [f64],
    ) {
        let out = self.out_size(size);
        let k2 = self.kernel * self.kernel;
        for c in 0..self.out_channels {
            let gmap = grad_maps.row(c);
            let grad_w = &mut grad_weights[c * k2..(c + 1) * k2];
            for oy in 0..out {
                for ox in 0..out {
                    let g = gmap[oy * out + ox];
                    if g == 0.0 {
                        continue;
                    }
                    grad_bias[c] += g;
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            grad_w[ky * self.kernel + kx] += g * input[(oy + ky) * size + ox + kx];
                        }
                    }
                }
            }
        }
    }

    /// Serializes the layer into a framed `p3gm-store` buffer (kernel
    /// geometry, kernel matrix, biases; bit-exact round trip).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::CONV2D);
        enc.usize(self.out_channels).usize(self.kernel);
        enc.nested(&self.weights.to_bytes()).f64_slice(&self.bias);
        enc.finish()
    }

    /// Deserializes a layer from a buffer produced by [`Conv2d::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Conv2d> {
        use p3gm_store::StoreError;
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::CONV2D)?;
        let out_channels = dec.usize()?;
        let kernel = dec.usize()?;
        let weights = Matrix::from_bytes(dec.nested()?)?;
        let bias = dec.f64_vec()?;
        dec.finish()?;
        let k2 = kernel
            .checked_mul(kernel)
            .ok_or_else(|| StoreError::Invalid {
                msg: "kernel size overflows".to_string(),
            })?;
        if weights.shape() != (out_channels, k2) || bias.len() != out_channels {
            return Err(StoreError::Invalid {
                msg: format!(
                    "conv buffers inconsistent with {out_channels} channels of {kernel}x{kernel} kernels"
                ),
            });
        }
        if weights
            .as_slice()
            .iter()
            .chain(bias.iter())
            .any(|v| !v.is_finite())
        {
            return Err(StoreError::Invalid {
                msg: "conv layer contains non-finite parameters".to_string(),
            });
        }
        Ok(Conv2d {
            out_channels,
            kernel,
            weights,
            bias,
        })
    }
}

/// 2×2 max-pooling with stride 2 (drops a trailing odd row/column).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxPool2d;

impl MaxPool2d {
    /// Output side length for an input of side `size`.
    pub fn out_size(size: usize) -> usize {
        size / 2
    }

    /// Forward pass over one feature map, returning the pooled map and the
    /// argmax indices (into the input map) needed for backprop.
    pub fn forward(map: &[f64], size: usize) -> (Vec<f64>, Vec<usize>) {
        let out = Self::out_size(size);
        let mut pooled = vec![f64::NEG_INFINITY; out * out];
        let mut argmax = vec![0usize; out * out];
        for oy in 0..out {
            for ox in 0..out {
                for dy in 0..2 {
                    for dx in 0..2 {
                        let idx = (2 * oy + dy) * size + 2 * ox + dx;
                        if map[idx] > pooled[oy * out + ox] {
                            pooled[oy * out + ox] = map[idx];
                            argmax[oy * out + ox] = idx;
                        }
                    }
                }
            }
        }
        (pooled, argmax)
    }

    /// Backward pass: routes the pooled gradient back to the argmax
    /// positions of the input map.
    pub fn backward(grad_pooled: &[f64], argmax: &[usize], input_len: usize) -> Vec<f64> {
        let mut grad = vec![0.0; input_len];
        for (&g, &idx) in grad_pooled.iter().zip(argmax.iter()) {
            grad[idx] += g;
        }
        grad
    }
}

/// A small CNN classifier: Conv(3×3, `n_kernels`) → ReLU → MaxPool(2×2) →
/// FC(hidden) → ReLU → FC(classes).
#[derive(Debug, Clone)]
pub struct SimpleCnn {
    conv: Conv2d,
    fc1: Linear,
    fc2: Linear,
    image_size: usize,
    n_classes: usize,
}

impl SimpleCnn {
    /// Builds the classifier for `image_size × image_size` single-channel
    /// inputs.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        image_size: usize,
        n_kernels: usize,
        hidden: usize,
        n_classes: usize,
    ) -> Self {
        assert!(image_size >= 4, "image must be at least 4x4");
        let conv = Conv2d::new(rng, n_kernels, 3);
        let conv_out = conv.out_size(image_size);
        let pooled = MaxPool2d::out_size(conv_out);
        let flat = n_kernels * pooled * pooled;
        SimpleCnn {
            conv,
            fc1: Linear::new_he(rng, flat, hidden),
            fc2: Linear::new_xavier(rng, hidden, n_classes),
            image_size,
            n_classes,
        }
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Forward pass returning class logits.
    pub fn forward(&self, image: &[f64]) -> Vec<f64> {
        let (logits, _) = self.forward_full(image);
        logits
    }

    /// Predicted class label.
    pub fn predict(&self, image: &[f64]) -> usize {
        let logits = self.forward(image);
        p3gm_linalg::vector::argmax(&logits).unwrap_or(0)
    }

    /// Class probabilities (softmax of the logits).
    pub fn predict_proba(&self, image: &[f64]) -> Vec<f64> {
        p3gm_linalg::vector::softmax(&self.forward(image))
    }

    #[allow(clippy::type_complexity)]
    fn forward_full(&self, image: &[f64]) -> (Vec<f64>, CnnCache) {
        debug_assert_eq!(image.len(), self.image_size * self.image_size);
        let conv_maps = self.conv.forward(image, self.image_size);
        let conv_size = self.conv.out_size(self.image_size);
        // ReLU then pool each map (one map per row of `conv_maps`).
        let mut pooled_flat = Vec::new();
        let mut argmaxes = Vec::with_capacity(conv_maps.rows());
        for map in conv_maps.row_iter() {
            let relu: Vec<f64> = map.iter().map(|&v| v.max(0.0)).collect();
            let (pooled, argmax) = MaxPool2d::forward(&relu, conv_size);
            pooled_flat.extend_from_slice(&pooled);
            argmaxes.push(argmax);
        }
        let z1 = self.fc1.forward(&pooled_flat);
        let h1: Vec<f64> = z1.iter().map(|&v| v.max(0.0)).collect();
        let logits = self.fc2.forward(&h1);
        (
            logits,
            CnnCache {
                conv_maps,
                argmaxes,
                pooled_flat,
                z1,
                h1,
            },
        )
    }

    /// Trains the classifier with plain mini-batch SGD/Adam on
    /// softmax cross-entropy. `images` is a batch matrix (one flattened
    /// image per row), `labels` the integer classes. Returns the average
    /// loss of the final epoch.
    pub fn train<R: Rng + ?Sized, O: Optimizer>(
        &mut self,
        rng: &mut R,
        images: &Matrix,
        labels: &[usize],
        optimizer: &mut O,
        epochs: usize,
        batch_size: usize,
    ) -> f64 {
        assert_eq!(images.rows(), labels.len());
        let n = images.rows();
        let mut last_epoch_loss = 0.0;
        for _ in 0..epochs {
            let order = crate::dpsgd::sample_batch_indices(rng, n, n);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch_size.max(1)) {
                let (loss, grads) = self.batch_gradient(chunk, images, labels);
                epoch_loss += loss * chunk.len() as f64;
                let mut params = self.params();
                optimizer.step(&mut params, &grads);
                self.set_params(&params);
            }
            last_epoch_loss = epoch_loss / n as f64;
        }
        last_epoch_loss
    }

    /// Average loss and gradient over a batch of example indices, with
    /// per-example backward passes distributed over row chunks and the
    /// partial gradients folded in chunk order (deterministic for every
    /// thread count).
    fn batch_gradient(
        &self,
        indices: &[usize],
        images: &Matrix,
        labels: &[usize],
    ) -> (f64, Vec<f64>) {
        // Chunks floored at 4 images: conv backward passes are heavy enough
        // to amortize dispatch at that granularity, and small batches avoid
        // allocating one P-length partial per example.
        let (total, mut grads) = p3gm_parallel::par_map_reduce(
            indices.len(),
            p3gm_parallel::default_chunk_len(indices.len()).max(4),
            |range| {
                let mut grads = vec![0.0; self.num_params()];
                let mut total = 0.0;
                for &i in &indices[range] {
                    total += self.example_backward(images.row(i), labels[i], &mut grads);
                }
                (total, grads)
            },
            |(loss_a, mut grads_a), (loss_b, grads_b)| {
                p3gm_linalg::vector::axpy(1.0, &grads_b, &mut grads_a);
                (loss_a + loss_b, grads_a)
            },
        )
        .unwrap_or_else(|| (0.0, vec![0.0; self.num_params()]));
        let scale = 1.0 / indices.len().max(1) as f64;
        for g in &mut grads {
            *g *= scale;
        }
        (total * scale, grads)
    }

    /// Backward pass for one example; accumulates into `grads` and returns
    /// the loss.
    fn example_backward(&self, image: &[f64], label: usize, grads: &mut [f64]) -> f64 {
        let (logits, cache) = self.forward_full(image);
        let (loss, grad_logits) = softmax_cross_entropy(&logits, label);

        // Split the flat gradient buffer into per-component slices.
        let conv_w_len = self.conv.out_channels * self.conv.kernel * self.conv.kernel;
        let conv_b_len = self.conv.out_channels;
        let fc1_len = self.fc1.num_params();
        let (conv_w_flat, rest) = grads.split_at_mut(conv_w_len);
        let (conv_b, rest) = rest.split_at_mut(conv_b_len);
        let (fc1_grad, fc2_grad) = rest.split_at_mut(fc1_len);

        // FC2 backward.
        let fc2_w_len = self.fc2.in_dim() * self.fc2.out_dim();
        let (fc2_w, fc2_b) = fc2_grad.split_at_mut(fc2_w_len);
        let grad_h1 = self.fc2.backward(&cache.h1, &grad_logits, fc2_w, fc2_b);

        // ReLU on fc1 output.
        let mut grad_z1 = grad_h1;
        for (g, &z) in grad_z1.iter_mut().zip(cache.z1.iter()) {
            if z <= 0.0 {
                *g = 0.0;
            }
        }

        // FC1 backward.
        let fc1_w_len = self.fc1.in_dim() * self.fc1.out_dim();
        let (fc1_w, fc1_b) = fc1_grad.split_at_mut(fc1_w_len);
        let grad_pooled_flat = self
            .fc1
            .backward(&cache.pooled_flat, &grad_z1, fc1_w, fc1_b);

        // Un-pool and un-ReLU back to the convolution output.
        let conv_size = self.conv.out_size(self.image_size);
        let pooled_size = MaxPool2d::out_size(conv_size);
        let per_map = pooled_size * pooled_size;
        let mut grad_maps = Matrix::zeros(self.conv.out_channels, conv_size * conv_size);
        for c in 0..self.conv.out_channels {
            let slice = &grad_pooled_flat[c * per_map..(c + 1) * per_map];
            let grad_map = MaxPool2d::backward(slice, &cache.argmaxes[c], conv_size * conv_size);
            let dst = grad_maps.row_mut(c);
            for ((d, g), &z) in dst
                .iter_mut()
                .zip(grad_map.iter())
                .zip(cache.conv_maps.row(c).iter())
            {
                *d = if z <= 0.0 { 0.0 } else { *g };
            }
        }

        // Conv backward (kernel gradients only; input gradient not needed).
        self.conv
            .backward(image, self.image_size, &grad_maps, conv_w_flat, conv_b);
        loss
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.conv.out_channels * self.conv.kernel * self.conv.kernel
            + self.conv.out_channels
            + self.fc1.num_params()
            + self.fc2.num_params()
    }

    /// Flat parameter vector (conv kernels, conv bias, fc1, fc2).
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        out.extend_from_slice(self.conv.weights.as_slice());
        out.extend_from_slice(&self.conv.bias);
        let mut buf = vec![0.0; self.fc1.num_params()];
        self.fc1.write_params(&mut buf);
        out.extend_from_slice(&buf);
        let mut buf = vec![0.0; self.fc2.num_params()];
        self.fc2.write_params(&mut buf);
        out.extend_from_slice(&buf);
        out
    }

    /// Overwrites parameters from a flat vector produced by
    /// [`SimpleCnn::params`].
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params());
        let w_len = self.conv.out_channels * self.conv.kernel * self.conv.kernel;
        let mut offset = 0;
        self.conv
            .weights
            .as_mut_slice()
            .copy_from_slice(&params[offset..offset + w_len]);
        offset += w_len;
        self.conv
            .bias
            .copy_from_slice(&params[offset..offset + self.conv.out_channels]);
        offset += self.conv.out_channels;
        offset += self
            .fc1
            .read_params(&params[offset..offset + self.fc1.num_params()]);
        self.fc2
            .read_params(&params[offset..offset + self.fc2.num_params()]);
    }
}

#[derive(Debug, Clone)]
struct CnnCache {
    conv_maps: Matrix,
    argmaxes: Vec<Vec<usize>>,
    pooled_flat: Vec<f64>,
    z1: Vec<f64>,
    h1: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn conv_byte_round_trip_is_bit_exact() {
        let conv = Conv2d::new(&mut rng(), 4, 3);
        let back = Conv2d::from_bytes(&conv.to_bytes()).unwrap();
        assert_eq!(back.out_channels, conv.out_channels);
        assert_eq!(back.kernel, conv.kernel);
        assert_eq!(back.weights.as_slice(), conv.weights.as_slice());
        assert_eq!(back.bias, conv.bias);
        let image: Vec<f64> = (0..36).map(|i| (i as f64 * 0.11).sin()).collect();
        assert_eq!(
            back.forward(&image, 6).as_slice(),
            conv.forward(&image, 6).as_slice()
        );
        // Malformed buffers fail with typed errors.
        let bytes = conv.to_bytes();
        assert!(Conv2d::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut corrupted = bytes.clone();
        corrupted[40] ^= 0x08;
        assert!(Conv2d::from_bytes(&corrupted).is_err());
    }

    #[test]
    fn conv_forward_known_kernel() {
        let mut conv = Conv2d::new(&mut rng(), 1, 2);
        // picks top-left of each window
        conv.weights = Matrix::from_rows(&[vec![1.0, 0.0, 0.0, 0.0]]).unwrap();
        conv.bias = vec![0.5];
        let input = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let maps = conv.forward(&input, 3);
        assert_eq!(maps.shape(), (1, 4));
        assert_eq!(maps.row(0), &[1.5, 2.5, 4.5, 5.5]);
        assert_eq!(conv.out_size(3), 2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indexed loops mirror the flat gradient layout
    fn conv_backward_matches_finite_differences() {
        let mut r = rng();
        let conv = Conv2d::new(&mut r, 2, 2);
        let input: Vec<f64> = (0..16).map(|i| (i as f64) / 16.0).collect();
        let size = 4;
        let out = conv.out_size(size);
        // Loss: sum of all output values.
        let loss_of = |c: &Conv2d| -> f64 { c.forward(&input, size).as_slice().iter().sum() };
        let grad_maps = Matrix::filled(2, out * out, 1.0);
        let mut gw = vec![0.0; 8];
        let mut gb = vec![0.0; 2];
        conv.backward(&input, size, &grad_maps, &mut gw, &mut gb);
        let h = 1e-6;
        for c in 0..2 {
            for k in 0..4 {
                let mut plus = conv.clone();
                plus.weights.set(c, k, plus.weights.get(c, k) + h);
                let mut minus = conv.clone();
                minus.weights.set(c, k, minus.weights.get(c, k) - h);
                let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
                assert!((numeric - gw[c * 4 + k]).abs() < 1e-4, "kernel {c},{k}");
            }
            let mut plus = conv.clone();
            plus.bias[c] += h;
            let mut minus = conv.clone();
            minus.bias[c] -= h;
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
            assert!((numeric - gb[c]).abs() < 1e-4, "bias {c}");
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let map = vec![
            1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 6.0, 7.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
        ];
        let (pooled, argmax) = MaxPool2d::forward(&map, 4);
        assert_eq!(pooled.len(), 4);
        assert_eq!(pooled[0], 5.0);
        assert_eq!(pooled[1], 7.0);
        let grad = MaxPool2d::backward(&[1.0, 2.0, 3.0, 4.0], &argmax, 16);
        assert_eq!(grad.iter().filter(|&&g| g != 0.0).count(), 4);
        assert_eq!(grad[1], 1.0); // position of the 5.0
    }

    #[test]
    fn cnn_shapes() {
        let mut r = rng();
        let cnn = SimpleCnn::new(&mut r, 8, 4, 16, 3);
        assert_eq!(cnn.n_classes(), 3);
        let image = vec![0.5; 64];
        assert_eq!(cnn.forward(&image).len(), 3);
        let proba = cnn.predict_proba(&image);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(cnn.predict(&image) < 3);
        // Param round-trip.
        let p = cnn.params();
        assert_eq!(p.len(), cnn.num_params());
        let mut other = SimpleCnn::new(&mut r, 8, 4, 16, 3);
        other.set_params(&p);
        let a = cnn.forward(&image);
        let b = other.forward(&image);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn cnn_learns_to_separate_simple_patterns() {
        let mut r = rng();
        // Two classes: bright top half vs bright bottom half, 8x8 images.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let mut img = vec![0.0; 64];
            let class = i % 2;
            let noise = (i as f64 * 0.37).sin() * 0.1;
            for y in 0..8 {
                for x in 0..8 {
                    let bright = if class == 0 { y < 4 } else { y >= 4 };
                    img[y * 8 + x] = if bright { 0.9 + noise } else { 0.1 - noise };
                }
            }
            rows.push(img);
            labels.push(class);
        }
        let images = Matrix::from_rows(&rows).unwrap();
        let mut cnn = SimpleCnn::new(&mut r, 8, 4, 16, 2);
        let mut opt = Adam::new(0.01);
        cnn.train(&mut r, &images, &labels, &mut opt, 12, 10);
        let correct = images
            .row_iter()
            .zip(labels.iter())
            .filter(|(img, &l)| cnn.predict(img) == l)
            .count();
        assert!(
            correct as f64 / images.rows() as f64 > 0.9,
            "accuracy {}/{}",
            correct,
            images.rows()
        );
    }
}
