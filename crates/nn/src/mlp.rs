//! Multi-layer perceptron with per-example backpropagation and flat
//! parameter/gradient vectors.
//!
//! DP-SGD needs the gradient of the loss with respect to **all** parameters
//! of a model for **each individual example** (so it can clip per-example
//! norms before aggregation).  The [`Mlp`] therefore exposes its parameters
//! as one flat `Vec<f64>`, and its batch APIs ([`Mlp::forward_batch`],
//! [`Mlp::per_example_gradients`]) operate on contiguous `Matrix` batches —
//! one example per row — parallelized over row chunks with deterministic
//! (thread-count-independent) results. The per-example gradient batch is a
//! `B x P` matrix that `p3gm-privacy::privatize_gradient_sum` consumes
//! directly.

use crate::activation::Activation;
use crate::linear::Linear;
use p3gm_linalg::Matrix;
use rand::Rng;

/// A fully-connected feed-forward network.
///
/// Hidden layers use `hidden_activation`; the final layer uses
/// `output_activation` (typically [`Activation::Identity`], with any output
/// non-linearity folded into the loss as logits).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

/// Intermediate values cached during a forward pass, needed by backward.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Input to each layer (`inputs[0]` is the network input).
    inputs: Vec<Vec<f64>>,
    /// Pre-activation output of each layer.
    pre_activations: Vec<Vec<f64>>,
    /// Post-activation output of the final layer.
    output: Vec<f64>,
}

impl MlpCache {
    /// The network output recorded in this cache.
    pub fn output(&self) -> &[f64] {
        &self.output
    }
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[784, 1000, 10]`
    /// creates two `Linear` layers (`784→1000`, `1000→10`).
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least an input and an output size"
        );
        let layers = sizes
            .windows(2)
            .map(|w| match hidden_activation {
                Activation::Relu => Linear::new_he(rng, w[0], w[1]),
                _ => Linear::new_xavier(rng, w[0], w[1]),
            })
            .collect();
        Mlp {
            layers,
            hidden_activation,
            output_activation,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(Linear::in_dim).unwrap_or(0)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(Linear::out_dim).unwrap_or(0)
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Returns all parameters as one flat vector (layer by layer, weights
    /// then biases).
    pub fn params(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_params()];
        let mut offset = 0;
        for layer in &self.layers {
            offset += layer.write_params(&mut out[offset..offset + layer.num_params()]);
        }
        debug_assert_eq!(offset, out.len());
        out
    }

    /// Overwrites all parameters from a flat vector produced by
    /// [`Mlp::params`].
    ///
    /// # Panics
    /// Panics if the length does not match [`Mlp::num_params`].
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_params(&params[offset..offset + layer.num_params()]);
        }
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&h);
            let act = if i == last {
                self.output_activation
            } else {
                self.hidden_activation
            };
            h = act.apply_vec(&z);
        }
        h
    }

    /// Forward pass that records the intermediate values needed by
    /// [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> MlpCache {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(h.clone());
            let z = layer.forward(&h);
            let act = if i == last {
                self.output_activation
            } else {
                self.hidden_activation
            };
            h = act.apply_vec(&z);
            pre_activations.push(z);
        }
        MlpCache {
            inputs,
            pre_activations,
            output: h,
        }
    }

    /// Backward pass for one example.
    ///
    /// `grad_output` is the gradient of the loss with respect to the
    /// network's (post-activation) output. The parameter gradient is
    /// **accumulated** into `grad_params` (flat, same layout as
    /// [`Mlp::params`]); the return value is the gradient with respect to
    /// the network input.
    pub fn backward(
        &self,
        cache: &MlpCache,
        grad_output: &[f64],
        grad_params: &mut [f64],
    ) -> Vec<f64> {
        assert_eq!(grad_params.len(), self.num_params());
        assert_eq!(grad_output.len(), self.out_dim());

        // Pre-compute flat offsets of each layer.
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut acc = 0;
        for layer in &self.layers {
            offsets.push(acc);
            acc += layer.num_params();
        }

        let last = self.layers.len() - 1;
        let mut grad = grad_output.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let act = if i == last {
                self.output_activation
            } else {
                self.hidden_activation
            };
            act.backprop_inplace(&cache.pre_activations[i], &mut grad);
            let start = offsets[i];
            let w_len = layer.in_dim() * layer.out_dim();
            let (gw, gb) = grad_params[start..start + layer.num_params()].split_at_mut(w_len);
            grad = layer.backward(&cache.inputs[i], &grad, gw, gb);
        }
        grad
    }

    /// Convenience: computes the per-example flat gradient for a loss whose
    /// gradient with respect to the output is supplied by `loss_grad`
    /// (a fresh zeroed buffer is allocated).
    pub fn example_gradient(&self, x: &[f64], grad_output: &[f64]) -> Vec<f64> {
        let cache = self.forward_cached(x);
        let mut grads = vec![0.0; self.num_params()];
        self.backward(&cache, grad_output, &mut grads);
        grads
    }

    /// Batched forward pass: one input per row of `x`, one output per row of
    /// the result.
    ///
    /// The batch flows through the network layer-wise: each layer is one
    /// register-tiled `X Wᵀ` product ([`Linear::forward_batch`]) followed by
    /// an element-wise activation sweep — no per-row dispatch or
    /// allocation. Row `i` of the result is bit-identical to
    /// `forward(x.row(i))` (both paths reduce every dot product with the
    /// same lane fold), and the matrix kernel parallelizes over row chunks,
    /// so the result is also bit-identical for every thread count.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "forward_batch input width");
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward_batch(&h);
            let act = if i == last {
                self.output_activation
            } else {
                self.hidden_activation
            };
            z.map_inplace(|v| act.apply(v));
            h = z;
        }
        h
    }

    /// Per-example parameter gradients for a batch: row `i` of the returned
    /// `B x P` matrix is the flat gradient of example `i` given the loss
    /// gradient `grad_outputs.row(i)` with respect to the network output.
    ///
    /// This is the DP-SGD hot kernel; the resulting batch feeds straight
    /// into `p3gm-privacy`'s clipped-sum aggregation.
    ///
    /// The forward passes run **batched** (the same register-tiled layer
    /// kernels as [`Mlp::forward_batch`], with per-layer input and
    /// pre-activation matrices as the shared cache), then each example's
    /// backward pass runs independently on parallel row chunks over the
    /// cached rows. Cached rows are bit-identical to a single-example
    /// [`Mlp::forward_cached`], and the backward op sequence is unchanged,
    /// so each gradient row equals [`Mlp::example_gradient`] exactly — and
    /// the batch is bit-identical for every thread count.
    pub fn per_example_gradients(&self, x: &Matrix, grad_outputs: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "per_example_gradients input");
        assert_eq!(grad_outputs.cols(), self.out_dim());
        assert_eq!(x.rows(), grad_outputs.rows(), "batch size mismatch");
        let n_params = self.num_params();
        let last = self.layers.len() - 1;

        // Batched forward, caching each layer's input batch and
        // pre-activation batch.
        let mut inputs: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let mut pre_activations: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward_batch(&h);
            inputs.push(std::mem::replace(&mut h, z.clone()));
            let act = if i == last {
                self.output_activation
            } else {
                self.hidden_activation
            };
            h.map_inplace(|v| act.apply(v));
            pre_activations.push(z);
        }

        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut acc = 0;
        for layer in &self.layers {
            offsets.push(acc);
            acc += layer.num_params();
        }

        let mut grads = Matrix::zeros(x.rows(), n_params);
        let rows_per_chunk = p3gm_parallel::default_chunk_len(x.rows());
        p3gm_parallel::par_chunks_mut(
            grads.as_mut_slice(),
            rows_per_chunk * n_params.max(1),
            |chunk_index, grad_chunk| {
                let base = chunk_index * rows_per_chunk;
                for (local, grad_row) in grad_chunk.chunks_mut(n_params.max(1)).enumerate() {
                    let i = base + local;
                    let mut grad = grad_outputs.row(i).to_vec();
                    for (l, layer) in self.layers.iter().enumerate().rev() {
                        let act = if l == last {
                            self.output_activation
                        } else {
                            self.hidden_activation
                        };
                        act.backprop_inplace(pre_activations[l].row(i), &mut grad);
                        let start = offsets[l];
                        let w_len = layer.in_dim() * layer.out_dim();
                        let (gw, gb) =
                            grad_row[start..start + layer.num_params()].split_at_mut(w_len);
                        grad = layer.backward(inputs[l].row(i), &grad, gw, gb);
                    }
                }
            },
        );
        grads
    }

    /// Serializes the network into a framed `p3gm-store` buffer: the two
    /// activation codes, then per layer its dimensions, weights and biases
    /// as `f64` bit patterns (bit-exact round trip).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::MLP);
        enc.u8(self.hidden_activation.persist_code())
            .u8(self.output_activation.persist_code())
            .usize(self.layers.len());
        for layer in &self.layers {
            enc.usize(layer.in_dim())
                .usize(layer.out_dim())
                .f64_slice(&layer.weights)
                .f64_slice(&layer.bias);
        }
        enc.finish()
    }

    /// Deserializes a network from a buffer produced by [`Mlp::to_bytes`].
    ///
    /// Validates the layer chain (each layer's input width must match the
    /// previous layer's output width) and every buffer length; malformed
    /// input returns a typed [`p3gm_store::StoreError`], never panics.
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Mlp> {
        use p3gm_store::StoreError;
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::MLP)?;
        let hidden_activation =
            Activation::from_persist_code(dec.u8()?).ok_or_else(|| StoreError::Invalid {
                msg: "unknown hidden-activation code".to_string(),
            })?;
        let output_activation =
            Activation::from_persist_code(dec.u8()?).ok_or_else(|| StoreError::Invalid {
                msg: "unknown output-activation code".to_string(),
            })?;
        let n_layers = dec.usize()?;
        if n_layers == 0 {
            return Err(StoreError::Invalid {
                msg: "an MLP needs at least one layer".to_string(),
            });
        }
        let mut layers = Vec::with_capacity(n_layers.min(1024));
        let mut prev_out: Option<usize> = None;
        for index in 0..n_layers {
            let in_dim = dec.usize()?;
            let out_dim = dec.usize()?;
            let weights = dec.f64_vec()?;
            let bias = dec.f64_vec()?;
            if in_dim.checked_mul(out_dim) != Some(weights.len()) || bias.len() != out_dim {
                return Err(StoreError::Invalid {
                    msg: format!("layer {index} buffers inconsistent with {in_dim}->{out_dim}"),
                });
            }
            if weights.iter().chain(bias.iter()).any(|v| !v.is_finite()) {
                return Err(StoreError::Invalid {
                    msg: format!("layer {index} contains non-finite parameters"),
                });
            }
            if let Some(prev) = prev_out {
                if prev != in_dim {
                    return Err(StoreError::Invalid {
                        msg: format!(
                            "layer {index} input width {in_dim} does not chain onto {prev}"
                        ),
                    });
                }
            }
            prev_out = Some(out_dim);
            let mut layer = Linear::zeros(in_dim, out_dim);
            layer.weights = weights;
            layer.bias = bias;
            layers.push(layer);
        }
        dec.finish()?;
        Ok(Mlp {
            layers,
            hidden_activation,
            output_activation,
        })
    }

    /// Applies a gradient-descent style update `params -= lr * grad` (used
    /// by tests and by simple non-private training loops; real training uses
    /// the [`crate::optimizer`] module).
    pub fn apply_gradient(&mut self, grad: &[f64], lr: f64) {
        let mut params = self.params();
        assert_eq!(grad.len(), params.len());
        for (p, &g) in params.iter_mut().zip(grad.iter()) {
            *p -= lr * g;
        }
        self.set_params(&params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn shapes_and_param_count() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[4, 8, 3], Activation::Relu, Activation::Identity);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.num_layers(), 2);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(mlp.forward(&[0.1, 0.2, 0.3, 0.4]).len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least an input and an output")]
    fn rejects_single_size() {
        let mut r = rng();
        let _ = Mlp::new(&mut r, &[4], Activation::Relu, Activation::Identity);
    }

    #[test]
    fn params_roundtrip() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        let p = mlp.params();
        let mut other = Mlp::new(&mut r, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        other.set_params(&p);
        let x = [0.5, -0.5, 1.0];
        let a = mlp.forward(&x);
        let b = other.forward(&x);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_cached_output_matches_forward() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[3, 6, 2], Activation::Relu, Activation::Sigmoid);
        let x = [0.2, -0.4, 0.9];
        let cache = mlp.forward_cached(&x);
        let direct = mlp.forward(&x);
        for (a, b) in cache.output().iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        let x = [0.3, -0.2, 0.8];
        let target = [0.7, -0.4];

        // Loss: MSE between output and target.
        let loss_of = |m: &Mlp| -> f64 {
            let y = m.forward(&x);
            loss::mse(&y, &target).0
        };

        let cache = mlp.forward_cached(&x);
        let (_, grad_out) = loss::mse(cache.output(), &target);
        let mut grads = vec![0.0; mlp.num_params()];
        mlp.backward(&cache, &grad_out, &mut grads);

        let params = mlp.params();
        let h = 1e-5;
        // Spot-check a spread of parameters (checking all ~30 is fine too).
        for k in (0..params.len()).step_by(3) {
            let mut plus = mlp.clone();
            let mut p = params.clone();
            p[k] += h;
            plus.set_params(&p);
            let mut minus = mlp.clone();
            let mut p = params.clone();
            p[k] -= h;
            minus.set_params(&p);
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
            assert!(
                (numeric - grads[k]).abs() < 1e-4,
                "param {k}: numeric {numeric} vs analytic {}",
                grads[k]
            );
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_differences() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[3, 4, 1], Activation::Relu, Activation::Identity);
        let x = [0.3, 0.6, -0.1];
        let cache = mlp.forward_cached(&x);
        let grad_out = [1.0];
        let mut grads = vec![0.0; mlp.num_params()];
        let grad_x = mlp.backward(&cache, &grad_out, &mut grads);
        let h = 1e-6;
        for k in 0..x.len() {
            let mut xp = x;
            xp[k] += h;
            let mut xm = x;
            xm[k] -= h;
            let numeric = (mlp.forward(&xp)[0] - mlp.forward(&xm)[0]) / (2.0 * h);
            assert!((numeric - grad_x[k]).abs() < 1e-5, "x[{k}]");
        }
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let mut r = rng();
        let mut mlp = Mlp::new(&mut r, &[2, 8, 1], Activation::Relu, Activation::Identity);
        // Fit the function y = x0 + 2*x1 on a few points.
        let data = [
            ([0.0, 0.0], 0.0),
            ([1.0, 0.0], 1.0),
            ([0.0, 1.0], 2.0),
            ([1.0, 1.0], 3.0),
            ([0.5, 0.5], 1.5),
        ];
        let total_loss = |m: &Mlp| -> f64 {
            data.iter()
                .map(|(x, y)| loss::mse(&m.forward(x), &[*y]).0)
                .sum::<f64>()
        };
        let before = total_loss(&mlp);
        for _ in 0..300 {
            let mut grads = vec![0.0; mlp.num_params()];
            for (x, y) in &data {
                let cache = mlp.forward_cached(x);
                let (_, g) = loss::mse(cache.output(), &[*y]);
                mlp.backward(&cache, &g, &mut grads);
            }
            for g in &mut grads {
                *g /= data.len() as f64;
            }
            mlp.apply_gradient(&grads, 0.05);
        }
        let after = total_loss(&mlp);
        assert!(
            after < before * 0.1,
            "training failed to reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn example_gradient_matches_manual_backward() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[2, 3, 2], Activation::Relu, Activation::Identity);
        let x = [0.4, -0.6];
        let g_out = [1.0, -1.0];
        let auto = mlp.example_gradient(&x, &g_out);
        let cache = mlp.forward_cached(&x);
        let mut manual = vec![0.0; mlp.num_params()];
        mlp.backward(&cache, &g_out, &mut manual);
        assert_eq!(auto, manual);
    }

    #[test]
    fn forward_batch_matches_row_forward() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[3, 7, 2], Activation::Relu, Activation::Sigmoid);
        let x = Matrix::from_fn(9, 3, |i, j| ((i * 3 + j) as f64 * 0.77).sin());
        let batch = mlp.forward_batch(&x);
        assert_eq!(batch.shape(), (9, 2));
        for (i, row) in x.row_iter().enumerate() {
            assert_eq!(batch.row(i), mlp.forward(row).as_slice());
        }
    }

    #[test]
    fn per_example_gradients_match_example_gradient() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        let x = Matrix::from_fn(6, 3, |i, j| ((i + 2 * j) as f64 * 0.41).cos());
        let gouts = Matrix::from_fn(6, 2, |i, j| ((i * 2 + j) as f64 * 0.19).sin());
        let batch = mlp.per_example_gradients(&x, &gouts);
        assert_eq!(batch.shape(), (6, mlp.num_params()));
        for i in 0..6 {
            let single = mlp.example_gradient(x.row(i), gouts.row(i));
            assert_eq!(batch.row(i), single.as_slice(), "example {i}");
        }
    }

    #[test]
    fn byte_round_trip_reproduces_forward_bitwise() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[4, 9, 3], Activation::Relu, Activation::Sigmoid);
        let back = Mlp::from_bytes(&mlp.to_bytes()).unwrap();
        assert_eq!(back.num_params(), mlp.num_params());
        assert_eq!(back.params(), mlp.params());
        let x = [0.3, -0.9, 0.1, 0.7];
        assert_eq!(back.forward(&x), mlp.forward(&x));
    }

    #[test]
    fn from_bytes_rejects_malformed_buffers() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        let bytes = mlp.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Mlp::from_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        let mut corrupted = bytes.clone();
        corrupted[bytes.len() - 10] ^= 0x01;
        assert!(Mlp::from_bytes(&corrupted).is_err());
        // A broken layer chain (3->5 followed by 4->2) is rejected.
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::MLP);
        enc.u8(1).u8(0).usize(2);
        enc.usize(3)
            .usize(5)
            .f64_slice(&[0.0; 15])
            .f64_slice(&[0.0; 5]);
        enc.usize(4)
            .usize(2)
            .f64_slice(&[0.0; 8])
            .f64_slice(&[0.0; 2]);
        assert!(matches!(
            Mlp::from_bytes(&enc.finish()),
            Err(p3gm_store::StoreError::Invalid { .. })
        ));
        // Non-finite parameters inside a valid frame are rejected: they
        // would otherwise make every forward pass silently emit NaN.
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::MLP);
        enc.u8(1).u8(0).usize(1);
        let mut weights = [0.0; 6];
        weights[3] = f64::NAN;
        enc.usize(3)
            .usize(2)
            .f64_slice(&weights)
            .f64_slice(&[0.0; 2]);
        assert!(matches!(
            Mlp::from_bytes(&enc.finish()),
            Err(p3gm_store::StoreError::Invalid { .. })
        ));
    }

    #[test]
    fn per_example_gradients_bit_identical_across_thread_counts() {
        let mut r = rng();
        let mlp = Mlp::new(&mut r, &[4, 8, 3], Activation::Relu, Activation::Identity);
        let x = Matrix::from_fn(33, 4, |i, j| ((i * 5 + j) as f64 * 0.13).sin());
        let gouts = Matrix::from_fn(33, 3, |i, j| ((i + j) as f64 * 0.29).cos());
        let reference = p3gm_parallel::with_threads(1, || mlp.per_example_gradients(&x, &gouts));
        for threads in [2, 4] {
            let batch =
                p3gm_parallel::with_threads(threads, || mlp.per_example_gradients(&x, &gouts));
            assert_eq!(batch.as_slice(), reference.as_slice());
        }
    }
}
