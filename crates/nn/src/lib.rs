//! # p3gm-nn
//!
//! Minimal neural-network substrate for the P3GM reproduction.
//!
//! The paper's encoder and decoder are two-layer fully-connected networks
//! (`[d, 1000, d']` and `[d', 1000, d]` with ReLU), trained with DP-SGD.
//! This crate provides everything needed to train such networks — and the
//! small CNN used as a downstream image classifier — from scratch on a
//! single CPU core:
//!
//! * [`activation`] — ReLU / sigmoid / tanh / softplus / identity with
//!   derivatives.
//! * [`linear`] — a fully-connected layer with explicit forward/backward.
//! * [`mlp`] — multi-layer perceptrons with *per-example* backpropagation
//!   and flat parameter/gradient vectors (the representation DP-SGD's
//!   per-example clipping needs).
//! * [`loss`] — MSE, Bernoulli cross-entropy with logits, softmax
//!   cross-entropy, and the Gaussian-VAE KL divergence, all returning both
//!   value and gradient.
//! * [`optimizer`] — SGD (with momentum) and Adam operating on flat
//!   parameter vectors.
//! * [`dpsgd`] — the DP-SGD update rule: clip per-example gradients, add
//!   Gaussian noise, average, and take an optimizer step.
//! * [`conv`] — a small Conv2d + MaxPool2d CNN used as the image classifier
//!   in the Table VII experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod dpsgd;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optimizer;

pub use activation::Activation;
pub use dpsgd::{DpSgdConfig, DpSgdStepOutcome};
pub use linear::Linear;
pub use mlp::{Mlp, MlpCache};
pub use optimizer::{Adam, Optimizer, Sgd};
