//! # p3gm-baselines
//!
//! The two published baselines the paper compares P3GM against:
//!
//! * [`dpgm`] — **DP-GM** (Acs et al., "Differentially private mixture of
//!   generative neural networks"): the data is partitioned with private
//!   k-means and one small generative network is trained per partition with
//!   DP-SGD; samples are drawn from a randomly chosen partition's network.
//!   Because each record belongs to exactly one partition, the per-partition
//!   training runs compose in parallel rather than sequentially.
//! * [`privbayes`] — **PrivBayes** (Zhang et al.): attributes are
//!   discretized, a low-degree Bayesian network is selected with the
//!   exponential mechanism on mutual information, the conditional
//!   probability tables are released with Laplace noise, and synthetic rows
//!   are drawn by ancestral sampling.
//!
//! Both implement [`p3gm_core::GenerativeModel`] over the same prepared
//! (`[0,1]`-scaled features + one-hot label) row format that the P3GM
//! pipeline uses, so the evaluation harness can treat every model uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dpgm;
pub mod privbayes;

pub use dpgm::{DpGm, DpGmConfig};
pub use privbayes::{PrivBayes, PrivBayesConfig};

/// Errors produced by the baseline models.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Invalid hyper-parameters.
    InvalidConfig {
        /// Description of the problem.
        msg: String,
    },
    /// Invalid training data.
    InvalidData {
        /// Description of the problem.
        msg: String,
    },
    /// A failure propagated from a substrate crate.
    Substrate {
        /// Description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::InvalidConfig { msg } => write!(f, "invalid configuration: {msg}"),
            BaselineError::InvalidData { msg } => write!(f, "invalid data: {msg}"),
            BaselineError::Substrate { msg } => write!(f, "substrate failure: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(BaselineError::InvalidConfig {
            msg: "k = 0".into()
        }
        .to_string()
        .contains("k = 0"));
        assert!(BaselineError::InvalidData {
            msg: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(BaselineError::Substrate {
            msg: "kmeans".into()
        }
        .to_string()
        .contains("kmeans"));
    }
}
