//! PrivBayes (Zhang et al. 2014): private data release via Bayesian
//! networks.
//!
//! Pipeline:
//!
//! 1. **Discretization** — every attribute is binned into `n_bins`
//!    equal-width bins (continuous attributes) so the joint distribution is
//!    over a finite domain.
//! 2. **Network selection** — attributes are added to the network one at a
//!    time; each new attribute's parent set (of size at most `degree`,
//!    drawn from the already-added attributes) is chosen with the
//!    exponential mechanism whose utility is the empirical mutual
//!    information `I(X; Pa)`. Half the budget is spent here, split evenly
//!    over the `d − 1` selections.
//! 3. **Parameter learning** — the conditional distributions
//!    `Pr[X | Pa]` are estimated from noisy counts (Laplace mechanism),
//!    with the other half of the budget split evenly over the `d`
//!    attributes.
//! 4. **Sampling** — ancestral sampling through the network; bins are
//!    mapped back to their centres.
//!
//! As in the paper's discussion, PrivBayes does well on low-dimensional
//! data with simple dependencies (Adult) and collapses on high-dimensional
//! data, because the per-attribute budget shrinks and a low-degree network
//! cannot capture the joint structure.

use crate::{BaselineError, Result};
use p3gm_core::GenerativeModel;
use p3gm_linalg::Matrix;
use p3gm_preprocess::encoding::Discretizer;
use p3gm_privacy::mechanisms::exponential_mechanism;
use p3gm_privacy::sampling;
use rand::Rng;

/// Configuration of the PrivBayes baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivBayesConfig {
    /// Number of equal-width bins per attribute.
    pub n_bins: usize,
    /// Maximum number of parents per attribute (the network degree `k`).
    pub degree: usize,
    /// Total privacy budget ε (split between structure and parameters).
    pub epsilon: f64,
    /// Cap on the number of candidate parent sets scored per attribute (the
    /// exact enumeration is exponential in `degree`; the cap keeps the
    /// high-dimensional datasets tractable, mirroring the sampled-candidate
    /// variant used in practice).
    pub max_candidates: usize,
}

impl Default for PrivBayesConfig {
    fn default() -> Self {
        PrivBayesConfig {
            n_bins: 8,
            degree: 2,
            epsilon: 1.0,
            max_candidates: 256,
        }
    }
}

impl PrivBayesConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_bins < 2 {
            return Err(BaselineError::InvalidConfig {
                msg: format!("need at least 2 bins, got {}", self.n_bins),
            });
        }
        if self.degree == 0 {
            return Err(BaselineError::InvalidConfig {
                msg: "degree must be at least 1".to_string(),
            });
        }
        if self.epsilon <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                msg: format!("epsilon must be positive, got {}", self.epsilon),
            });
        }
        if self.max_candidates == 0 {
            return Err(BaselineError::InvalidConfig {
                msg: "max_candidates must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// One node of the Bayesian network: an attribute, its parents, and the
/// (noisy) conditional distribution over its bins given the parents' bins.
#[derive(Debug, Clone)]
struct NetworkNode {
    attribute: usize,
    parents: Vec<usize>,
    /// `table[parent_config] = distribution over this attribute's bins`,
    /// where `parent_config` indexes the parents' joint bin assignment.
    table: Vec<Vec<f64>>,
}

/// A fitted PrivBayes model.
#[derive(Debug, Clone)]
pub struct PrivBayes {
    discretizer: Discretizer,
    nodes: Vec<NetworkNode>,
    config: PrivBayesConfig,
    data_dim: usize,
}

impl PrivBayes {
    /// Fits PrivBayes on a (continuous or already-discrete) data matrix.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        config: PrivBayesConfig,
    ) -> Result<Self> {
        config.validate()?;
        if data.rows() < 8 || data.cols() == 0 {
            return Err(BaselineError::InvalidData {
                msg: format!("{}x{} data is too small", data.rows(), data.cols()),
            });
        }
        let d = data.cols();
        let discretizer = Discretizer::fit(data, config.n_bins)
            .map_err(|e| BaselineError::Substrate { msg: e.to_string() })?;
        let bins = discretizer
            .transform(data)
            .map_err(|e| BaselineError::Substrate { msg: e.to_string() })?;

        // Budget split: half for structure, half for parameters.
        let eps_structure = config.epsilon / 2.0;
        let eps_params = config.epsilon / 2.0;
        let eps_per_selection = if d > 1 {
            eps_structure / (d - 1) as f64
        } else {
            eps_structure
        };
        let eps_per_table = eps_params / d as f64;

        // Attribute order: random permutation (data independent).
        let mut order: Vec<usize> = (0..d).collect();
        use rand::seq::SliceRandom;
        order.shuffle(rng);

        // Sensitivity of mutual information for the exponential mechanism.
        // PrivBayes uses ~ (2/n) log n (+ O(1/n)); we use that bound.
        let n = data.rows() as f64;
        let mi_sensitivity = (2.0 / n) * n.ln().max(1.0) + 2.0 / n;

        let mut nodes: Vec<NetworkNode> = Vec::with_capacity(d);
        let mut chosen: Vec<usize> = Vec::new();
        for (pos, &attr) in order.iter().enumerate() {
            let parents = if pos == 0 {
                Vec::new()
            } else {
                // Candidate parent sets among the already chosen attributes.
                let candidates =
                    candidate_parent_sets(rng, &chosen, config.degree, config.max_candidates);
                let utilities: Vec<f64> = candidates
                    .iter()
                    .map(|ps| mutual_information(&bins, attr, ps, config.n_bins))
                    .collect();
                let idx = exponential_mechanism(rng, &utilities, mi_sensitivity, eps_per_selection)
                    .map_err(|e| BaselineError::Substrate { msg: e.to_string() })?;
                candidates[idx].clone()
            };
            let table =
                noisy_conditional_table(rng, &bins, attr, &parents, config.n_bins, eps_per_table);
            nodes.push(NetworkNode {
                attribute: attr,
                parents,
                table,
            });
            chosen.push(attr);
        }

        Ok(PrivBayes {
            discretizer,
            nodes,
            config,
            data_dim: d,
        })
    }

    /// Number of attributes.
    pub fn data_dim(&self) -> usize {
        self.data_dim
    }

    /// The total pure-DP budget consumed by the fit.
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// The parents chosen for every attribute (attribute index → parents),
    /// in network order. Useful for inspecting the learned structure.
    pub fn structure(&self) -> Vec<(usize, Vec<usize>)> {
        self.nodes
            .iter()
            .map(|n| (n.attribute, n.parents.clone()))
            .collect()
    }

    /// Samples one row of bin indices by ancestral sampling.
    fn sample_bins<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        let mut assignment = vec![0usize; self.data_dim];
        for node in &self.nodes {
            let config_idx = parent_config_index(&assignment, &node.parents, self.config.n_bins);
            let dist = &node.table[config_idx];
            assignment[node.attribute] = sampling::categorical(rng, dist);
        }
        assignment
    }
}

impl GenerativeModel for PrivBayes {
    fn sample(&self, rng: &mut dyn rand::RngCore, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let bins = self.sample_bins(rng);
                self.discretizer
                    .inverse_transform_row(&bins)
                    .expect("bin vector has the fitted width")
            })
            .collect();
        Matrix::from_rows(&rows).expect("rows have equal width")
    }
}

/// Enumerates (or randomly samples, when the enumeration would exceed
/// `max_candidates`) parent sets of size ≤ `degree` from `chosen`.
fn candidate_parent_sets<R: Rng + ?Sized>(
    rng: &mut R,
    chosen: &[usize],
    degree: usize,
    max_candidates: usize,
) -> Vec<Vec<usize>> {
    use rand::seq::SliceRandom;
    let mut candidates: Vec<Vec<usize>> = Vec::new();
    // Singletons first (always affordable).
    for &c in chosen {
        candidates.push(vec![c]);
    }
    // Pairs (and larger sets) up to the degree, until the cap is reached.
    if degree >= 2 && chosen.len() >= 2 {
        'outer: for i in 0..chosen.len() {
            for j in (i + 1)..chosen.len() {
                candidates.push(vec![chosen[i], chosen[j]]);
                if candidates.len() >= max_candidates {
                    break 'outer;
                }
            }
        }
    }
    if candidates.len() > max_candidates {
        candidates.shuffle(rng);
        candidates.truncate(max_candidates);
    }
    if candidates.is_empty() {
        candidates.push(Vec::new());
    }
    candidates
}

/// Empirical mutual information `I(X; Pa)` between attribute `attr` and the
/// joint parent configuration, over discretized rows.
fn mutual_information(bins: &[Vec<usize>], attr: usize, parents: &[usize], n_bins: usize) -> f64 {
    if parents.is_empty() {
        return 0.0;
    }
    let n = bins.len() as f64;
    let parent_card = n_bins.pow(parents.len() as u32);
    let mut joint = vec![0.0; parent_card * n_bins];
    let mut p_x = vec![0.0; n_bins];
    let mut p_pa = vec![0.0; parent_card];
    for row in bins {
        let x = row[attr];
        let pa = parent_config_index(row, parents, n_bins);
        joint[pa * n_bins + x] += 1.0;
        p_x[x] += 1.0;
        p_pa[pa] += 1.0;
    }
    let mut mi = 0.0;
    for pa in 0..parent_card {
        for x in 0..n_bins {
            let pxy = joint[pa * n_bins + x] / n;
            if pxy > 0.0 {
                let px = p_x[x] / n;
                let ppa = p_pa[pa] / n;
                mi += pxy * (pxy / (px * ppa)).ln();
            }
        }
    }
    mi
}

/// Index of the parents' joint bin configuration in mixed radix `n_bins`.
fn parent_config_index(row: &[usize], parents: &[usize], n_bins: usize) -> usize {
    let mut idx = 0usize;
    for &p in parents {
        idx = idx * n_bins + row[p].min(n_bins - 1);
    }
    idx
}

/// Laplace-noised conditional probability table `Pr[attr | parents]`.
fn noisy_conditional_table<R: Rng + ?Sized>(
    rng: &mut R,
    bins: &[Vec<usize>],
    attr: usize,
    parents: &[usize],
    n_bins: usize,
    epsilon: f64,
) -> Vec<Vec<f64>> {
    let parent_card = n_bins.pow(parents.len() as u32);
    let mut counts = vec![vec![0.0; n_bins]; parent_card];
    for row in bins {
        let pa = parent_config_index(row, parents, n_bins);
        counts[pa][row[attr]] += 1.0;
    }
    // One record contributes to exactly one cell of the whole table, so the
    // L1 sensitivity of the full count vector is 1 → Laplace(1/ε) per cell.
    let scale = 1.0 / epsilon.max(1e-12);
    counts
        .iter()
        .map(|row_counts| {
            let noisy: Vec<f64> = row_counts
                .iter()
                .map(|&c| (c + sampling::laplace(rng, scale)).max(0.0))
                .collect();
            let total: f64 = noisy.iter().sum();
            if total <= 0.0 {
                vec![1.0 / n_bins as f64; n_bins]
            } else {
                noisy.iter().map(|&v| v / total).collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(191)
    }

    /// Two strongly dependent attributes plus an independent one.
    fn dependent_data(rng: &mut StdRng, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..1.0);
                let b = if a > 0.5 { 0.9 } else { 0.1 };
                let c: f64 = rng.gen_range(0.0..1.0);
                vec![a, b + rng.gen_range(-0.05..0.05), c]
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(PrivBayesConfig::default().validate().is_ok());
        assert!(PrivBayesConfig {
            n_bins: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PrivBayesConfig {
            degree: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PrivBayesConfig {
            epsilon: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PrivBayesConfig {
            max_candidates: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fit_and_sample_shapes_and_ranges() {
        let mut r = rng();
        let data = dependent_data(&mut r, 400);
        let model = PrivBayes::fit(&mut r, &data, PrivBayesConfig::default()).unwrap();
        assert_eq!(model.data_dim(), 3);
        assert_eq!(model.epsilon(), 1.0);
        assert_eq!(model.structure().len(), 3);
        let samples = model.sample(&mut r, 50);
        assert_eq!(samples.shape(), (50, 3));
        // Samples stay within the original data range (bin centres).
        for row in samples.row_iter() {
            assert!(row.iter().all(|&v| (-0.1..=1.1).contains(&v)));
        }
    }

    #[test]
    fn rejects_too_small_data() {
        let mut r = rng();
        let data = Matrix::zeros(3, 2);
        assert!(PrivBayes::fit(&mut r, &data, PrivBayesConfig::default()).is_err());
    }

    #[test]
    fn captures_strong_pairwise_dependence_with_large_budget() {
        let mut r = rng();
        let data = dependent_data(&mut r, 800);
        let cfg = PrivBayesConfig {
            epsilon: 100.0, // effectively non-private
            ..Default::default()
        };
        let model = PrivBayes::fit(&mut r, &data, cfg).unwrap();
        let samples = model.sample(&mut r, 600);
        // In the real data, attribute 1 is ≈0.9 when attribute 0 > 0.5 and
        // ≈0.1 otherwise; the synthetic data should reproduce a strong
        // positive association.
        let corr = p3gm_linalg::stats::correlation(&samples.col(0), &samples.col(1)).unwrap();
        assert!(corr > 0.4, "synthetic correlation {corr}");
    }

    #[test]
    fn tiny_budget_destroys_dependence() {
        let mut r = rng();
        let data = dependent_data(&mut r, 400);
        let cfg = PrivBayesConfig {
            epsilon: 0.001,
            ..Default::default()
        };
        let model = PrivBayes::fit(&mut r, &data, cfg).unwrap();
        let samples = model.sample(&mut r, 400);
        let corr = p3gm_linalg::stats::correlation(&samples.col(0), &samples.col(1)).unwrap();
        // With essentially no budget the tables are noise, so the recovered
        // correlation should be much weaker than the non-private one.
        assert!(corr < 0.6, "correlation {corr} should be degraded");
    }

    #[test]
    fn mutual_information_helper_behaves() {
        // X identical to its parent → MI = H(X) > 0; independent → ~0.
        let bins_dep: Vec<Vec<usize>> = (0..200).map(|i| vec![i % 4, i % 4]).collect();
        let mi_dep = mutual_information(&bins_dep, 0, &[1], 4);
        assert!(mi_dep > 1.0, "dependent MI {mi_dep}");
        let bins_indep: Vec<Vec<usize>> = (0..200).map(|i| vec![i % 4, (i / 4) % 4]).collect();
        let mi_indep = mutual_information(&bins_indep, 0, &[1], 4);
        assert!(mi_indep < 0.1, "independent MI {mi_indep}");
        assert_eq!(mutual_information(&bins_dep, 0, &[], 4), 0.0);
    }

    #[test]
    fn parent_config_index_is_mixed_radix() {
        assert_eq!(parent_config_index(&[2, 3, 1], &[0, 2], 4), 2 * 4 + 1);
        assert_eq!(parent_config_index(&[2, 3, 1], &[], 4), 0);
    }

    #[test]
    fn candidate_parent_sets_respect_cap_and_degree() {
        let mut r = rng();
        let chosen: Vec<usize> = (0..20).collect();
        let cands = candidate_parent_sets(&mut r, &chosen, 2, 50);
        assert!(cands.len() <= 50);
        assert!(cands.iter().all(|c| c.len() <= 2 && !c.is_empty()));
        let empty = candidate_parent_sets(&mut r, &[], 2, 50);
        assert_eq!(empty, vec![Vec::<usize>::new()]);
    }
}
