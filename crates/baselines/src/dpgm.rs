//! DP-GM (Acs et al. 2018): differentially private mixture of generative
//! neural networks.
//!
//! The algorithm (paper §I, Table I competitor):
//!
//! 1. Partition the data into `k` clusters with differentially private
//!    k-means (budget `kmeans_epsilon`).
//! 2. Release the cluster sizes with the Laplace mechanism
//!    (budget `count_epsilon`) — these become the mixture weights.
//! 3. Train one small VAE per cluster with DP-SGD. The clusters are
//!    disjoint, so the per-cluster training runs compose in **parallel**:
//!    the DP-SGD cost of the whole step is the maximum over clusters, not
//!    the sum.
//! 4. To sample: choose a cluster proportionally to the noisy sizes and
//!    decode a sample from that cluster's VAE.
//!
//! The paper's observation — and the behaviour this implementation
//! reproduces — is that the per-cluster models generate samples close to
//! their cluster centroids, so DP-GM produces *clean but mode-collapsed*
//! data, which hurts downstream utility despite the nice-looking samples.

use crate::{BaselineError, Result};
use p3gm_core::config::VaeConfig;
use p3gm_core::vae::Vae;
use p3gm_core::GenerativeModel;
use p3gm_linalg::Matrix;
use p3gm_mixture::kmeans::{dp_kmeans, KMeansConfig};
use p3gm_privacy::rdp::{DpSgdBound, PrivacySpec, RdpAccountant};
use p3gm_privacy::sampling;
use rand::Rng;

/// Configuration of the DP-GM baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DpGmConfig {
    /// Number of k-means partitions (and per-partition VAEs).
    pub n_clusters: usize,
    /// Privacy budget of the private k-means partitioning.
    pub kmeans_epsilon: f64,
    /// Privacy budget of the noisy cluster-size release.
    pub count_epsilon: f64,
    /// Iterations of private k-means.
    pub kmeans_iterations: usize,
    /// Configuration of each per-cluster VAE (its `sigma_s` must be positive
    /// for the overall model to satisfy DP).
    pub vae: VaeConfig,
    /// Target δ of the overall guarantee.
    pub delta: f64,
}

impl Default for DpGmConfig {
    fn default() -> Self {
        DpGmConfig {
            n_clusters: 5,
            kmeans_epsilon: 0.2,
            count_epsilon: 0.05,
            kmeans_iterations: 4,
            vae: VaeConfig {
                latent_dim: 4,
                hidden_dim: 32,
                epochs: 5,
                batch_size: 32,
                learning_rate: 1e-3,
                clip_norm: 1.0,
                sigma_s: 1.5,
                delta: 1e-5,
                ..Default::default()
            },
            delta: 1e-5,
        }
    }
}

impl DpGmConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_clusters == 0 {
            return Err(BaselineError::InvalidConfig {
                msg: "n_clusters must be positive".to_string(),
            });
        }
        if self.kmeans_epsilon <= 0.0 || self.count_epsilon <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                msg: "kmeans_epsilon and count_epsilon must be positive".to_string(),
            });
        }
        if self.vae.sigma_s <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                msg: "the per-cluster VAEs must be trained with DP-SGD (sigma_s > 0)".to_string(),
            });
        }
        if !(0.0..1.0).contains(&self.delta) || self.delta == 0.0 {
            return Err(BaselineError::InvalidConfig {
                msg: format!("delta must be in (0,1), got {}", self.delta),
            });
        }
        Ok(())
    }
}

/// A fitted DP-GM model.
#[derive(Debug, Clone)]
pub struct DpGm {
    cluster_models: Vec<Vae>,
    /// Noisy (non-negative, normalized) cluster weights.
    weights: Vec<f64>,
    config: DpGmConfig,
    data_dim: usize,
    max_cluster_size: usize,
}

impl DpGm {
    /// Fits DP-GM on rows in `[0, 1]` (the prepared row format of the
    /// evaluation harness).
    pub fn fit<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, config: DpGmConfig) -> Result<Self> {
        config.validate()?;
        if data.rows() < config.n_clusters.max(8) {
            return Err(BaselineError::InvalidData {
                msg: format!(
                    "{} rows are not enough for {} clusters",
                    data.rows(),
                    config.n_clusters
                ),
            });
        }
        let d = data.cols();

        // 1. Private k-means partitioning. Rows live in [0,1]^d, so the
        //    coordinate radius bound is 1.
        let km = dp_kmeans(
            rng,
            data,
            &KMeansConfig {
                k: config.n_clusters,
                max_iters: config.kmeans_iterations,
                tolerance: 1e-6,
            },
            config.kmeans_epsilon,
            1.0,
        )
        .map_err(|e| BaselineError::Substrate { msg: e.to_string() })?;

        // 2. Noisy cluster sizes (Laplace, sensitivity 1).
        let mut counts = vec![0.0; config.n_clusters];
        for &a in &km.assignments {
            counts[a] += 1.0;
        }
        let noisy_weights: Vec<f64> = counts
            .iter()
            .map(|&c| (c + sampling::laplace(rng, 1.0 / config.count_epsilon)).max(1.0))
            .collect();
        let total: f64 = noisy_weights.iter().sum();
        let weights: Vec<f64> = noisy_weights.iter().map(|w| w / total).collect();

        // 3. One DP-SGD-trained VAE per cluster (parallel composition).
        let mut cluster_models = Vec::with_capacity(config.n_clusters);
        let mut max_cluster_size = 0usize;
        for c in 0..config.n_clusters {
            let member_indices: Vec<usize> = km
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == c)
                .map(|(i, _)| i)
                .collect();
            max_cluster_size = max_cluster_size.max(member_indices.len());
            // Clusters that are too small to train on fall back to a model
            // trained on a few rows resampled from the whole dataset's
            // centroid neighbourhood — in practice we simply train on the
            // cluster if it has at least 8 rows, otherwise keep an untrained
            // VAE (its samples are noise, which mirrors how tiny clusters
            // behave in the original system).
            let mut vae_cfg = config.vae.clone();
            vae_cfg.latent_dim = vae_cfg.latent_dim.min(d);
            if member_indices.len() >= 8 {
                let cluster_data = data
                    .select_rows(&member_indices)
                    .map_err(|e| BaselineError::Substrate { msg: e.to_string() })?;
                vae_cfg.batch_size = vae_cfg.batch_size.min(cluster_data.rows());
                let (vae, _) = Vae::fit(rng, &cluster_data, vae_cfg)
                    .map_err(|e| BaselineError::Substrate { msg: e.to_string() })?;
                cluster_models.push(vae);
            } else {
                let vae = Vae::new(rng, d, vae_cfg)
                    .map_err(|e| BaselineError::Substrate { msg: e.to_string() })?;
                cluster_models.push(vae);
            }
        }

        Ok(DpGm {
            cluster_models,
            weights,
            config,
            data_dim: d,
            max_cluster_size,
        })
    }

    /// Number of partitions.
    pub fn n_clusters(&self) -> usize {
        self.cluster_models.len()
    }

    /// The noisy mixture weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Dimensionality of the data space.
    pub fn data_dim(&self) -> usize {
        self.data_dim
    }

    /// The total (ε, δ)-DP guarantee: private k-means + noisy counts +
    /// per-cluster DP-SGD (parallel composition — charged once with the
    /// largest cluster's parameters).
    pub fn privacy_spec(&self) -> Option<PrivacySpec> {
        let mut acc = RdpAccountant::default();
        acc.add_pure_dp(self.config.kmeans_epsilon).ok()?;
        acc.add_pure_dp(self.config.count_epsilon).ok()?;
        let n = self.max_cluster_size.max(1);
        acc.add_dp_sgd(
            self.config.vae.sgd_steps(n),
            self.config.vae.sampling_probability(n),
            self.config.vae.sigma_s,
            DpSgdBound::PaperEq4,
        )
        .ok()?;
        acc.to_dp(self.config.delta).ok()
    }
}

impl GenerativeModel for DpGm {
    fn sample(&self, rng: &mut dyn rand::RngCore, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let c = sampling::categorical(rng, &self.weights);
                let sample = self.cluster_models[c].sample(rng, 1);
                sample.row(0).to_vec()
            })
            .collect();
        Matrix::from_rows(&rows).expect("samples have equal width")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(171)
    }

    /// Two well-separated patterns in [0,1]^6.
    fn bimodal(rng: &mut StdRng, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..6)
                    .map(|j| {
                        let base = if (j < 3) == hot { 0.85 } else { 0.15 };
                        (base + sampling::normal(rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn small_config() -> DpGmConfig {
        DpGmConfig {
            n_clusters: 2,
            kmeans_iterations: 3,
            vae: VaeConfig {
                latent_dim: 2,
                hidden_dim: 12,
                epochs: 4,
                batch_size: 16,
                sigma_s: 1.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn config_validation() {
        assert!(DpGmConfig::default().validate().is_ok());
        assert!(DpGmConfig {
            n_clusters: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DpGmConfig {
            kmeans_epsilon: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        let mut non_private = DpGmConfig::default();
        non_private.vae.sigma_s = 0.0;
        assert!(non_private.validate().is_err());
        assert!(DpGmConfig {
            delta: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fit_and_sample_shapes() {
        let mut r = rng();
        let data = bimodal(&mut r, 120);
        let model = DpGm::fit(&mut r, &data, small_config()).unwrap();
        assert_eq!(model.n_clusters(), 2);
        assert_eq!(model.data_dim(), 6);
        assert!((model.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let samples = model.sample(&mut r, 20);
        assert_eq!(samples.shape(), (20, 6));
        assert!(samples.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn privacy_spec_is_finite_and_positive() {
        let mut r = rng();
        let data = bimodal(&mut r, 100);
        let model = DpGm::fit(&mut r, &data, small_config()).unwrap();
        let spec = model.privacy_spec().expect("DP-GM is private");
        assert!(spec.epsilon.is_finite() && spec.epsilon > 0.0);
        assert_eq!(spec.delta, 1e-5);
    }

    #[test]
    fn rejects_too_little_data() {
        let mut r = rng();
        let data = bimodal(&mut r, 4);
        assert!(DpGm::fit(&mut r, &data, small_config()).is_err());
    }

    #[test]
    fn samples_concentrate_around_cluster_structure() {
        let mut r = rng();
        let data = bimodal(&mut r, 200);
        let mut cfg = small_config();
        cfg.vae.epochs = 10;
        // Nearly no DP-SGD noise so the mode-collapse behaviour (samples near
        // the cluster centroids) is visible rather than drowned in noise.
        cfg.vae.sigma_s = 0.05;
        let model = DpGm::fit(&mut r, &data, cfg).unwrap();
        let samples = model.sample(&mut r, 60);
        // Samples should be closer on average to one of the two true modes
        // than a uniform-random [0,1]^6 point would be (expected distance of
        // a random point to a mode is ~1.1 in 6-D).
        let mode_a: Vec<f64> = (0..6).map(|j| if j < 3 { 0.85 } else { 0.15 }).collect();
        let mode_b: Vec<f64> = (0..6).map(|j| if j < 3 { 0.15 } else { 0.85 }).collect();
        let avg_dist: f64 = samples
            .row_iter()
            .map(|row| {
                p3gm_linalg::vector::distance(row, &mode_a)
                    .min(p3gm_linalg::vector::distance(row, &mode_b))
            })
            .sum::<f64>()
            / samples.rows() as f64;
        assert!(
            avg_dist < 1.0,
            "average distance to nearest mode {avg_dist}"
        );
    }
}
