//! Deterministic observability core for the P3GM workspace.
//!
//! This crate is std-only and holds no opinion about *what* is measured:
//! it provides atomic [`Counter`]s, [`Gauge`]s, fixed-bucket [`Histogram`]s,
//! a [`MetricsRegistry`] that renders the Prometheus text exposition format
//! with a deterministic (sorted) merge order, and a lightweight span API
//! ([`Histogram::start_span`]) whose timing source is injectable via
//! [`TimeSource`].
//!
//! # Determinism contract
//!
//! Nothing in this module reads a clock. The only place in the crate that
//! touches `std::time` is [`time::WallClock`], which is the single file
//! allowlisted by `p3gm-conform` rule D2. Numeric crates record *what
//! happened* — iteration counts, clip events, eviction decisions — through
//! counters, and may time phases only through a caller-injected
//! [`TimeSource`] (a [`ManualClock`] in tests keeps those paths
//! deterministic too). Counter values are therefore bit-identical for any
//! `P3GM_THREADS` setting; only wall-clock-fed histogram *bucket placement*
//! varies between runs.
//!
//! Telemetry is pure post-processing of already-released values: nothing
//! recorded here feeds back into sampling, training, or the (ε, δ)
//! accounting, and nothing here is ever persisted as part of DP state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod time;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An injectable monotonic time source for span timing.
///
/// Production code passes [`time::WallClock`]; tests pass [`ManualClock`]
/// so that timing-shaped code paths stay deterministic. The contract is
/// monotonicity, not any particular epoch.
pub trait TimeSource: Send + Sync {
    /// Current time in nanoseconds since an arbitrary fixed origin.
    fn now_nanos(&self) -> u64;
}

/// A deterministic [`TimeSource`] driven entirely by explicit
/// [`advance`](ManualClock::advance) calls. Starts at zero.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at t=0 until advanced.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `nanos` nanoseconds.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl TimeSource for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `u64` counter.
///
/// Handles are cheap clones sharing one atomic cell; increments are
/// lock-free. Counters recording logical events (requests, steps, clips)
/// are bit-identical across thread counts because the underlying events
/// are.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Self {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the absolute value.
    ///
    /// Only for mirroring an *external* monotone source (e.g. re-exporting
    /// `RegistryStats` counters at scrape time); never mix with
    /// [`add`](Counter::add) on the same counter.
    pub fn store(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An `f64` gauge (stored as atomic bit pattern, so reads never tear).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) via a compare-exchange loop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with non-cumulative atomic bucket counts,
/// rendered cumulatively (Prometheus `le` semantics) at exposition time.
///
/// Bucket bounds are fixed at registration; the implicit `+Inf` bucket
/// always exists, so `+Inf`'s cumulative count equals the observation
/// count by construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    /// Strictly increasing finite upper bounds; the `+Inf` bucket is
    /// implicit at index `bounds.len()`.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// Default latency bounds in seconds for request-duration histograms:
/// 100 µs .. 10 s, roughly half-decade spaced.
pub const LATENCY_BOUNDS_SECONDS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

impl Histogram {
    /// A standalone histogram over `bounds` (upper bucket edges).
    /// Non-finite bounds are dropped and the rest sorted and deduped, so
    /// the cumulative render is always monotone with a final `+Inf`
    /// bucket. Prefer [`MetricsRegistry::histogram`] for named series.
    pub fn new(bounds: &[f64]) -> Self {
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            core: Arc::new(HistogramCore {
                bounds: sorted,
                buckets,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let c = &self.core;
        let idx = c.bounds.partition_point(|b| v > *b);
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = c.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match c
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative bucket counts paired with their upper bounds; the final
    /// entry is the `+Inf` bucket and equals [`count`](Histogram::count)
    /// whenever the histogram is quiescent.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let c = &self.core;
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(c.buckets.len());
        for (i, cell) in c.buckets.iter().enumerate() {
            acc += cell.load(Ordering::Relaxed);
            let bound = c.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }

    /// Begin a span timed by `clock`; the elapsed seconds are observed
    /// into this histogram when the returned guard drops.
    pub fn start_span<'a>(&self, clock: &'a dyn TimeSource) -> Span<'a> {
        Span {
            hist: self.clone(),
            clock,
            start: clock.now_nanos(),
        }
    }
}

/// RAII guard from [`Histogram::start_span`]: records elapsed seconds on
/// drop. The clock is whatever the caller injected, so numeric crates can
/// use spans without ever reading a real clock.
pub struct Span<'a> {
    hist: Histogram,
    clock: &'a dyn TimeSource,
    start: u64,
}

impl Span<'_> {
    /// Elapsed nanoseconds so far (saturating; `TimeSource` is assumed
    /// monotone but we never trust it enough to underflow).
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.observe(self.elapsed_nanos() as f64 * 1e-9);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the sorted `(label, value)` list — `BTreeMap` everywhere so
    /// the rendered exposition is a pure function of recorded values.
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// A registry of metric families rendered as Prometheus text exposition.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short mutex and is
/// get-or-create: the returned handle is a cheap clone whose updates are
/// lock-free, so hot paths should cache handles. Families and series render
/// in sorted order, making the exposition deterministic given deterministic
/// values.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    key
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            // Programming error (one name, two kinds). Stay panic-free:
            // hand back a detached series that is never rendered.
            return make();
        }
        family
            .series
            .entry(label_key(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Get or register the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Counter::new())
        }) {
            Series::Counter(c) => c,
            _ => Counter::new(),
        }
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Gauge::new())
        }) {
            Series::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// Get or register the histogram `name{labels}` with finite upper
    /// bounds `bounds` (an implicit `+Inf` bucket is always added). Bounds
    /// are fixed by the first registration.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Histogram::new(bounds))
        }) {
            Series::Histogram(h) => h,
            _ => Histogram::new(bounds),
        }
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4). Deterministic: families and series appear in
    /// sorted order.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            format_value(g.get())
                        );
                    }
                    Series::Histogram(h) => {
                        for (bound, cum) in h.cumulative_buckets() {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                render_labels(labels, Some(bound))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            format_value(h.sum())
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }
}

/// Escape a label value per the text exposition format: backslash, double
/// quote, and newline must be escaped; everything else passes through.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Format a sample value: `+Inf`/`-Inf`/`NaN` per the exposition format,
/// shortest round-trip decimal otherwise.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(String, String)], le: Option<f64>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(bound) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{}\"", format_value(bound));
    }
    out.push('}');
    out
}

/// Where per-request access log lines go.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum AccessLogTarget {
    /// No access logging (the default).
    #[default]
    Off,
    /// One line per request to standard output.
    Stdout,
    /// One line per request to standard error.
    Stderr,
    /// Append one line per request to this file.
    File(PathBuf),
}

/// Observability configuration carried by embedding applications (the
/// HTTP server threads this through its builder).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ObsConfig {
    /// When false, no metrics are recorded and `GET /metrics` is absent.
    /// `ObsConfig::default()` is disabled; use [`ObsConfig::enabled`] to
    /// opt in.
    pub metrics: bool,
    /// Access log destination; [`AccessLogTarget::Off`] by default.
    pub access_log: AccessLogTarget,
    /// Write every Nth access-log line (1 = every line, the default).
    /// Under thousands of mostly-idle keep-alive connections the access
    /// log becomes the per-request hot path's main write amplification;
    /// sampling keeps it observable without that cost. Values of 0 are
    /// treated as 1.
    pub log_sample_every_n: u64,
}

impl Default for ObsConfig {
    /// Everything off, unsampled logging (were anything to be logged).
    fn default() -> Self {
        Self {
            metrics: false,
            access_log: AccessLogTarget::Off,
            log_sample_every_n: 1,
        }
    }
}

impl ObsConfig {
    /// Metrics on, access log off — the recommended serving default.
    pub fn enabled() -> Self {
        Self {
            metrics: true,
            ..Self::default()
        }
    }

    /// Everything off: zero instrumentation on the request path.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Builder-style access log target override.
    pub fn with_access_log(mut self, target: AccessLogTarget) -> Self {
        self.access_log = target;
        self
    }

    /// Builder-style access-log sampling override: write every Nth line.
    /// `0` is normalized to `1` (unsampled).
    pub fn with_log_sampling(mut self, every_n: u64) -> Self {
        self.log_sample_every_n = every_n.max(1);
        self
    }
}

/// A line-oriented access logger over a configured target. Writes are
/// serialized by an internal mutex; failures are counted, never surfaced
/// onto the request path.
pub struct AccessLogger {
    sink: Mutex<Box<dyn std::io::Write + Send>>,
    errors: Counter,
    /// Write every Nth line (1 = every line); see
    /// [`ObsConfig::log_sample_every_n`].
    every: u64,
    /// Lines offered to [`AccessLogger::log`], written or sampled away.
    seen: AtomicU64,
}

impl std::fmt::Debug for AccessLogger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLogger").finish_non_exhaustive()
    }
}

impl AccessLogger {
    /// Open the configured target, unsampled. `Ok(None)` when logging is
    /// off.
    pub fn open(target: &AccessLogTarget) -> std::io::Result<Option<Self>> {
        Self::open_sampled(target, 1)
    }

    /// Open the configured target writing every `every_n`th line (`0` and
    /// `1` both mean every line). `Ok(None)` when logging is off.
    pub fn open_sampled(target: &AccessLogTarget, every_n: u64) -> std::io::Result<Option<Self>> {
        let sink: Box<dyn std::io::Write + Send> = match target {
            AccessLogTarget::Off => return Ok(None),
            AccessLogTarget::Stdout => Box::new(std::io::stdout()),
            AccessLogTarget::Stderr => Box::new(std::io::stderr()),
            AccessLogTarget::File(path) => Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
        };
        Ok(Some(Self {
            sink: Mutex::new(sink),
            errors: Counter::new(),
            every: every_n.max(1),
            seen: AtomicU64::new(0),
        }))
    }

    /// Write one line (a newline is appended), subject to sampling: with
    /// `every_n > 1` only every Nth offered line (starting with the
    /// first) is written. I/O errors increment
    /// [`error_count`](AccessLogger::error_count) and are otherwise
    /// swallowed: logging must never fail a request.
    pub fn log(&self, line: &str) {
        if !self
            .seen
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
        {
            return;
        }
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if writeln!(sink, "{line}")
            .and_then(|()| sink.flush())
            .is_err()
        {
            self.errors.inc();
        }
    }

    /// Number of dropped lines due to I/O errors.
    pub fn error_count(&self) -> u64 {
        self.errors.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("p3gm_test_total", "help", &[("k", "v")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Get-or-create returns the same cell.
        let c2 = reg.counter("p3gm_test_total", "help", &[("k", "v")]);
        c2.inc();
        assert_eq!(c.get(), 4);

        let g = reg.gauge("p3gm_test_gauge", "help", &[]);
        g.set(1.5);
        g.add(-0.5);
        assert_eq!(g.get(), 1.0);
    }

    #[test]
    fn histogram_buckets_cumulative_and_inf_equals_count() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("p3gm_test_seconds", "help", &[0.1, 1.0], &[]);
        for v in [0.05, 0.05, 0.5, 2.0, f64::NAN.max(3.0)] {
            h.observe(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (0.1, 2));
        assert_eq!(buckets[1], (1.0, 3));
        assert_eq!(buckets[2], (f64::INFINITY, 5));
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn render_is_sorted_and_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("p3gm_b_total", "second", &[]).inc();
        reg.counter("p3gm_a_total", "first", &[("m", "x\"y\\z\n")])
            .add(7);
        let text = reg.render();
        let a = text.find("p3gm_a_total").unwrap();
        let b = text.find("p3gm_b_total").unwrap();
        assert!(a < b, "families must render in sorted order:\n{text}");
        assert!(
            text.contains("p3gm_a_total{m=\"x\\\"y\\\\z\\n\"} 7"),
            "label escaping failed:\n{text}"
        );
    }

    #[test]
    fn span_records_into_histogram_via_manual_clock() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("p3gm_phase_seconds", "help", &[0.5, 2.0], &[]);
        let clock = ManualClock::new();
        {
            let span = h.start_span(&clock);
            clock.advance(1_000_000_000);
            assert_eq!(span.elapsed_nanos(), 1_000_000_000);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1.0);
        assert_eq!(h.cumulative_buckets()[1], (2.0, 1));
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(0.25), "0.25");
        assert_eq!(format_value(3.0), "3");
    }

    #[test]
    fn access_logger_off_is_none() {
        assert!(AccessLogger::open(&AccessLogTarget::Off).unwrap().is_none());
        assert!(AccessLogger::open_sampled(&AccessLogTarget::Off, 5)
            .unwrap()
            .is_none());
    }

    #[test]
    fn obs_config_sampling_defaults_and_normalization() {
        assert_eq!(ObsConfig::default().log_sample_every_n, 1);
        assert_eq!(ObsConfig::enabled().log_sample_every_n, 1);
        // 0 would drop every line via `x % 0` panic; it normalizes to 1.
        assert_eq!(
            ObsConfig::enabled().with_log_sampling(0).log_sample_every_n,
            1
        );
        assert_eq!(
            ObsConfig::enabled()
                .with_log_sampling(10)
                .log_sample_every_n,
            10
        );
    }

    #[test]
    fn access_log_sampling_writes_every_nth_line() {
        let dir = std::env::temp_dir().join(format!(
            "p3gm_obs_sample_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let target = AccessLogTarget::File(path.clone());
        {
            let log = AccessLogger::open_sampled(&target, 3).unwrap().unwrap();
            for i in 0..10 {
                log.log(&format!("line {i}"));
            }
            assert_eq!(log.error_count(), 0);
        }
        let written = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        // Lines 0, 3, 6, 9: the first line always writes, then every 3rd.
        assert_eq!(lines, vec!["line 0", "line 3", "line 6", "line 9"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
