//! The one file in the workspace outside `parallel`/`bench`/`server` that
//! may read the real clock: `p3gm-conform` rule D2 allowlists exactly this
//! path (`crates/obs/src/time.rs`). Everything else in `p3gm-obs` — and in
//! every numeric crate — receives time only through the injectable
//! [`TimeSource`] trait.

use crate::TimeSource;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A monotonic wall clock backed by [`std::time::Instant`], measured from
/// the moment the clock is constructed.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose zero point is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallClock {
    fn now_nanos(&self) -> u64 {
        // u64 nanoseconds covers ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Milliseconds since the Unix epoch, for timestamping access log lines.
/// Returns 0 if the system clock is before the epoch.
pub fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn unix_millis_is_past_2020() {
        assert!(unix_millis() > 1_577_836_800_000);
    }
}
