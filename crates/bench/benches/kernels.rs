//! Microbenchmarks for the numeric kernels the P3GM pipeline spends its
//! time in — register-tiled matmul and gram, per-example DP-SGD gradients
//! (batched forward + backward), the fused clip-and-sum pass, and the
//! batched (DP-)EM E-step (with its n×k log-density sub-kernel measured
//! separately) — each swept over 1/2/4 worker threads via
//! `p3gm_parallel::with_threads`.
//!
//! Before timing, every kernel's output at 2 and 4 threads is asserted to
//! be **bit-identical** to the single-threaded run (the determinism
//! guarantee of `p3gm-parallel`). The recorded baseline lives in
//! `BENCH_kernels.json` at the repository root together with the host's
//! core count — thread sweeps only show wall-clock speedups when the
//! machine actually has that many cores.
//!
//! ```text
//! cargo bench -p p3gm-bench --bench kernels
//! cargo bench -p p3gm-bench --bench kernels -- dpsgd   # one kernel
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use p3gm_linalg::Matrix;
use p3gm_mixture::Gmm;
use p3gm_nn::activation::Activation;
use p3gm_nn::mlp::Mlp;
use p3gm_parallel::with_threads;
use p3gm_privacy::mechanisms::clip_and_sum_gradients;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const THREADS: [usize; 3] = [1, 2, 4];

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(192, 192, |i, j| {
        ((i * 31 + j * 17) % 29) as f64 * 0.07 - 1.0
    });
    let b = Matrix::from_fn(192, 192, |i, j| ((i * 13 + j * 7) % 23) as f64 * 0.09 - 1.0);
    let reference = with_threads(1, || a.matmul(&b).unwrap());
    for t in THREADS {
        let out = with_threads(t, || a.matmul(&b).unwrap());
        assert_eq!(
            out.as_slice(),
            reference.as_slice(),
            "matmul must be bit-identical at {t} threads"
        );
        c.bench_function(&format!("kernels/matmul_192x192/threads={t}"), |bench| {
            bench.iter(|| with_threads(t, || black_box(a.matmul(&b).unwrap().get(0, 0))))
        });
    }
}

fn bench_gram(c: &mut Criterion) {
    let a = Matrix::from_fn(1024, 64, |i, j| ((i * 64 + j) as f64 * 0.013).sin());
    let reference = with_threads(1, || a.gram());
    for t in THREADS {
        let out = with_threads(t, || a.gram());
        assert_eq!(
            out.as_slice(),
            reference.as_slice(),
            "gram must be bit-identical at {t} threads"
        );
        c.bench_function(&format!("kernels/gram_1024x64/threads={t}"), |bench| {
            bench.iter(|| with_threads(t, || black_box(a.gram().get(0, 0))))
        });
    }
}

fn bench_clip_and_sum(c: &mut Criterion) {
    let grads = Matrix::from_fn(512, 2048, |i, j| ((i * 2048 + j) as f64 * 0.0007).sin());
    let reference = with_threads(1, || clip_and_sum_gradients(&grads, 1.0));
    for t in THREADS {
        let sum = with_threads(t, || clip_and_sum_gradients(&grads, 1.0));
        assert_eq!(
            sum, reference,
            "clip-and-sum must be bit-identical at {t} threads"
        );
        c.bench_function(
            &format!("kernels/clip_and_sum_512x2048/threads={t}"),
            |bench| {
                bench.iter(|| with_threads(t, || black_box(clip_and_sum_gradients(&grads, 1.0)[0])))
            },
        );
    }
}

fn bench_dpsgd_gradients(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4242);
    let mlp = Mlp::new(
        &mut rng,
        &[64, 128, 16],
        Activation::Relu,
        Activation::Identity,
    );
    let batch = 96;
    let x = Matrix::from_fn(batch, 64, |i, j| ((i * 64 + j) as f64 * 0.011).sin());
    let gouts = Matrix::from_fn(batch, 16, |i, j| ((i * 16 + j) as f64 * 0.017).cos());
    let kernel = |mlp: &Mlp, x: &Matrix, gouts: &Matrix| {
        let grads = mlp.per_example_gradients(x, gouts);
        clip_and_sum_gradients(&grads, 1.0)
    };
    let reference = with_threads(1, || kernel(&mlp, &x, &gouts));
    for t in THREADS {
        let sum = with_threads(t, || kernel(&mlp, &x, &gouts));
        assert_eq!(
            sum, reference,
            "per-example DP-SGD gradients must be bit-identical at {t} threads"
        );
        c.bench_function(&format!("kernels/dpsgd_grads_b96/threads={t}"), |bench| {
            bench.iter(|| with_threads(t, || black_box(kernel(&mlp, &x, &gouts)[0])))
        });
    }
}

fn bench_em_estep(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(777);
    let k = 5;
    let d = 16;
    let means = Matrix::from_fn(k, d, |i, j| ((i * d + j) as f64 * 0.37).sin());
    let model = Gmm::isotropic(vec![1.0; k], means, 0.5).unwrap();
    let data = model.sample_n(&mut rng, 4_000);
    let reference = with_threads(1, || model.responsibilities_batch(&data));
    for t in THREADS {
        let resp = with_threads(t, || model.responsibilities_batch(&data));
        assert_eq!(
            resp.as_slice(),
            reference.as_slice(),
            "EM E-step must be bit-identical at {t} threads"
        );
        c.bench_function(&format!("kernels/em_estep_n4000/threads={t}"), |bench| {
            bench.iter(|| {
                with_threads(t, || {
                    black_box(model.responsibilities_batch(&data).get(0, 0))
                })
            })
        });
    }
}

fn bench_em_log_densities(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(777);
    let k = 5;
    let d = 16;
    let means = Matrix::from_fn(k, d, |i, j| ((i * d + j) as f64 * 0.37).sin());
    let model = Gmm::isotropic(vec![1.0; k], means, 0.5).unwrap();
    let data = model.sample_n(&mut rng, 4_000);
    let reference = with_threads(1, || model.log_densities_batch(&data));
    for t in THREADS {
        let logs = with_threads(t, || model.log_densities_batch(&data));
        assert_eq!(
            logs.as_slice(),
            reference.as_slice(),
            "EM log densities must be bit-identical at {t} threads"
        );
        c.bench_function(&format!("kernels/em_logdens_n4000/threads={t}"), |bench| {
            bench.iter(|| with_threads(t, || black_box(model.log_densities_batch(&data).get(0, 0))))
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_matmul, bench_gram, bench_clip_and_sum, bench_dpsgd_gradients,
        bench_em_estep, bench_em_log_densities
}
criterion_main!(kernels);
