//! Regenerates Tables V, VI and VII of the P3GM paper at paper scale and
//! benchmarks a representative kernel of each pipeline.
//!
//! The regenerated tables are printed to stdout and written to
//! `target/paper_reports/`; the Criterion timings cover the per-call cost of
//! the pieces a user of the library pays repeatedly (privacy accounting and
//! synthetic-data sampling), not the one-off experiment generation.

use criterion::{criterion_group, criterion_main, Criterion};
use p3gm_bench::persist_report;
use p3gm_core::config::PgmConfig;
use p3gm_core::pgm::PhasedGenerativeModel;
use p3gm_core::synthesis::LabelledSynthesizer;
use p3gm_core::GenerativeModel;
use p3gm_datasets::tabular::adult_like;
use p3gm_eval::{table5, table6, table7, Scale};
use p3gm_privacy::rdp::RdpAccountant;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_table5(c: &mut Criterion) {
    let report = table5::run(Scale::Paper);
    persist_report("table5_nonprivate_comparison", &report.to_text());

    // Timed kernel: the Theorem 4 accounting a Table V reproduction performs
    // for every candidate hyper-parameter setting.
    c.bench_function("table5/theorem4_accounting", |b| {
        b.iter(|| {
            RdpAccountant::p3gm_total(0.1, 20, 150.0, 3, 2000, 0.005, 1.42, 1e-5)
                .unwrap()
                .epsilon
        })
    });
}

fn bench_table6(c: &mut Criterion) {
    let report = table6::run(Scale::Paper);
    persist_report("table6_private_comparison", &report.to_text());

    // Timed kernel: drawing labelled synthetic rows from a trained P3GM —
    // the operation a data curator repeats for every release.
    let mut rng = StdRng::seed_from_u64(606);
    let data = adult_like(&mut rng, 600);
    let (_synth, prepared) =
        LabelledSynthesizer::prepare(&data.features, &data.labels, data.n_classes).unwrap();
    let cfg = PgmConfig {
        latent_dim: 8,
        hidden_dim: 32,
        epochs: 2,
        em_iterations: 5,
        ..PgmConfig::default()
    };
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, cfg).unwrap();
    c.bench_function("table6/p3gm_sample_64_rows", |b| {
        b.iter(|| model.sample(&mut rng, 64))
    });
}

fn bench_table7(c: &mut Criterion) {
    let report = table7::run(Scale::Paper);
    persist_report("table7_image_accuracy", &report.to_text());

    // Timed kernel: decoding a batch of prior samples into images with a
    // trained (non-private, tiny) phased model.
    let mut rng = StdRng::seed_from_u64(707);
    let images = p3gm_datasets::images::mnist_like(&mut rng, 120, 10);
    let (model, _) = PhasedGenerativeModel::fit(
        &mut rng,
        &images.features,
        PgmConfig {
            latent_dim: 6,
            hidden_dim: 16,
            epochs: 1,
            em_iterations: 2,
            private: false,
            ..PgmConfig::default()
        },
    )
    .unwrap();
    c.bench_function("table7/decode_16_images", |b| {
        b.iter(|| model.sample(&mut rng, 16))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = tables;
    config = config();
    targets = bench_table5, bench_table6, bench_table7
}
criterion_main!(tables);
