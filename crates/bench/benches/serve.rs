//! Throughput and latency benchmarks for the `p3gm-server` HTTP
//! synthesis service at 1/2/4 server worker threads, in three client
//! modes:
//!
//! * **connect-per-request** — one TCP connect + request + framed
//!   response per iteration (the pre-keep-alive baseline);
//! * **keep-alive** — one persistent connection reused for every
//!   iteration (measures the request path without connect/teardown);
//! * **multi-connection keep-alive** — 4 concurrent client threads, each
//!   on its own persistent connection, hammering a large-`n` streamed
//!   CSV download; reported as aggregate requests/sec (printed, and
//!   recorded in `BENCH_serve.json`).
//!
//! A separate pass measures **first-byte latency** for the large-`n`
//! streamed response — the number chunked Transfer-Encoding exists to
//! shrink: the server flushes the head and first rows while the rest of
//! the batch is still being generated.
//!
//! Setup trains one small P3GM model, writes its snapshot into a
//! temporary model directory, and starts a fresh server per thread
//! count. Before timing, the de-chunked response body at every thread
//! count is asserted **byte-identical** to the 1-thread body — the
//! determinism guarantee the serving layer inherits from the core
//! canonical sample stream.
//!
//! The ledger runs in memory here (no per-request fsync), so the numbers
//! measure the HTTP + synthesis path. The recorded baseline lives in
//! `BENCH_serve.json` at the repository root together with the host's
//! core count — thread sweeps only show wall-clock scaling on machines
//! that actually have the cores.
//!
//! ```text
//! cargo bench -p p3gm-bench --bench serve
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use p3gm_core::config::PgmConfig;
use p3gm_core::pgm::PhasedGenerativeModel;
use p3gm_core::snapshot::SynthesisSnapshot;
use p3gm_core::synthesis::LabelledSynthesizer;
use p3gm_datasets::tabular::adult_like;
use p3gm_obs::ObsConfig;
use p3gm_server::http::{ClientResponse, ResponseReader};
use p3gm_server::{start, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const THREADS: [usize; 3] = [1, 2, 4];
const SAMPLE_BODY: &str = r#"{"seed": 42, "n": 64}"#;
const LARGE_BODY: &str = r#"{"seed": 42, "n": 4096, "format": "csv"}"#;
const CLIENT_CONNECTIONS: usize = 4;

/// One-write request send (a multi-write `write!` would interact with
/// Nagle + delayed ACK on reused connections, stalling ~40 ms).
fn send_sample(stream: &mut TcpStream, body: &str) {
    let request = format!(
        "POST /models/bench/sample HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
}

/// One request on a fresh connection, framed read, connection dropped.
fn one_shot(addr: SocketAddr, body: &str) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    send_sample(&mut stream, body);
    let response = ResponseReader::new(stream)
        .next_response()
        .expect("read response");
    assert_eq!(response.status, 200, "bench request must succeed");
    response
}

/// A persistent keep-alive connection issuing framed requests.
struct KeepAliveClient {
    stream: TcpStream,
    reader: ResponseReader<TcpStream>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream.set_nodelay(true).expect("nodelay");
        let reader = ResponseReader::new(stream.try_clone().expect("clone stream"));
        KeepAliveClient { stream, reader }
    }

    fn request(&mut self, body: &str) -> ClientResponse {
        send_sample(&mut self.stream, body);
        let response = self.reader.next_response().expect("read response");
        assert_eq!(response.status, 200, "bench request must succeed");
        response
    }
}

fn prepare_model_dir() -> PathBuf {
    let mut rng = StdRng::seed_from_u64(4242);
    let dataset = adult_like(&mut rng, 400);
    let (synth, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .expect("prepare");
    let config = PgmConfig {
        latent_dim: 6,
        hidden_dim: 24,
        epochs: 2,
        batch_size: 64,
        ..PgmConfig::default()
    };
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).expect("train");
    let snapshot = SynthesisSnapshot::capture(model).with_synthesizer(synth);
    let dir = std::env::temp_dir().join(format!("p3gm_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create model dir");
    std::fs::write(dir.join("bench.snapshot"), snapshot.to_bytes()).expect("write snapshot");
    dir
}

fn start_server(dir: &PathBuf, threads: usize) -> ServerHandle {
    start(
        ServerConfig::builder(dir)
            .threads(threads)
            .ledger_path(None)
            // The bench hammers one connection far past the production
            // default; the cap is a DoS bound, not a correctness one.
            .max_requests_per_connection(usize::MAX)
            .build(),
    )
    .expect("start server")
}

/// Aggregate requests/sec over `CLIENT_CONNECTIONS` concurrent
/// keep-alive connections each issuing `per_conn` requests.
fn multi_connection_rps(addr: SocketAddr, body: &str, per_conn: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENT_CONNECTIONS)
            .map(|_| {
                s.spawn(move || {
                    let mut client = KeepAliveClient::connect(addr);
                    for _ in 0..per_conn {
                        black_box(client.request(body).body.len());
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });
    (CLIENT_CONNECTIONS * per_conn) as f64 / t0.elapsed().as_secs_f64()
}

/// Mean milliseconds from request written to first response byte read,
/// over `iters` fresh connections (Connection: close, raw reads).
fn first_byte_latency_ms(addr: SocketAddr, body: &str, iters: usize) -> f64 {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let request = format!(
            "POST /models/bench/sample HTTP/1.1\r\nHost: b\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("send request");
        let t0 = Instant::now();
        let mut probe = [0u8; 1];
        let got = stream.read(&mut probe).expect("first byte");
        assert_eq!(got, 1);
        total += t0.elapsed();
        // Drain the rest so the server finishes cleanly.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
    total.as_secs_f64() * 1000.0 / iters as f64
}

fn bench_serve(c: &mut Criterion) {
    let dir = prepare_model_dir();

    // Determinism gate: the same (model, seed, n) must serve identical
    // de-chunked bytes at every server thread count, from fresh and
    // reused connections alike.
    let reference = {
        let server = start_server(&dir, 1);
        let body = one_shot(server.addr(), SAMPLE_BODY).body;
        server.shutdown();
        body
    };
    for t in THREADS {
        let server = start_server(&dir, t);
        let addr = server.addr();
        assert_eq!(
            one_shot(addr, SAMPLE_BODY).body,
            reference,
            "response bodies must be byte-identical at {t} server threads"
        );
        let mut gate = KeepAliveClient::connect(addr);
        assert_eq!(
            gate.request(SAMPLE_BODY).body,
            reference,
            "keep-alive responses must equal fresh-connection responses"
        );
        drop(gate);

        c.bench_function(
            &format!("serve/connect_per_request_n64/threads={t}"),
            |bench| bench.iter(|| black_box(one_shot(addr, SAMPLE_BODY).body.len())),
        );
        let mut client = KeepAliveClient::connect(addr);
        c.bench_function(&format!("serve/keepalive_n64/threads={t}"), |bench| {
            bench.iter(|| black_box(client.request(SAMPLE_BODY).body.len()))
        });
        drop(client);

        let rps = multi_connection_rps(addr, LARGE_BODY, 24);
        let fbl = first_byte_latency_ms(addr, LARGE_BODY, 20);
        println!(
            "serve/multiconn_stream_n4096/threads={t}: {rps:.0} req/s aggregate \
             over {CLIENT_CONNECTIONS} keep-alive connections; \
             first-byte latency {fbl:.3} ms (chunked CSV, 4096 rows)"
        );

        server.shutdown();
    }

    // Metrics overhead on the keep-alive hot path: the same workload
    // with the default instrumentation (a handful of atomic increments
    // and one pre-registered histogram observe per request) versus
    // `ObsConfig::disabled()`. The assert is a regression tripwire with
    // a generous noise margin, not a micro-measurement: the overhead
    // must stay unobservable next to ~hundreds of microseconds of
    // synthesis + HTTP per request.
    let mut means_us = [0.0f64; 2];
    for (slot, (label, obs)) in [
        ("enabled", ObsConfig::enabled()),
        ("disabled", ObsConfig::disabled()),
    ]
    .into_iter()
    .enumerate()
    {
        let server = start(
            ServerConfig::builder(&dir)
                .threads(2)
                .ledger_path(None)
                .max_requests_per_connection(usize::MAX)
                .obs(obs)
                .build(),
        )
        .expect("start server");
        let addr = server.addr();
        let mut client = KeepAliveClient::connect(addr);
        c.bench_function(&format!("serve/metrics_overhead/obs={label}"), |bench| {
            bench.iter(|| black_box(client.request(SAMPLE_BODY).body.len()))
        });
        // Manual mean for the cross-config comparison below.
        const ITERS: usize = 200;
        for _ in 0..20 {
            black_box(client.request(SAMPLE_BODY).body.len());
        }
        let t0 = Instant::now();
        for _ in 0..ITERS {
            black_box(client.request(SAMPLE_BODY).body.len());
        }
        means_us[slot] = t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
        drop(client);
        server.shutdown();
    }
    let (enabled_us, disabled_us) = (means_us[0], means_us[1]);
    println!(
        "serve/metrics_overhead: obs=enabled {enabled_us:.1} us/req, \
         obs=disabled {disabled_us:.1} us/req ({:+.1}%)",
        (enabled_us / disabled_us - 1.0) * 100.0
    );
    assert!(
        enabled_us < disabled_us * 2.0,
        "metrics instrumentation must be unobservable on the keep-alive \
         path: enabled {enabled_us:.1} us vs disabled {disabled_us:.1} us"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = serve;
    config = config();
    targets = bench_serve
}
criterion_main!(serve);
