//! Throughput and latency benchmarks for the `p3gm-server` HTTP
//! synthesis service at 1/2/4 server worker threads, in three client
//! modes:
//!
//! * **connect-per-request** — one TCP connect + request + framed
//!   response per iteration (the pre-keep-alive baseline);
//! * **keep-alive** — one persistent connection reused for every
//!   iteration (measures the request path without connect/teardown);
//! * **multi-connection keep-alive** — 4 concurrent client threads, each
//!   on its own persistent connection, hammering a large-`n` streamed
//!   CSV download; reported as aggregate requests/sec (printed, and
//!   recorded in `BENCH_serve.json`).
//!
//! A separate pass measures **first-byte latency** for the large-`n`
//! streamed response — the number chunked Transfer-Encoding exists to
//! shrink: the server flushes the head and first rows while the rest of
//! the batch is still being generated.
//!
//! The **concurrent-connections** pass holds N idle keep-alive
//! connections open (64/512/4096, and a stretch tier sized to the fd
//! limit, ~10k) while an active subset of 8 connections keeps sampling —
//! reactor core versus thread-per-connection core. The thread core needs
//! one OS thread per held connection (its ceiling, and why it stops at
//! 512 here); the reactor holds every tier on a fixed thread count,
//! asserted in-bench.
//!
//! Setup trains one small P3GM model, writes its snapshot into a
//! temporary model directory, and starts a fresh server per thread
//! count. Before timing, the de-chunked response body at every thread
//! count is asserted **byte-identical** to the 1-thread body — the
//! determinism guarantee the serving layer inherits from the core
//! canonical sample stream.
//!
//! The ledger runs in memory here (no per-request fsync), so the numbers
//! measure the HTTP + synthesis path. The recorded baseline lives in
//! `BENCH_serve.json` at the repository root together with the host's
//! core count — thread sweeps only show wall-clock scaling on machines
//! that actually have the cores.
//!
//! ```text
//! cargo bench -p p3gm-bench --bench serve
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use p3gm_core::config::PgmConfig;
use p3gm_core::pgm::PhasedGenerativeModel;
use p3gm_core::snapshot::SynthesisSnapshot;
use p3gm_core::synthesis::LabelledSynthesizer;
use p3gm_datasets::tabular::adult_like;
use p3gm_obs::ObsConfig;
use p3gm_server::http::{ClientResponse, ResponseReader};
use p3gm_server::{start, ServerConfig, ServerCore, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const THREADS: [usize; 3] = [1, 2, 4];
const SAMPLE_BODY: &str = r#"{"seed": 42, "n": 64}"#;
const LARGE_BODY: &str = r#"{"seed": 42, "n": 4096, "format": "csv"}"#;
const CLIENT_CONNECTIONS: usize = 4;
/// Active keep-alive connections issuing requests while the idle herd
/// is held open in the concurrent-connections pass.
const ACTIVE_SUBSET: usize = 8;

/// One-write request send (a multi-write `write!` would interact with
/// Nagle + delayed ACK on reused connections, stalling ~40 ms).
fn send_sample(stream: &mut TcpStream, body: &str) {
    let request = format!(
        "POST /models/bench/sample HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
}

/// One request on a fresh connection, framed read, connection dropped.
fn one_shot(addr: SocketAddr, body: &str) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    send_sample(&mut stream, body);
    let response = ResponseReader::new(stream)
        .next_response()
        .expect("read response");
    assert_eq!(response.status, 200, "bench request must succeed");
    response
}

/// A persistent keep-alive connection issuing framed requests.
struct KeepAliveClient {
    stream: TcpStream,
    reader: ResponseReader<TcpStream>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream.set_nodelay(true).expect("nodelay");
        let reader = ResponseReader::new(stream.try_clone().expect("clone stream"));
        KeepAliveClient { stream, reader }
    }

    fn request(&mut self, body: &str) -> ClientResponse {
        send_sample(&mut self.stream, body);
        let response = self.reader.next_response().expect("read response");
        assert_eq!(response.status, 200, "bench request must succeed");
        response
    }
}

fn prepare_model_dir() -> PathBuf {
    let mut rng = StdRng::seed_from_u64(4242);
    let dataset = adult_like(&mut rng, 400);
    let (synth, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .expect("prepare");
    let config = PgmConfig {
        latent_dim: 6,
        hidden_dim: 24,
        epochs: 2,
        batch_size: 64,
        ..PgmConfig::default()
    };
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).expect("train");
    let snapshot = SynthesisSnapshot::capture(model).with_synthesizer(synth);
    let dir = std::env::temp_dir().join(format!("p3gm_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create model dir");
    std::fs::write(dir.join("bench.snapshot"), snapshot.to_bytes()).expect("write snapshot");
    dir
}

fn start_server(dir: &PathBuf, threads: usize) -> ServerHandle {
    start(
        ServerConfig::builder(dir)
            .threads(threads)
            .ledger_path(None)
            // The bench hammers one connection far past the production
            // default; the cap is a DoS bound, not a correctness one.
            .max_requests_per_connection(usize::MAX)
            .build(),
    )
    .expect("start server")
}

/// Aggregate requests/sec over `CLIENT_CONNECTIONS` concurrent
/// keep-alive connections each issuing `per_conn` requests.
fn multi_connection_rps(addr: SocketAddr, body: &str, per_conn: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENT_CONNECTIONS)
            .map(|_| {
                s.spawn(move || {
                    let mut client = KeepAliveClient::connect(addr);
                    for _ in 0..per_conn {
                        black_box(client.request(body).body.len());
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });
    (CLIENT_CONNECTIONS * per_conn) as f64 / t0.elapsed().as_secs_f64()
}

/// Mean milliseconds from request written to first response byte read,
/// over `iters` fresh connections (Connection: close, raw reads).
fn first_byte_latency_ms(addr: SocketAddr, body: &str, iters: usize) -> f64 {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let request = format!(
            "POST /models/bench/sample HTTP/1.1\r\nHost: b\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("send request");
        let t0 = Instant::now();
        let mut probe = [0u8; 1];
        let got = stream.read(&mut probe).expect("first byte");
        assert_eq!(got, 1);
        total += t0.elapsed();
        // Drain the rest so the server finishes cleanly.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
    total.as_secs_f64() * 1000.0 / iters as f64
}

/// The live OS thread count of this process (server threads included —
/// the bench runs the server in-process).
fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|entries| entries.count())
        .unwrap_or(0)
}

/// This process's open-files rlimit, from `/proc/self/limits`.
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|line| line.starts_with("Max open files"))?
                .split_whitespace()
                .nth(3)?
                .parse()
                .ok()
        })
        .unwrap_or(1024)
}

/// Opens `n` keep-alive connections and completes one health round-trip
/// on each (all requests written before any response is read, so every
/// connection is simultaneously open), leaving all of them idle.
fn hold_idle_connections(addr: SocketAddr, n: usize) -> Vec<KeepAliveClient> {
    let mut conns: Vec<KeepAliveClient> = (0..n).map(|_| KeepAliveClient::connect(addr)).collect();
    for conn in conns.iter_mut() {
        conn.stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: b\r\nContent-Length: 0\r\n\r\n")
            .expect("idle probe send");
    }
    for conn in conns.iter_mut() {
        let resp = conn.reader.next_response().expect("idle probe response");
        assert_eq!(resp.status, 200, "every held connection must be served");
    }
    conns
}

/// The server's `p3gm_connections_open` gauge, scraped over one fresh
/// `Connection: close` request.
fn scrape_connections_open(addr: SocketAddr) -> f64 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(
            b"GET /metrics HTTP/1.1\r\nHost: b\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
        )
        .expect("send scrape");
    let response = ResponseReader::new(stream)
        .next_response()
        .expect("read metrics");
    assert_eq!(response.status, 200, "metrics scrape must succeed");
    String::from_utf8(response.body)
        .expect("utf-8 exposition")
        .lines()
        .find(|line| line.starts_with("p3gm_connections_open"))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|value| value.parse().ok())
        .expect("connection gauge value")
}

/// Holds N idle keep-alive connections while an active subset samples:
/// the reactor core on a fixed thread budget versus the thread core
/// spending one OS thread per connection. The stretch tier (reactor
/// only) is sized to the fd limit — two fds per in-process connection —
/// and asserts the headline claim: >= 1k connections held open with a
/// bounded thread count.
fn bench_concurrent_conns(c: &mut Criterion, dir: &PathBuf, reference: &[u8]) {
    let start_held_server = |core: ServerCore, threads: usize| -> ServerHandle {
        start(
            ServerConfig::builder(dir)
                .core(core)
                .threads(threads)
                .ledger_path(None)
                .max_requests_per_connection(usize::MAX)
                .keep_alive_timeout(Duration::from_secs(600))
                .build(),
        )
        .expect("start server")
    };

    let tiers: [(ServerCore, &str, &[usize]); 2] = [
        (ServerCore::Reactor, "reactor", &[64, 512, 4096]),
        // The thread core's ceiling is the bench variable itself: N held
        // connections pin N worker threads, so its sweep stops at 512.
        (ServerCore::ThreadPerConnection, "thread", &[64, 512]),
    ];
    for (core, label, sizes) in tiers {
        for &n in sizes {
            let threads = match core {
                ServerCore::Reactor => 2,
                ServerCore::ThreadPerConnection => n + ACTIVE_SUBSET,
            };
            let threads_baseline = os_thread_count();
            let server = start_held_server(core, threads);
            let addr = server.addr();
            let idle = hold_idle_connections(addr, n);
            let threads_held = os_thread_count();
            println!(
                "serve/concurrent_conns_idle{n}/core={label}: {n} connections \
                 held by {} OS threads",
                threads_held - threads_baseline
            );
            if core == ServerCore::Reactor {
                assert!(
                    threads_held - threads_baseline <= threads + 2,
                    "reactor must hold {n} connections without per-connection \
                     threads: {threads_baseline} -> {threads_held}"
                );
            }

            let mut active: Vec<KeepAliveClient> = (0..ACTIVE_SUBSET)
                .map(|_| KeepAliveClient::connect(addr))
                .collect();
            assert_eq!(
                active[0].request(SAMPLE_BODY).body,
                reference,
                "core={label} must serve byte-identical bodies under load"
            );
            let mut turn = 0usize;
            c.bench_function(
                &format!("serve/concurrent_conns_idle{n}/core={label}"),
                |b| {
                    b.iter(|| {
                        turn = turn.wrapping_add(1);
                        black_box(active[turn % ACTIVE_SUBSET].request(SAMPLE_BODY).body.len())
                    })
                },
            );

            drop(active);
            drop(idle);
            server.shutdown();
        }
    }

    // Stretch tier: as many connections as the fd limit allows, capped
    // at 10k. Each held in-process connection costs two fds (client +
    // server end), and the scrape/active clients need headroom, so the
    // herd is raw uncloned sockets verified through the server's own
    // `p3gm_connections_open` gauge rather than per-connection probes.
    let stretch = (fd_limit().saturating_sub(500) / 2).min(10_000);
    let threads_baseline = os_thread_count();
    let server = start_held_server(ServerCore::Reactor, 2);
    let addr = server.addr();
    let idle: Vec<TcpStream> = (0..stretch)
        .map(|_| TcpStream::connect(addr).expect("stretch connect"))
        .collect();
    // The reactor accepts the tail of the herd asynchronously; wait for
    // its connection gauge to account for every held socket.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let open = scrape_connections_open(addr);
        if open >= stretch as f64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reactor accepted only {open} of {stretch} stretch connections"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let threads_held = os_thread_count();
    assert!(
        stretch >= 1_000,
        "stretch tier must exercise >= 1k connections, fd limit {} allows \
         only {stretch}",
        fd_limit()
    );
    assert!(
        threads_held - threads_baseline <= 4,
        "reactor must hold {stretch} connections on a bounded thread count: \
         {threads_baseline} -> {threads_held}"
    );
    let mut active: Vec<KeepAliveClient> = (0..ACTIVE_SUBSET)
        .map(|_| KeepAliveClient::connect(addr))
        .collect();
    const STRETCH_REQS: usize = 400;
    let t0 = Instant::now();
    for i in 0..STRETCH_REQS {
        black_box(active[i % ACTIVE_SUBSET].request(SAMPLE_BODY).body.len());
    }
    let rps = STRETCH_REQS as f64 / t0.elapsed().as_secs_f64();
    println!(
        "serve/concurrent_conns_idle{stretch}/core=reactor (stretch, fd-limit \
         {}): {stretch} connections held by {} OS threads, active subset of \
         {ACTIVE_SUBSET} sustained {rps:.0} req/s",
        fd_limit(),
        threads_held - threads_baseline
    );
    drop(active);
    drop(idle);
    server.shutdown();
}

fn bench_serve(c: &mut Criterion) {
    let dir = prepare_model_dir();

    // Determinism gate: the same (model, seed, n) must serve identical
    // de-chunked bytes at every server thread count, from fresh and
    // reused connections alike.
    let reference = {
        let server = start_server(&dir, 1);
        let body = one_shot(server.addr(), SAMPLE_BODY).body;
        server.shutdown();
        body
    };
    for t in THREADS {
        let server = start_server(&dir, t);
        let addr = server.addr();
        assert_eq!(
            one_shot(addr, SAMPLE_BODY).body,
            reference,
            "response bodies must be byte-identical at {t} server threads"
        );
        let mut gate = KeepAliveClient::connect(addr);
        assert_eq!(
            gate.request(SAMPLE_BODY).body,
            reference,
            "keep-alive responses must equal fresh-connection responses"
        );
        drop(gate);

        c.bench_function(
            &format!("serve/connect_per_request_n64/threads={t}"),
            |bench| bench.iter(|| black_box(one_shot(addr, SAMPLE_BODY).body.len())),
        );
        let mut client = KeepAliveClient::connect(addr);
        c.bench_function(&format!("serve/keepalive_n64/threads={t}"), |bench| {
            bench.iter(|| black_box(client.request(SAMPLE_BODY).body.len()))
        });
        drop(client);

        let rps = multi_connection_rps(addr, LARGE_BODY, 24);
        let fbl = first_byte_latency_ms(addr, LARGE_BODY, 20);
        println!(
            "serve/multiconn_stream_n4096/threads={t}: {rps:.0} req/s aggregate \
             over {CLIENT_CONNECTIONS} keep-alive connections; \
             first-byte latency {fbl:.3} ms (chunked CSV, 4096 rows)"
        );

        server.shutdown();
    }

    // Metrics overhead on the keep-alive hot path: the same workload
    // with the default instrumentation (a handful of atomic increments
    // and one pre-registered histogram observe per request) versus
    // `ObsConfig::disabled()`. The assert is a regression tripwire with
    // a generous noise margin, not a micro-measurement: the overhead
    // must stay unobservable next to ~hundreds of microseconds of
    // synthesis + HTTP per request.
    let mut means_us = [0.0f64; 2];
    for (slot, (label, obs)) in [
        ("enabled", ObsConfig::enabled()),
        ("disabled", ObsConfig::disabled()),
    ]
    .into_iter()
    .enumerate()
    {
        let server = start(
            ServerConfig::builder(&dir)
                .threads(2)
                .ledger_path(None)
                .max_requests_per_connection(usize::MAX)
                .obs(obs)
                .build(),
        )
        .expect("start server");
        let addr = server.addr();
        let mut client = KeepAliveClient::connect(addr);
        c.bench_function(&format!("serve/metrics_overhead/obs={label}"), |bench| {
            bench.iter(|| black_box(client.request(SAMPLE_BODY).body.len()))
        });
        // Manual mean for the cross-config comparison below.
        const ITERS: usize = 200;
        for _ in 0..20 {
            black_box(client.request(SAMPLE_BODY).body.len());
        }
        let t0 = Instant::now();
        for _ in 0..ITERS {
            black_box(client.request(SAMPLE_BODY).body.len());
        }
        means_us[slot] = t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
        drop(client);
        server.shutdown();
    }
    let (enabled_us, disabled_us) = (means_us[0], means_us[1]);
    println!(
        "serve/metrics_overhead: obs=enabled {enabled_us:.1} us/req, \
         obs=disabled {disabled_us:.1} us/req ({:+.1}%)",
        (enabled_us / disabled_us - 1.0) * 100.0
    );
    assert!(
        enabled_us < disabled_us * 2.0,
        "metrics instrumentation must be unobservable on the keep-alive \
         path: enabled {enabled_us:.1} us vs disabled {disabled_us:.1} us"
    );

    bench_concurrent_conns(c, &dir, &reference);

    let _ = std::fs::remove_dir_all(&dir);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = serve;
    config = config();
    targets = bench_serve
}
criterion_main!(serve);
