//! Requests-per-second benchmark for the `p3gm-server` HTTP synthesis
//! service at 1/2/4 server worker threads.
//!
//! Setup trains one small P3GM model, writes its snapshot into a
//! temporary model directory, and starts a fresh server per thread
//! count. Each measured iteration is one full HTTP round trip over a
//! real TCP socket: connect, `POST /models/bench/sample` (seed 42,
//! n = 64), read the response. Before timing, the response body at every
//! thread count is asserted **byte-identical** to the 1-thread body —
//! the determinism guarantee the serving layer inherits from
//! `p3gm-parallel`.
//!
//! The ledger runs in memory here (no per-request fsync), so the numbers
//! measure the HTTP + synthesis path. The recorded baseline lives in
//! `BENCH_serve.json` at the repository root together with the host's
//! core count — thread sweeps only show wall-clock scaling on machines
//! that actually have the cores.
//!
//! ```text
//! cargo bench -p p3gm-bench --bench serve
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use p3gm_core::config::PgmConfig;
use p3gm_core::pgm::PhasedGenerativeModel;
use p3gm_core::snapshot::SynthesisSnapshot;
use p3gm_core::synthesis::LabelledSynthesizer;
use p3gm_datasets::tabular::adult_like;
use p3gm_server::{start, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const THREADS: [usize; 3] = [1, 2, 4];
const SAMPLE_BODY: &str = r#"{"seed": 42, "n": 64}"#;

fn one_request(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "POST /models/bench/sample HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{SAMPLE_BODY}",
        SAMPLE_BODY.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    raw.split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .expect("response body")
}

fn prepare_model_dir() -> PathBuf {
    let mut rng = StdRng::seed_from_u64(4242);
    let dataset = adult_like(&mut rng, 400);
    let (synth, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .expect("prepare");
    let config = PgmConfig {
        latent_dim: 6,
        hidden_dim: 24,
        epochs: 2,
        batch_size: 64,
        ..PgmConfig::default()
    };
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).expect("train");
    let snapshot = SynthesisSnapshot::capture(model).with_synthesizer(synth);
    let dir = std::env::temp_dir().join(format!("p3gm_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create model dir");
    std::fs::write(dir.join("bench.snapshot"), snapshot.to_bytes()).expect("write snapshot");
    dir
}

fn start_server(dir: &PathBuf, threads: usize) -> ServerHandle {
    start(ServerConfig {
        threads,
        ledger_path: None,
        ..ServerConfig::new(dir)
    })
    .expect("start server")
}

fn bench_serve(c: &mut Criterion) {
    let dir = prepare_model_dir();

    // Determinism gate: the same (model, seed, n) must serve identical
    // bytes at every server thread count.
    let reference = {
        let server = start_server(&dir, 1);
        let body = one_request(server.addr());
        server.shutdown();
        body
    };
    for t in THREADS {
        let server = start_server(&dir, t);
        let body = one_request(server.addr());
        assert_eq!(
            body, reference,
            "response bodies must be byte-identical at {t} server threads"
        );
        c.bench_function(&format!("serve/sample_n64/threads={t}"), |bench| {
            let addr = server.addr();
            bench.iter(|| black_box(one_request(addr).len()))
        });
        server.shutdown();
    }

    let _ = std::fs::remove_dir_all(&dir);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = serve;
    config = config();
    targets = bench_serve
}
criterion_main!(serve);
