//! Regenerates Figures 2, 4, 5, 6 and 7 of the P3GM paper at paper scale
//! and benchmarks a representative kernel of each.
//!
//! The regenerated figures (as text tables / ASCII sample sheets) are
//! printed to stdout and written to `target/paper_reports/`.

use criterion::{criterion_group, criterion_main, Criterion};
use p3gm_bench::persist_report;
use p3gm_eval::{fig2, fig4, fig5, fig6, fig7, Scale};
use p3gm_privacy::moments::{ma_dp_sgd, rdp_sampled_gaussian};
use p3gm_privacy::zcdp::baseline_composition_epsilon;
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let report = fig2::run(Scale::Paper);
    persist_report("fig2_sample_quality", &report.to_text());

    // Timed kernel: rendering one ASCII sample sheet (the reporting path).
    let samples = report.panels[0].samples.clone();
    let size = report.image_size;
    c.bench_function("fig2/ascii_sheet_rendering", |b| {
        b.iter(|| p3gm_datasets::images::ascii_art(&samples, size, 8).len())
    });
}

fn bench_fig4(c: &mut Criterion) {
    let report = fig4::run(Scale::Paper);
    persist_report("fig4_epsilon_sweep", &report.to_text());

    // Timed kernel: the noise calibration performed for every ε of the sweep.
    c.bench_function("fig4/noise_calibration", |b| {
        b.iter(|| {
            p3gm_privacy::calibrate::calibrate_dpsgd_sigma(1.0, 1e-5, 0.1, 10, 200.0, 3, 250, 0.03)
                .unwrap()
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let report = fig5::run(Scale::Paper);
    persist_report("fig5_dimension_sweep", &report.to_text());

    // Timed kernel: a DP-PCA fit at the largest swept dimensionality.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(505);
    let data = p3gm_datasets::images::mnist_like(&mut rng, 200, 12);
    let scaled = data.features.scale(1.0 / (data.n_features() as f64).sqrt());
    c.bench_function("fig5/dp_pca_fit", |b| {
        b.iter(|| {
            p3gm_preprocess::pca::DpPca::fit(&mut rng, &scaled, 16, 0.1)
                .unwrap()
                .n_components()
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let report = fig6::run(Scale::Paper);
    persist_report("fig6_composition", &report.to_text());

    // Timed kernel: one full composition comparison (both accountants).
    c.bench_function("fig6/composition_point", |b| {
        b.iter(|| {
            let rdp = p3gm_privacy::rdp::RdpAccountant::p3gm_total(
                0.1, 20, 150.0, 3, 2000, 0.005, 2.0, 1e-5,
            )
            .unwrap()
            .epsilon;
            let baseline =
                baseline_composition_epsilon(0.1, 20, 150.0, 3, 2000, 0.005, 2.0, 1e-5).unwrap();
            (rdp, baseline)
        })
    });

    // Micro-kernels of the two per-step bounds, useful when tuning the grid.
    c.bench_function("fig6/eq4_moment_bound", |b| {
        b.iter(|| ma_dp_sgd(31, 0.005, 2.0))
    });
    c.bench_function("fig6/sampled_gaussian_rdp", |b| {
        b.iter(|| rdp_sampled_gaussian(32, 0.005, 2.0))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let report = fig7::run(Scale::Paper);
    persist_report("fig7_learning_efficiency", &report.to_text());

    // Timed kernel: one DP-SGD gradient privatization step of the size used
    // in the decoding phase.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77);
    let grads = p3gm_linalg::Matrix::from_fn(64, 2_000, |i, _| (i as f64) * 0.01);
    c.bench_function("fig7/dpsgd_privatize_batch", |b| {
        b.iter(|| {
            p3gm_privacy::mechanisms::privatize_gradient_sum(&mut rng, &grads, 1.0, 1.5, 64)
                .unwrap()
                .len()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = figures;
    config = config();
    targets = bench_fig2, bench_fig4, bench_fig5, bench_fig6, bench_fig7
}
criterion_main!(figures);
