//! Startup-time and resident-footprint benchmarks for the lazy model
//! registry over a directory of 1000 small tenant snapshots:
//!
//! * **lazy open** — the production path: every file's header is peeked
//!   (leading frames only: geometry + recomputed privacy stamp), zero
//!   weight payloads decoded;
//! * **eager open** — the pre-lazy baseline, reconstructed by opening
//!   and then forcing every model's full checksummed decode through
//!   `get`, the work the old registry did inside `open`;
//! * **budgeted serving** — with `max_resident_bytes` sized to hold ~10
//!   models, draws samples across many tenants and reports the
//!   eviction-churned residency.
//!
//! Before timing, the bench asserts the acceptance property: under a
//! ~10-model budget the sampled bytes for any tenant are bit-identical
//! to eager-load serving, and a 1k directory lists all 1000 models
//! having decoded nothing. Results are recorded in
//! `BENCH_registry.json` at the repository root.
//!
//! ```text
//! cargo bench -p p3gm-bench --bench registry
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use p3gm_core::config::PgmConfig;
use p3gm_core::pgm::PhasedGenerativeModel;
use p3gm_core::snapshot::{SnapshotHeader, SynthesisSnapshot};
use p3gm_core::synthesis::LabelledSynthesizer;
use p3gm_linalg::Matrix;
use p3gm_server::registry::{Registry, RegistryConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const TENANTS: usize = 1000;

/// Trains one small model and replicates its snapshot under `TENANTS`
/// tenant names — the "thousands of tenants per node" directory shape.
fn prepare_tenant_dir() -> (PathBuf, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(77);
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|_| (0..6).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
    let features = Matrix::from_rows(&rows).expect("features");
    let (synth, prepared) = LabelledSynthesizer::prepare(&features, &labels, 2).expect("prepare");
    let config = PgmConfig {
        latent_dim: 4,
        hidden_dim: 16,
        epochs: 2,
        batch_size: 16,
        ..PgmConfig::default()
    };
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).expect("train");
    let snapshot = SynthesisSnapshot::capture(model).with_synthesizer(synth);
    let bytes = snapshot.to_bytes();

    let dir = std::env::temp_dir().join(format!("p3gm_bench_registry_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    for i in 0..TENANTS {
        std::fs::write(dir.join(format!("tenant-{i:04}.snapshot")), &bytes)
            .expect("write snapshot");
    }
    (dir, bytes)
}

fn lazy_open(dir: &PathBuf, budget: Option<u64>) -> Registry {
    let (registry, report) = Registry::open_with(
        dir,
        RegistryConfig {
            max_resident_bytes: budget,
            load_wait: Duration::from_secs(30),
        },
    )
    .expect("open registry");
    assert_eq!(report.loaded.len(), TENANTS, "{:?}", report.failed);
    registry
}

/// The pre-lazy baseline: registering every tenant AND decoding every
/// weight payload, the work the eager registry did inside `open`.
fn eager_open(dir: &PathBuf) -> Registry {
    let registry = lazy_open(dir, None);
    for header in registry.list_headers() {
        let _ = registry.get(header.name()).expect("eager decode");
    }
    registry
}

fn bench_registry(c: &mut Criterion) {
    let (dir, bytes) = prepare_tenant_dir();
    let per_model = SnapshotHeader::peek(&bytes)
        .expect("peek")
        .approx_resident_bytes();

    // Acceptance gates, asserted before timing.
    //
    // 1. A 1k-tenant directory starts up decoding zero weight payloads
    //    and lists all 1000 models from headers alone.
    let t0 = Instant::now();
    let lazy = lazy_open(&dir, Some(10 * per_model));
    let lazy_startup = t0.elapsed();
    let stats = lazy.stats();
    assert_eq!(stats.models, TENANTS as u64);
    assert_eq!(lazy.list_headers().len(), TENANTS);
    assert_eq!(
        (stats.loads, stats.resident_bytes),
        (0, 0),
        "lazy startup must decode nothing"
    );

    // 2. Under the ~10-model budget, sampled bytes stay bit-identical
    //    to eager-load serving, across enough tenants to churn through
    //    several evictions.
    let t0 = Instant::now();
    let eager = eager_open(&dir);
    let eager_startup = t0.elapsed();
    let eager_stats = eager.stats();
    assert_eq!(eager_stats.loads, TENANTS as u64);
    for i in (0..TENANTS).step_by(40) {
        let name = format!("tenant-{i:04}");
        let budgeted = lazy.get(&name).expect("budgeted get");
        let full = eager.get(&name).expect("eager get");
        let (a, b) = (
            budgeted.snapshot().sample_rows(9, 0, 32),
            full.snapshot().sample_rows(9, 0, 32),
        );
        assert_eq!(a.as_slice(), b.as_slice(), "bytes must match for {name}");
    }
    let stats = lazy.stats();
    assert!(stats.evictions > 0, "25 tenants through a 10-model budget");
    assert!(
        stats.resident_bytes <= 10 * per_model,
        "residency within budget: {stats:?}"
    );
    println!(
        "registry/startup_1k: lazy {:.1} ms ({} bytes resident) vs eager {:.1} ms ({} bytes resident); \
         per-model cost {per_model} bytes; budgeted serving made {} loads / {} evictions",
        lazy_startup.as_secs_f64() * 1000.0,
        0,
        eager_startup.as_secs_f64() * 1000.0,
        eager_stats.resident_bytes,
        stats.loads,
        stats.evictions,
    );
    drop(lazy);
    drop(eager);

    c.bench_function("registry/lazy_open_1k", |bench| {
        bench.iter(|| black_box(lazy_open(&dir, None).len()))
    });
    c.bench_function("registry/eager_open_1k", |bench| {
        bench.iter(|| black_box(eager_open(&dir).len()))
    });

    let _ = std::fs::remove_dir_all(&dir);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = registry;
    config = config();
    targets = bench_registry
}
criterion_main!(registry);
