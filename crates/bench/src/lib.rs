//! # p3gm-bench
//!
//! Benchmark harness regenerating the P3GM paper's tables and figures.
//!
//! The heavy lifting lives in `p3gm-eval`; this crate adds the Criterion
//! entry points (`benches/paper_tables.rs`, `benches/paper_figures.rs`) and
//! the helpers below for persisting the regenerated reports under
//! `target/paper_reports/` so they can be diffed against the numbers
//! recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo bench -p p3gm-bench --bench paper_tables     # Tables V, VI, VII
//! cargo bench -p p3gm-bench --bench paper_figures    # Figures 2, 4, 5, 6, 7
//! cargo bench -p p3gm-bench --bench paper_tables -- table5   # a single artefact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// Directory (under `target/`) where regenerated reports are written.
pub fn report_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(target).join("paper_reports")
}

/// Writes one regenerated report to `target/paper_reports/<name>.txt` and
/// echoes it to stdout (so `cargo bench | tee` captures the tables).
pub fn persist_report(name: &str, contents: &str) {
    println!("\n================ {name} ================\n{contents}");
    let dir = report_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(err) = fs::write(&path, contents) {
            eprintln!("warning: could not write {}: {err}", path.display());
        } else {
            println!("(written to {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_dir_is_under_target() {
        let dir = report_dir();
        assert!(dir.ends_with("paper_reports"));
    }

    #[test]
    fn persist_report_writes_a_file() {
        persist_report("unit_test_report", "hello");
        let path = report_dir().join("unit_test_report.txt");
        assert!(path.exists());
        assert_eq!(std::fs::read_to_string(path).unwrap(), "hello");
    }
}
