//! Moments-accountant and Rényi-DP bounds for the privatized components.
//!
//! The paper composes three mechanisms in Rényi DP (Theorem 4):
//!
//! * **DP-PCA** (Wishart mechanism, pure ε_p-DP) contributes `(α, 2αε_p²)`-RDP
//!   via Lemma 1 of Mironov's RDP paper.
//! * **DP-EM** contributes, per iteration, the moments bound of paper Eq. (3):
//!   `MA_DP-EM(α) ≤ (2K+1)(α² + α) / (2σ_e²)`.
//! * **DP-SGD** contributes, per iteration, the moments bound of paper
//!   Eq. (4) (Abadi et al.'s expansion for the subsampled Gaussian
//!   mechanism).
//!
//! The bridge between a moments bound and RDP is paper Theorem 3:
//! a mechanism whose α-th moment is `MA(α)` satisfies
//! `(α + 1, MA(α)/α)`-RDP.
//!
//! In addition to the paper's Eq. (4) we provide the standard
//! sampled-Gaussian-mechanism RDP bound (Mironov et al. / Wang et al.) for
//! integer orders, which is tighter and is used as an ablation in the
//! Figure 6 bench.

/// Moments bound for one DP-EM iteration, paper Eq. (3).
///
/// `MA_DP-EM(α) ≤ (2K + 1)(α² + α) / (2 σ_e²)` where `K` is the number of
/// mixture components (the M-step releases `K` means, `K` covariances and
/// one weight vector, i.e. `2K + 1` Gaussian-perturbed quantities of
/// sensitivity at most 1) and `σ_e` is the Gaussian noise scale.
///
/// # Panics
/// Panics if `sigma_e <= 0` or `n_components == 0`.
pub fn ma_dp_em(alpha: f64, sigma_e: f64, n_components: usize) -> f64 {
    assert!(sigma_e > 0.0, "sigma_e must be positive");
    assert!(n_components > 0, "n_components must be positive");
    let k = n_components as f64;
    (2.0 * k + 1.0) * (alpha * alpha + alpha) / (2.0 * sigma_e * sigma_e)
}

/// Moments bound for one DP-SGD iteration, paper Eq. (4) (Abadi et al.).
///
/// `lambda` is the (integer) moment order, `q` the sampling probability
/// `B/N`, and `sigma` the noise multiplier. The bound is
///
/// ```text
/// MA(λ) ≤ q²λ(λ−1)/((1−q)σ²)
///       + Σ_{t=3}^{λ+1} [ (2q)^t (t−1)!! / (2(1−q)^{t−1} σ^t)
///                        + q^t / ((1−q)^t σ^{2t})
///                        + (2q)^t exp((t²−t)/(2σ²)) (σ^t (t−1)!! + t^t)
///                          / (2(1−q)^{t−1} σ^{2t}) ]
/// ```
///
/// Terms are evaluated in log-space and the result saturates at
/// `f64::INFINITY` for orders where the expansion blows up; the accountant
/// simply never selects those orders.
///
/// # Panics
/// Panics if `q` is not in `(0, 1)` or `sigma <= 0`.
pub fn ma_dp_sgd(lambda: u32, q: f64, sigma: f64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "sampling probability must be in (0,1)");
    assert!(sigma > 0.0, "sigma must be positive");
    let lam = f64::from(lambda);
    if lambda == 0 {
        return 0.0;
    }
    let one_minus_q = 1.0 - q;

    // Leading term: q²λ(λ−1)/((1−q)σ²).
    let mut total = q * q * lam * (lam - 1.0) / (one_minus_q * sigma * sigma);

    // Higher-order terms, t = 3 ..= λ+1, accumulated from log-space values.
    for t in 3..=(lambda as u64 + 1) {
        let tf = t as f64;
        let ln_q = q.ln();
        let ln_2q = (2.0 * q).ln();
        let ln_1mq = one_minus_q.ln();
        let ln_sigma = sigma.ln();
        let ln_double_fact = ln_double_factorial(t - 1);

        // (2q)^t (t−1)!! / (2 (1−q)^{t−1} σ^t)
        let term1 =
            tf * ln_2q + ln_double_fact - (2.0_f64).ln() - (tf - 1.0) * ln_1mq - tf * ln_sigma;

        // q^t / ((1−q)^t σ^{2t})
        let term2 = tf * ln_q - tf * ln_1mq - 2.0 * tf * ln_sigma;

        // (2q)^t exp((t²−t)/(2σ²)) (σ^t (t−1)!! + t^t) / (2 (1−q)^{t−1} σ^{2t})
        let ln_inner = log_add_exp(tf * ln_sigma + ln_double_fact, tf * tf.ln());
        let term3 = tf * ln_2q + (tf * tf - tf) / (2.0 * sigma * sigma) + ln_inner
            - (2.0_f64).ln()
            - (tf - 1.0) * ln_1mq
            - 2.0 * tf * ln_sigma;

        total += term1.exp() + term2.exp() + term3.exp();
        if !total.is_finite() {
            return f64::INFINITY;
        }
    }
    total
}

/// RDP of the sampled Gaussian mechanism at an **integer** order `alpha >= 2`
/// (Mironov, Talwar & Zhang 2019, Eq. for integer α):
///
/// ```text
/// ε(α) = 1/(α−1) · log Σ_{k=0}^{α} C(α,k) (1−q)^{α−k} q^k exp(k(k−1)/(2σ²))
/// ```
///
/// This is the bound used by most production DP-SGD accountants; we expose
/// it for the composition ablation (Figure 6 discussion) alongside the
/// paper's Eq. (4).
pub fn rdp_sampled_gaussian(alpha: u32, q: f64, sigma: f64) -> f64 {
    assert!(alpha >= 2, "integer RDP order must be >= 2");
    assert!(q > 0.0 && q <= 1.0, "sampling probability must be in (0,1]");
    assert!(sigma > 0.0, "sigma must be positive");
    let a = alpha as u64;
    // log Σ_k exp( log C(α,k) + (α−k) log(1−q) + k log q + k(k−1)/(2σ²) )
    let mut log_terms = Vec::with_capacity(a as usize + 1);
    for k in 0..=a {
        let kf = k as f64;
        let log_binom = ln_binomial(a, k);
        let log_term = log_binom
            + (a - k) as f64 * (1.0 - q).max(f64::MIN_POSITIVE).ln()
            + kf * q.ln()
            + kf * (kf - 1.0) / (2.0 * sigma * sigma);
        log_terms.push(log_term);
    }
    let lse = log_sum_exp(&log_terms);
    lse / (alpha as f64 - 1.0)
}

/// RDP of the (non-subsampled) Gaussian mechanism with sensitivity `delta_f`
/// and noise standard deviation `sigma`: `ε(α) = α Δ² / (2σ²)`.
pub fn rdp_gaussian(alpha: f64, delta_f: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    alpha * delta_f * delta_f / (2.0 * sigma * sigma)
}

/// RDP of any pure `eps`-DP mechanism: `ε(α) ≤ 2αε²` (Lemma 1 in Mironov's
/// RDP paper, the form the P3GM paper uses for DP-PCA), capped at `eps`
/// because a pure-DP guarantee is itself an RDP guarantee at every order.
pub fn rdp_pure_dp(alpha: f64, eps: f64) -> f64 {
    assert!(eps >= 0.0, "epsilon must be non-negative");
    (2.0 * alpha * eps * eps).min(eps)
}

/// Converts a per-order moments bound `MA(α)` into the RDP order/epsilon
/// pair given by paper Theorem 3: the mechanism satisfies
/// `(α + 1, MA(α)/α)`-RDP.
///
/// Given a target RDP order `alpha` (so the moment order is `alpha - 1`),
/// returns `MA(alpha - 1) / (alpha - 1)`.
pub fn moments_to_rdp(ma_at_alpha_minus_one: f64, alpha: f64) -> f64 {
    assert!(alpha > 1.0, "RDP order must exceed 1");
    ma_at_alpha_minus_one / (alpha - 1.0)
}

/// Converts a total moments bound into (ε, δ)-DP via the moments-accountant
/// tail bound: `δ = exp(MA(λ) − λ ε)`, i.e. `ε = (MA(λ) + log(1/δ)) / λ`.
pub fn moments_to_eps(ma_total: f64, lambda: f64, delta: f64) -> f64 {
    assert!(lambda > 0.0, "lambda must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    (ma_total + (1.0 / delta).ln()) / lambda
}

/// Natural log of the double factorial `n!! = n (n−2)(n−4)…`.
fn ln_double_factorial(n: u64) -> f64 {
    let mut acc = 0.0;
    let mut k = n;
    while k > 1 {
        acc += (k as f64).ln();
        k -= 2;
    }
    acc
}

/// Natural log of the binomial coefficient `C(n, k)`.
fn ln_binomial(n: u64, k: u64) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` computed by direct summation (n is small here).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Numerically stable `log(exp(a) + exp(b))`.
fn log_add_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if !hi.is_finite() {
        return hi;
    }
    hi + (lo - hi).exp().ln_1p()
}

/// Numerically stable log-sum-exp.
fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + values.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_em_bound_matches_formula() {
        // K = 3 components, sigma_e = 2, alpha = 4:
        // (2*3+1)*(16+4)/(2*4) = 7*20/8 = 17.5
        assert!((ma_dp_em(4.0, 2.0, 3) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn dp_em_bound_scales_with_components_and_noise() {
        let base = ma_dp_em(4.0, 2.0, 3);
        assert!(ma_dp_em(4.0, 2.0, 6) > base);
        assert!(ma_dp_em(4.0, 4.0, 3) < base);
        assert!(ma_dp_em(8.0, 2.0, 3) > base);
    }

    #[test]
    #[should_panic(expected = "sigma_e must be positive")]
    fn dp_em_rejects_bad_sigma() {
        ma_dp_em(2.0, 0.0, 3);
    }

    #[test]
    fn dp_sgd_leading_term_dominates_for_small_q() {
        // For very small q and moderate sigma the higher-order terms are
        // negligible, so the bound is close to q²λ(λ−1)/((1−q)σ²).
        let q = 1e-4;
        let sigma = 4.0;
        let lambda = 8;
        let got = ma_dp_sgd(lambda, q, sigma);
        let leading = q * q * 8.0 * 7.0 / ((1.0 - q) * sigma * sigma);
        assert!(got >= leading);
        assert!(got < leading * 1.5, "got {got}, leading {leading}");
    }

    #[test]
    fn dp_sgd_monotone_in_q_and_sigma() {
        let a = ma_dp_sgd(8, 0.01, 4.0);
        let b = ma_dp_sgd(8, 0.02, 4.0);
        let c = ma_dp_sgd(8, 0.01, 8.0);
        assert!(b > a, "larger sampling rate must cost more");
        assert!(c < a, "larger noise must cost less");
    }

    #[test]
    fn dp_sgd_zero_order_is_zero() {
        assert_eq!(ma_dp_sgd(0, 0.01, 1.0), 0.0);
    }

    #[test]
    fn dp_sgd_saturates_instead_of_nan() {
        // Absurd order with tiny sigma: should be +inf, never NaN.
        let v = ma_dp_sgd(64, 0.5, 0.3);
        assert!(v.is_infinite() || v > 1e10);
        assert!(!v.is_nan());
    }

    #[test]
    #[should_panic(expected = "sampling probability")]
    fn dp_sgd_rejects_bad_q() {
        ma_dp_sgd(4, 1.5, 1.0);
    }

    #[test]
    fn sampled_gaussian_rdp_reduces_to_gaussian_at_q1() {
        // With q = 1 the mechanism is the plain Gaussian mechanism whose RDP
        // is α/(2σ²); the sampled bound at q=1 equals exp(α(α−1)/(2σ²)) terms
        // which reduces to (α−1)·... — check it is close to α/(2σ²)·... Here
        // we check against the known closed form: ε(α) = α/(2σ²) for q=1 is a
        // *lower* bound of the log-sum formula; the formula equals
        // 1/(α−1)·log exp(α(α−1)/(2σ²)) = α/(2σ²).
        let sigma = 2.0;
        let alpha = 8;
        let got = rdp_sampled_gaussian(alpha, 1.0, sigma);
        let expected = alpha as f64 / (2.0 * sigma * sigma);
        assert!((got - expected).abs() < 1e-9, "got {got}, want {expected}");
    }

    #[test]
    fn sampled_gaussian_rdp_much_smaller_for_small_q() {
        let full = rdp_sampled_gaussian(8, 1.0, 2.0);
        let sub = rdp_sampled_gaussian(8, 0.01, 2.0);
        assert!(sub < full / 10.0);
    }

    #[test]
    fn sampled_gaussian_tighter_than_paper_eq4() {
        // The Mironov-style bound should not exceed the Abadi expansion used
        // by the paper (both are upper bounds on the same quantity; the
        // integer-order sampled-Gaussian formula is the tighter of the two in
        // this regime).
        let q = 0.01;
        let sigma = 2.0;
        let alpha = 16u32;
        let eq4_rdp = moments_to_rdp(ma_dp_sgd(alpha - 1, q, sigma), alpha as f64);
        let sg_rdp = rdp_sampled_gaussian(alpha, q, sigma);
        assert!(
            sg_rdp <= eq4_rdp * 1.0001,
            "sampled-Gaussian {sg_rdp} vs Eq.4 {eq4_rdp}"
        );
    }

    #[test]
    fn pure_dp_rdp_is_capped() {
        // Small alpha: 2αε² may be below ε; large alpha: capped at ε.
        assert!((rdp_pure_dp(1.5, 0.1) - 2.0 * 1.5 * 0.01).abs() < 1e-12);
        assert_eq!(rdp_pure_dp(1e6, 0.1), 0.1);
    }

    #[test]
    fn gaussian_rdp_formula() {
        assert!((rdp_gaussian(4.0, 1.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn moments_conversions() {
        // Theorem 3 bridge.
        assert!((moments_to_rdp(3.0, 4.0) - 1.0).abs() < 1e-12);
        // MA tail bound: eps = (MA + ln(1/delta))/lambda.
        let eps = moments_to_eps(2.0, 10.0, 1e-5);
        assert!((eps - (2.0 + (1e5_f64).ln()) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn helper_functions() {
        // 5!! = 15, 6!! = 48.
        assert!((ln_double_factorial(5) - 15.0_f64.ln()).abs() < 1e-12);
        assert!((ln_double_factorial(6) - 48.0_f64.ln()).abs() < 1e-12);
        assert_eq!(ln_double_factorial(0), 0.0);
        assert_eq!(ln_double_factorial(1), 0.0);
        // C(5,2) = 10.
        assert!((ln_binomial(5, 2) - 10.0_f64.ln()).abs() < 1e-12);
        // log_sum_exp of identical values.
        assert!((log_sum_exp(&[0.0, 0.0]) - 2.0_f64.ln()).abs() < 1e-12);
    }
}
