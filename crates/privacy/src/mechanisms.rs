//! Differentially private mechanisms.
//!
//! * [`LaplaceMechanism`] / [`GaussianMechanism`] — classic output
//!   perturbation for scalar- and vector-valued queries.
//! * [`wishart_noise`] — the Wishart noise matrix of the DP-PCA mechanism
//!   (Jiang et al., used by the paper's Encoding Phase).
//! * [`exponential_mechanism`] — utility-based selection, used by the
//!   PrivBayes baseline to pick Bayesian-network edges.
//! * [`privatize_gradient_sum`] — the per-batch DP-SGD primitive: clip each
//!   per-example gradient to norm `C`, sum, add `N(0, σ²C²I)` noise and
//!   average (paper §II-D).

use crate::sampling;
use crate::{PrivacyError, Result};
use p3gm_linalg::{vector, Cholesky, Matrix};
use rand::Rng;

/// The Laplace mechanism for releasing vector-valued queries with a known
/// L1 sensitivity under pure ε-DP.
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMechanism {
    /// L1 sensitivity of the query.
    pub l1_sensitivity: f64,
    /// Privacy budget ε.
    pub epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates the mechanism; both parameters must be positive.
    pub fn new(l1_sensitivity: f64, epsilon: f64) -> Result<Self> {
        if l1_sensitivity <= 0.0 || epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!(
                    "Laplace mechanism requires positive sensitivity and epsilon, got {l1_sensitivity}, {epsilon}"
                ),
            });
        }
        Ok(LaplaceMechanism {
            l1_sensitivity,
            epsilon,
        })
    }

    /// The noise scale `b = Δ₁/ε`.
    pub fn scale(&self) -> f64 {
        self.l1_sensitivity / self.epsilon
    }

    /// Adds Laplace noise to a scalar.
    pub fn randomize<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        value + sampling::laplace(rng, self.scale())
    }

    /// Adds i.i.d. Laplace noise to each coordinate of a vector.
    pub fn randomize_vec<R: Rng + ?Sized>(&self, rng: &mut R, values: &[f64]) -> Vec<f64> {
        values
            .iter()
            .map(|&v| v + sampling::laplace(rng, self.scale()))
            .collect()
    }
}

/// The Gaussian mechanism for releasing vector-valued queries with a known
/// L2 sensitivity under (ε, δ)- or Rényi-DP.
#[derive(Debug, Clone, Copy)]
pub struct GaussianMechanism {
    /// L2 sensitivity of the query.
    pub l2_sensitivity: f64,
    /// Standard deviation of the added noise (already scaled by the
    /// sensitivity, i.e. the noise is `N(0, (σ·Δ₂)²)` per coordinate when
    /// constructed via [`GaussianMechanism::from_multiplier`]).
    pub std_dev: f64,
}

impl GaussianMechanism {
    /// Creates a mechanism adding `N(0, std_dev²)` noise per coordinate.
    pub fn new(l2_sensitivity: f64, std_dev: f64) -> Result<Self> {
        if l2_sensitivity <= 0.0 || std_dev <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!(
                    "Gaussian mechanism requires positive sensitivity and std-dev, got {l2_sensitivity}, {std_dev}"
                ),
            });
        }
        Ok(GaussianMechanism {
            l2_sensitivity,
            std_dev,
        })
    }

    /// Creates a mechanism from a noise *multiplier* σ, i.e. the added noise
    /// has standard deviation `σ · Δ₂` (the DP-SGD convention).
    pub fn from_multiplier(l2_sensitivity: f64, multiplier: f64) -> Result<Self> {
        Self::new(l2_sensitivity, multiplier * l2_sensitivity)
    }

    /// Adds Gaussian noise to a scalar.
    pub fn randomize<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        value + sampling::normal(rng, 0.0, self.std_dev)
    }

    /// Adds i.i.d. Gaussian noise to each coordinate of a vector.
    pub fn randomize_vec<R: Rng + ?Sized>(&self, rng: &mut R, values: &[f64]) -> Vec<f64> {
        values
            .iter()
            .map(|&v| v + sampling::normal(rng, 0.0, self.std_dev))
            .collect()
    }

    /// Adds i.i.d. Gaussian noise to every entry of a matrix, then
    /// symmetrizes it (the DP-EM covariance update perturbs a symmetric
    /// matrix, and re-symmetrizing is a post-processing step).
    pub fn randomize_symmetric_matrix<R: Rng + ?Sized>(&self, rng: &mut R, m: &Matrix) -> Matrix {
        let mut out = m.clone();
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                let v = out.get(i, j) + sampling::normal(rng, 0.0, self.std_dev);
                out.set(i, j, v);
            }
        }
        if out.rows() == out.cols() {
            out.symmetrize();
        }
        out
    }
}

/// Convenience wrapper: adds `N(0, σ²)` noise to each coordinate.
pub fn gaussian_mechanism_vec<R: Rng + ?Sized>(
    rng: &mut R,
    values: &[f64],
    std_dev: f64,
) -> Vec<f64> {
    values
        .iter()
        .map(|&v| v + sampling::normal(rng, 0.0, std_dev))
        .collect()
}

/// Convenience wrapper: adds Laplace(0, scale) noise to each coordinate.
pub fn laplace_mechanism_vec<R: Rng + ?Sized>(rng: &mut R, values: &[f64], scale: f64) -> Vec<f64> {
    values
        .iter()
        .map(|&v| v + sampling::laplace(rng, scale))
        .collect()
}

/// Samples the Wishart noise matrix of the DP-PCA mechanism (Jiang et al.,
/// paper §II-D): `W ~ W_d(d + 1, C)` where `C` has `d` equal eigenvalues
/// `3/(2 n ε)`.
///
/// `dim` is the data dimensionality `d`, `n` the number of records and
/// `epsilon` the DP-PCA budget ε_p. The returned matrix is added to the
/// (sensitivity-1-normalized) covariance to give an (ε_p, 0)-DP release.
pub fn wishart_noise<R: Rng + ?Sized>(
    rng: &mut R,
    dim: usize,
    n: usize,
    epsilon: f64,
) -> Result<Matrix> {
    if dim == 0 || n == 0 {
        return Err(PrivacyError::InvalidParameter {
            msg: "wishart_noise requires positive dimension and sample count".to_string(),
        });
    }
    if epsilon <= 0.0 {
        return Err(PrivacyError::InvalidParameter {
            msg: format!("epsilon must be positive, got {epsilon}"),
        });
    }
    let eigenvalue = 3.0 / (2.0 * n as f64 * epsilon);
    let scale = Matrix::identity(dim).scale(eigenvalue);
    let chol = Cholesky::new(&scale).map_err(|e| PrivacyError::InvalidParameter {
        msg: format!("failed to factor Wishart scale matrix: {e}"),
    })?;
    Ok(sampling::wishart(rng, dim + 1, &chol))
}

/// The exponential mechanism: selects an index in `0..utilities.len()` with
/// probability proportional to `exp(ε · u_i / (2 Δu))`.
///
/// Used by the PrivBayes baseline to choose attribute-parent pairs by
/// (noisy) mutual information.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    utilities: &[f64],
    sensitivity: f64,
    epsilon: f64,
) -> Result<usize> {
    if utilities.is_empty() {
        return Err(PrivacyError::InvalidParameter {
            msg: "exponential mechanism needs at least one candidate".to_string(),
        });
    }
    if sensitivity <= 0.0 || epsilon <= 0.0 {
        return Err(PrivacyError::InvalidParameter {
            msg: format!(
                "exponential mechanism requires positive sensitivity and epsilon, got {sensitivity}, {epsilon}"
            ),
        });
    }
    // Work in log-space and subtract the max for numerical stability.
    let scores: Vec<f64> = utilities
        .iter()
        .map(|&u| epsilon * u / (2.0 * sensitivity))
        .collect();
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    Ok(sampling::categorical(rng, &weights))
}

/// Clips every row of a per-example gradient batch (`B x P`, one gradient
/// per row) to L2 norm at most `clip_norm` and sums the clipped rows.
///
/// Row chunks are clipped and summed in parallel; the per-chunk partial
/// sums are folded in chunk order, so the result is bit-identical for every
/// thread count. This is the noise-free core of DP-SGD's `ψ_C` aggregation,
/// exposed separately so benchmarks and determinism tests can exercise it
/// without consuming randomness.
pub fn clip_and_sum_gradients(per_example: &Matrix, clip_norm: f64) -> Vec<f64> {
    clip_and_sum_gradients_counted(per_example, clip_norm).0
}

/// Like [`clip_and_sum_gradients`], additionally returning how many rows
/// were actually clipped (norm strictly above `clip_norm`).
///
/// The count is a deterministic function of the batch (clipping is decided
/// per row, counts fold in chunk order with the partial sums), so it is
/// identical for every thread count. It exists purely as telemetry — the
/// clipped-gradient fraction surfaced in `TrainReport` — and is computed in
/// the same fused pass, never fed back into the mechanism.
pub fn clip_and_sum_gradients_counted(per_example: &Matrix, clip_norm: f64) -> (Vec<f64>, u64) {
    let dim = per_example.cols();
    let chunk_len = p3gm_parallel::default_chunk_len(per_example.rows());
    p3gm_parallel::par_map_reduce(
        per_example.rows(),
        chunk_len,
        |range| {
            // Fused clip-and-accumulate: the squared norm comes from the
            // lane-folded kernel (4 fixed-order partial accumulators, see
            // `vector::dot_lanes`), then the row is scaled directly into
            // the partial sum — no per-row scratch copy.
            let mut partial = vec![0.0; dim];
            let mut clipped = 0u64;
            for i in range {
                let row = per_example.row(i);
                let norm = vector::norm2_squared_lanes(row).sqrt();
                let factor = if norm > clip_norm && norm > 0.0 {
                    clipped += 1;
                    clip_norm / norm
                } else {
                    1.0
                };
                vector::axpy(factor, row, &mut partial);
            }
            (partial, clipped)
        },
        |(mut a, ca), (b, cb)| {
            vector::axpy(1.0, &b, &mut a);
            (a, ca + cb)
        },
    )
    .unwrap_or_else(|| (vec![0.0; dim], 0))
}

/// Privatizes a batch of per-example gradients as in DP-SGD (paper §II-D):
///
/// 1. clip each gradient (row of the `B x P` batch) to L2 norm at most
///    `clip_norm` (ψ_C),
/// 2. sum the clipped gradients ([`clip_and_sum_gradients`], parallel and
///    deterministic),
/// 3. add `N(0, (σ C)² I)` noise to the sum,
/// 4. divide by the *lot size* `batch_size`.
///
/// Returns the privatized average gradient. `batch_size` may exceed
/// `per_example.rows()` (Poisson-style sampling can produce small lots); it
/// must be positive.
pub fn privatize_gradient_sum<R: Rng + ?Sized>(
    rng: &mut R,
    per_example: &Matrix,
    clip_norm: f64,
    noise_multiplier: f64,
    batch_size: usize,
) -> Result<Vec<f64>> {
    privatize_gradient_sum_counted(rng, per_example, clip_norm, noise_multiplier, batch_size)
        .map(|(gradient, _)| gradient)
}

/// Like [`privatize_gradient_sum`], additionally returning the number of
/// clipped rows (see [`clip_and_sum_gradients_counted`]). The count is
/// telemetry only: it is derived from the same pass, consumes no extra
/// randomness, and never alters the privatized gradient.
pub fn privatize_gradient_sum_counted<R: Rng + ?Sized>(
    rng: &mut R,
    per_example: &Matrix,
    clip_norm: f64,
    noise_multiplier: f64,
    batch_size: usize,
) -> Result<(Vec<f64>, u64)> {
    if per_example.rows() == 0 || per_example.cols() == 0 {
        return Err(PrivacyError::InvalidParameter {
            msg: "privatize_gradient_sum needs at least one non-empty gradient".to_string(),
        });
    }
    if clip_norm <= 0.0 || noise_multiplier < 0.0 || batch_size == 0 {
        return Err(PrivacyError::InvalidParameter {
            msg: format!(
                "invalid DP-SGD parameters: clip_norm={clip_norm}, noise_multiplier={noise_multiplier}, batch_size={batch_size}"
            ),
        });
    }

    let (mut sum, clipped) = clip_and_sum_gradients_counted(per_example, clip_norm);
    let noise_std = noise_multiplier * clip_norm;
    if noise_std > 0.0 {
        for s in &mut sum {
            *s += sampling::normal(rng, 0.0, noise_std);
        }
    }
    let inv_b = 1.0 / batch_size as f64;
    vector::scale(inv_b, &mut sum);
    Ok((sum, clipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn laplace_mechanism_noise_scale() {
        let mech = LaplaceMechanism::new(2.0, 0.5).unwrap();
        assert!((mech.scale() - 4.0).abs() < 1e-12);
        let mut r = rng();
        let n = 30_000;
        let vals: Vec<f64> = (0..n).map(|_| mech.randomize(&mut r, 10.0)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15);
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((var - 2.0 * 16.0).abs() < 3.0, "var {var}");
        assert_eq!(mech.randomize_vec(&mut r, &[1.0, 2.0]).len(), 2);
    }

    #[test]
    fn gaussian_mechanism_noise_scale() {
        let mech = GaussianMechanism::from_multiplier(2.0, 1.5).unwrap();
        assert!((mech.std_dev - 3.0).abs() < 1e-12);
        let mut r = rng();
        let n = 30_000;
        let vals: Vec<f64> = (0..n).map(|_| mech.randomize(&mut r, 0.0)).collect();
        let var = vals.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!((var - 9.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn gaussian_symmetric_matrix_stays_symmetric() {
        let mech = GaussianMechanism::new(1.0, 0.5).unwrap();
        let mut r = rng();
        let m = Matrix::identity(4);
        let noisy = mech.randomize_symmetric_matrix(&mut r, &m);
        for i in 0..4 {
            for j in 0..4 {
                assert!((noisy.get(i, j) - noisy.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mechanism_constructors_validate() {
        assert!(LaplaceMechanism::new(0.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(1.0, 0.0).is_err());
        assert!(GaussianMechanism::new(1.0, 0.0).is_err());
        assert!(GaussianMechanism::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn wishart_noise_shape_and_scale() {
        let mut r = rng();
        let dim = 3;
        let n = 100;
        let eps = 0.5;
        let trials = 2000;
        let mut acc = Matrix::zeros(dim, dim);
        for _ in 0..trials {
            acc = acc
                .add(&wishart_noise(&mut r, dim, n, eps).unwrap())
                .unwrap();
        }
        let mean = acc.scale(1.0 / trials as f64);
        // E[W] = df * C = (d+1) * 3/(2 n ε) I = 4 * 0.03 I = 0.12 I.
        let expected = (dim as f64 + 1.0) * 3.0 / (2.0 * n as f64 * eps);
        for i in 0..dim {
            assert!(
                (mean.get(i, i) - expected).abs() < expected * 0.25,
                "diag {} vs {expected}",
                mean.get(i, i)
            );
        }
        assert!(wishart_noise(&mut r, 0, 10, 1.0).is_err());
        assert!(wishart_noise(&mut r, 3, 0, 1.0).is_err());
        assert!(wishart_noise(&mut r, 3, 10, 0.0).is_err());
    }

    #[test]
    fn exponential_mechanism_prefers_high_utility() {
        let mut r = rng();
        let utilities = [0.0, 0.0, 5.0];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[exponential_mechanism(&mut r, &utilities, 1.0, 2.0).unwrap()] += 1;
        }
        assert!(counts[2] > 4000, "counts {counts:?}");
        // With a tiny epsilon the choice is near-uniform.
        let mut uniform_counts = [0usize; 3];
        for _ in 0..6000 {
            uniform_counts[exponential_mechanism(&mut r, &utilities, 1.0, 1e-6).unwrap()] += 1;
        }
        assert!(
            uniform_counts.iter().all(|&c| c > 1500),
            "{uniform_counts:?}"
        );
    }

    #[test]
    fn exponential_mechanism_validates() {
        let mut r = rng();
        assert!(exponential_mechanism(&mut r, &[], 1.0, 1.0).is_err());
        assert!(exponential_mechanism(&mut r, &[1.0], 0.0, 1.0).is_err());
        assert!(exponential_mechanism(&mut r, &[1.0], 1.0, 0.0).is_err());
    }

    #[test]
    fn privatize_gradient_sum_no_noise_is_clipped_average() {
        let mut r = rng();
        let grads = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.3, 0.4]]).unwrap();
        // clip_norm = 1: first gradient has norm 5 → scaled to (0.6, 0.8);
        // second has norm 0.5 → unchanged. Sum = (0.9, 1.2); / B=2 → (0.45, 0.6).
        let out = privatize_gradient_sum(&mut r, &grads, 1.0, 0.0, 2).unwrap();
        assert!((out[0] - 0.45).abs() < 1e-12);
        assert!((out[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn privatize_gradient_sum_noise_has_expected_scale() {
        let mut r = rng();
        let grads = Matrix::zeros(8, 4);
        let clip = 2.0;
        let sigma = 1.5;
        let b = 8;
        let trials = 4000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let out = privatize_gradient_sum(&mut r, &grads, clip, sigma, b).unwrap();
            acc += out.iter().map(|x| x * x).sum::<f64>() / out.len() as f64;
        }
        let var = acc / trials as f64;
        // Per coordinate: N(0, (σC)²)/B → variance (σC/B)².
        let expected = (sigma * clip / b as f64).powi(2);
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn privatize_gradient_sum_validates() {
        let mut r = rng();
        let one = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(privatize_gradient_sum(&mut r, &Matrix::zeros(0, 1), 1.0, 1.0, 1).is_err());
        assert!(privatize_gradient_sum(&mut r, &one, 0.0, 1.0, 1).is_err());
        assert!(privatize_gradient_sum(&mut r, &one, 1.0, -1.0, 1).is_err());
        assert!(privatize_gradient_sum(&mut r, &one, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn clip_and_sum_is_bit_identical_across_thread_counts() {
        let grads = Matrix::from_fn(150, 37, |i, j| ((i * 13 + j * 7) % 23) as f64 * 0.11 - 1.2);
        let reference = p3gm_parallel::with_threads(1, || clip_and_sum_gradients(&grads, 0.9));
        for threads in [2, 4, 8] {
            let sum = p3gm_parallel::with_threads(threads, || clip_and_sum_gradients(&grads, 0.9));
            assert_eq!(sum, reference);
        }
    }
}
