//! # p3gm-privacy
//!
//! Differential-privacy mechanisms and privacy accounting for the P3GM
//! reproduction.
//!
//! The P3GM pipeline (paper §IV) consumes privacy budget in three places —
//! DP-PCA (Wishart mechanism), DP-EM (Gaussian mechanism inside the M-step)
//! and DP-SGD (noisy clipped gradients) — and composes them with Rényi
//! differential privacy (Theorem 4).  This crate provides:
//!
//! * [`sampling`] — deterministic-seedable samplers for the Gaussian,
//!   Laplace and Wishart distributions used by every mechanism (implemented
//!   in-repo so the workspace depends only on `rand`).
//! * [`mechanisms`] — the Laplace, Gaussian, Wishart and exponential
//!   mechanisms plus the DP-SGD gradient-privatization primitive.
//! * [`moments`] — the moments-accountant bounds from the paper:
//!   Eq. (3) for DP-EM and Eq. (4) for DP-SGD, plus the tighter
//!   sampled-Gaussian RDP bound used as an ablation.
//! * [`rdp`] — an RDP accountant over a grid of orders α implementing
//!   Theorem 4, with conversion to (ε, δ)-DP (Theorem 2).
//! * [`zcdp`] — zero-concentrated DP accounting used as the composition
//!   baseline in Figure 6.
//! * [`calibrate`] — noise calibration: given a target (ε, δ) and the fixed
//!   components of the pipeline, find the DP-SGD noise multiplier σ_s (and
//!   the DP-EM σ_e) by bisection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod mechanisms;
pub mod moments;
pub mod rdp;
pub mod sampling;
pub mod zcdp;

pub use calibrate::{calibrate_dpsgd_sigma, calibrate_gaussian_sigma, BudgetSplit};
pub use mechanisms::{
    clip_and_sum_gradients, clip_and_sum_gradients_counted, exponential_mechanism,
    gaussian_mechanism_vec, laplace_mechanism_vec, privatize_gradient_sum,
    privatize_gradient_sum_counted, wishart_noise, GaussianMechanism, LaplaceMechanism,
};
pub use rdp::{PrivacySpec, RdpAccountant, DEFAULT_ORDERS};
pub use zcdp::ZcdpAccountant;

/// Errors produced by privacy accounting and mechanism construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyError {
    /// A parameter was outside its valid range (e.g. non-positive noise).
    InvalidParameter {
        /// Description of the offending parameter.
        msg: String,
    },
    /// Noise calibration failed to bracket or converge to the target ε.
    CalibrationFailed {
        /// Description of the failure.
        msg: String,
    },
}

impl std::fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrivacyError::InvalidParameter { msg } => write!(f, "invalid parameter: {msg}"),
            PrivacyError::CalibrationFailed { msg } => write!(f, "calibration failed: {msg}"),
        }
    }
}

impl std::error::Error for PrivacyError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, PrivacyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = PrivacyError::InvalidParameter {
            msg: "sigma must be positive".into(),
        };
        assert!(e.to_string().contains("sigma"));
        let e = PrivacyError::CalibrationFailed {
            msg: "no root".into(),
        };
        assert!(e.to_string().contains("no root"));
    }
}
