//! Zero-concentrated differential privacy (zCDP) accounting.
//!
//! The paper's Figure 6 compares its RDP-based composition against the
//! "baseline" composition that uses zCDP for DP-EM (as proposed in the DP-EM
//! paper) and the moments accountant for DP-SGD, then combines the resulting
//! (ε, δ) guarantees by simple sequential composition.  This module provides
//! the zCDP half of that baseline plus a general-purpose zCDP accountant.
//!
//! Facts used (Bun & Steinke 2016):
//! * The Gaussian mechanism with sensitivity Δ and noise σ satisfies
//!   `ρ = Δ²/(2σ²)`-zCDP.
//! * zCDP composes additively in ρ.
//! * `ρ`-zCDP implies `(ρ + 2 √(ρ log(1/δ)), δ)`-DP for every δ > 0.
//! * A pure `ε`-DP mechanism satisfies `(ε²/2)`-zCDP.

use crate::{PrivacyError, Result};

/// Accumulates zCDP budget ρ across sequentially-composed mechanisms.
#[derive(Debug, Clone, Default)]
pub struct ZcdpAccountant {
    rho: f64,
}

impl ZcdpAccountant {
    /// Creates an empty accountant (ρ = 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated zCDP parameter ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Adds a mechanism with a known zCDP parameter.
    pub fn add_rho(&mut self, rho: f64) -> Result<&mut Self> {
        if rho < 0.0 || !rho.is_finite() {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("rho must be a non-negative finite number, got {rho}"),
            });
        }
        self.rho += rho;
        Ok(self)
    }

    /// Adds one Gaussian-mechanism release with L2 sensitivity `delta_f` and
    /// noise standard deviation `sigma`: `ρ = Δ²/(2σ²)`.
    pub fn add_gaussian(&mut self, delta_f: f64, sigma: f64) -> Result<&mut Self> {
        if sigma <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("sigma must be positive, got {sigma}"),
            });
        }
        self.add_rho(delta_f * delta_f / (2.0 * sigma * sigma))
    }

    /// Adds a pure `eps`-DP mechanism: `ρ = ε²/2`.
    pub fn add_pure_dp(&mut self, eps: f64) -> Result<&mut Self> {
        if eps < 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("epsilon must be non-negative, got {eps}"),
            });
        }
        self.add_rho(eps * eps / 2.0)
    }

    /// Adds `steps` iterations of DP-EM with `n_components` mixture
    /// components and noise scale `sigma_e`.
    ///
    /// Each M-step releases `2K + 1` sensitivity-1 quantities perturbed with
    /// `N(0, σ_e²)` noise, so one step costs `ρ = (2K + 1)/(2σ_e²)` — the
    /// zCDP analogue of paper Eq. (3).
    pub fn add_dp_em(
        &mut self,
        steps: usize,
        sigma_e: f64,
        n_components: usize,
    ) -> Result<&mut Self> {
        if sigma_e <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("sigma_e must be positive, got {sigma_e}"),
            });
        }
        if n_components == 0 {
            return Err(PrivacyError::InvalidParameter {
                msg: "n_components must be positive".to_string(),
            });
        }
        let k = n_components as f64;
        let per_step = (2.0 * k + 1.0) / (2.0 * sigma_e * sigma_e);
        self.add_rho(steps as f64 * per_step)
    }

    /// Converts the accumulated ρ to an (ε, δ)-DP guarantee:
    /// `ε = ρ + 2 √(ρ log(1/δ))`.
    pub fn to_dp(&self, delta: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&delta) || delta == 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("delta must be in (0,1), got {delta}"),
            });
        }
        Ok(self.rho + 2.0 * (self.rho * (1.0 / delta).ln()).sqrt())
    }
}

/// The "baseline" composition used in Figure 6: account DP-EM with zCDP,
/// DP-SGD with the plain moments accountant, DP-PCA as pure DP, and combine
/// the three resulting ε values by sequential composition (with the same δ
/// charged once — the most favourable reading of the baseline).
///
/// Returns the total ε.
#[allow(clippy::too_many_arguments)]
pub fn baseline_composition_epsilon(
    eps_p: f64,
    t_e: usize,
    sigma_e: f64,
    k: usize,
    t_s: usize,
    q: f64,
    sigma_s: f64,
    delta: f64,
) -> Result<f64> {
    // zCDP part for DP-EM.
    let mut z = ZcdpAccountant::new();
    if t_e > 0 {
        z.add_dp_em(t_e, sigma_e, k)?;
    }
    let eps_em = if t_e > 0 { z.to_dp(delta)? } else { 0.0 };

    // Moments accountant for DP-SGD: minimize over integer lambda.
    let eps_sgd = if t_s > 0 {
        if !(0.0..1.0).contains(&q) || q == 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("sampling probability must be in (0,1), got {q}"),
            });
        }
        if sigma_s <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("sigma_s must be positive, got {sigma_s}"),
            });
        }
        let mut best = f64::INFINITY;
        for lambda in 1..=64u32 {
            let ma = t_s as f64 * crate::moments::ma_dp_sgd(lambda, q, sigma_s);
            if !ma.is_finite() {
                continue;
            }
            let eps = crate::moments::moments_to_eps(ma, f64::from(lambda), delta);
            if eps < best {
                best = eps;
            }
        }
        best
    } else {
        0.0
    };

    Ok(eps_p + eps_em + eps_sgd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdp::RdpAccountant;

    const DELTA: f64 = 1e-5;

    #[test]
    fn gaussian_rho_formula() {
        let mut z = ZcdpAccountant::new();
        z.add_gaussian(1.0, 2.0).unwrap();
        assert!((z.rho() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn composition_is_additive() {
        let mut z = ZcdpAccountant::new();
        z.add_gaussian(1.0, 2.0).unwrap();
        z.add_gaussian(1.0, 2.0).unwrap();
        assert!((z.rho() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pure_dp_conversion() {
        let mut z = ZcdpAccountant::new();
        z.add_pure_dp(1.0).unwrap();
        assert!((z.rho() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dp_em_rho_matches_formula() {
        let mut z = ZcdpAccountant::new();
        z.add_dp_em(10, 4.0, 3).unwrap();
        // per step: (2*3+1)/(2*16) = 7/32; 10 steps = 70/32.
        assert!((z.rho() - 70.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn to_dp_formula() {
        let mut z = ZcdpAccountant::new();
        z.add_rho(0.1).unwrap();
        let eps = z.to_dp(DELTA).unwrap();
        let expected = 0.1 + 2.0 * (0.1_f64 * (1e5_f64).ln()).sqrt();
        assert!((eps - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_accountant_is_free() {
        let z = ZcdpAccountant::new();
        assert_eq!(z.to_dp(DELTA).unwrap(), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut z = ZcdpAccountant::new();
        assert!(z.add_rho(-1.0).is_err());
        assert!(z.add_rho(f64::INFINITY).is_err());
        assert!(z.add_gaussian(1.0, 0.0).is_err());
        assert!(z.add_pure_dp(-0.1).is_err());
        assert!(z.add_dp_em(5, 0.0, 3).is_err());
        assert!(z.add_dp_em(5, 1.0, 0).is_err());
        assert!(z.to_dp(0.0).is_err());
        assert!(baseline_composition_epsilon(0.1, 0, 1.0, 1, 10, 2.0, 1.0, DELTA).is_err());
        assert!(baseline_composition_epsilon(0.1, 0, 1.0, 1, 10, 0.1, 0.0, DELTA).is_err());
    }

    #[test]
    fn rdp_composition_is_tighter_than_baseline() {
        // This is exactly the claim of Figure 6: for the same P3GM schedule,
        // the RDP composition yields a smaller total epsilon than
        // zCDP(DP-EM) + MA(DP-SGD) + eps_p composed sequentially.
        let eps_p = 0.1;
        let (t_e, sigma_e, k) = (20, 20.0, 3);
        let (t_s, q) = (1000, 0.01);
        for &sigma_s in &[1.0, 2.0, 4.0, 8.0] {
            let baseline =
                baseline_composition_epsilon(eps_p, t_e, sigma_e, k, t_s, q, sigma_s, DELTA)
                    .unwrap();
            let rdp = RdpAccountant::p3gm_total(eps_p, t_e, sigma_e, k, t_s, q, sigma_s, DELTA)
                .unwrap()
                .epsilon;
            assert!(
                rdp < baseline,
                "sigma_s={sigma_s}: RDP {rdp} should beat baseline {baseline}"
            );
        }
    }

    #[test]
    fn baseline_decreases_with_noise() {
        let lo = baseline_composition_epsilon(0.1, 20, 20.0, 3, 500, 0.01, 1.0, DELTA).unwrap();
        let hi = baseline_composition_epsilon(0.1, 20, 20.0, 3, 500, 0.01, 8.0, DELTA).unwrap();
        assert!(hi < lo);
    }
}
