//! Noise calibration: finding the noise level that achieves a target ε.
//!
//! The paper's experiments fix the *total* privacy budget (e.g. (1, 1e-5)-DP)
//! and split it between DP-PCA (ε_p = 0.1), DP-EM (σ_e "set so that ε = 1
//! holds") and DP-SGD (σ_s from Table IV).  To reproduce arbitrary points of
//! Figure 4 we need the inverse problem — given a target ε, find σ — which
//! this module solves by bisection against the RDP accountant.

use crate::rdp::RdpAccountant;
use crate::{PrivacyError, Result};

/// How the total privacy budget is split across P3GM's three components.
///
/// The fractions describe the *target ε* attributed to each stage before
/// joint RDP accounting; they must sum to 1. The defaults mirror the paper's
/// setup: a small fixed ε_p for DP-PCA and the remainder split between DP-EM
/// and DP-SGD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSplit {
    /// Fraction of ε given to DP-PCA.
    pub pca_fraction: f64,
    /// Fraction of ε given to DP-EM.
    pub em_fraction: f64,
    /// Fraction of ε given to DP-SGD.
    pub sgd_fraction: f64,
}

impl Default for BudgetSplit {
    fn default() -> Self {
        // Paper: eps_p = 0.1 out of eps = 1.0; the rest is dominated by
        // DP-SGD with a modest DP-EM share.
        BudgetSplit {
            pca_fraction: 0.1,
            em_fraction: 0.2,
            sgd_fraction: 0.7,
        }
    }
}

impl BudgetSplit {
    /// Validates that the fractions are positive and sum to 1 (±1e-9).
    pub fn validate(&self) -> Result<()> {
        let sum = self.pca_fraction + self.em_fraction + self.sgd_fraction;
        if self.pca_fraction < 0.0
            || self.em_fraction < 0.0
            || self.sgd_fraction <= 0.0
            || (sum - 1.0).abs() > 1e-9
        {
            return Err(PrivacyError::InvalidParameter {
                msg: format!(
                    "budget fractions must be non-negative and sum to 1, got {self:?} (sum {sum})"
                ),
            });
        }
        Ok(())
    }
}

/// Calibrates the noise standard deviation of a plain Gaussian mechanism
/// (sensitivity `delta_f`, composed `steps` times) so the (ε, δ)-DP cost,
/// accounted with RDP, is at most `target_eps`.
///
/// Returns the smallest σ found by bisection (relative tolerance 1e-4).
pub fn calibrate_gaussian_sigma(
    target_eps: f64,
    delta: f64,
    delta_f: f64,
    steps: usize,
) -> Result<f64> {
    if target_eps <= 0.0 {
        return Err(PrivacyError::InvalidParameter {
            msg: format!("target epsilon must be positive, got {target_eps}"),
        });
    }
    let eps_of = |sigma: f64| -> Result<f64> {
        let mut acc = RdpAccountant::default();
        for _ in 0..steps.max(1) {
            acc.add_gaussian(delta_f, sigma)?;
        }
        Ok(acc.to_dp(delta)?.epsilon)
    };
    bisect_sigma(target_eps, eps_of)
}

/// Calibrates the DP-SGD noise multiplier σ_s so that the *whole* P3GM
/// pipeline — DP-PCA at `eps_p`, `t_e` DP-EM steps at `sigma_e` with `k`
/// components, and `t_s` DP-SGD steps at sampling rate `q` — satisfies
/// (`target_eps`, `delta`)-DP under the paper's Theorem 4 accounting.
///
/// Returns the smallest noise multiplier found by bisection. Errors if even
/// an enormous σ_s cannot reach the target (i.e. the fixed components alone
/// already exceed the budget).
#[allow(clippy::too_many_arguments)]
pub fn calibrate_dpsgd_sigma(
    target_eps: f64,
    delta: f64,
    eps_p: f64,
    t_e: usize,
    sigma_e: f64,
    k: usize,
    t_s: usize,
    q: f64,
) -> Result<f64> {
    if target_eps <= 0.0 {
        return Err(PrivacyError::InvalidParameter {
            msg: format!("target epsilon must be positive, got {target_eps}"),
        });
    }
    if t_s == 0 {
        return Err(PrivacyError::InvalidParameter {
            msg: "calibration requires at least one DP-SGD step".to_string(),
        });
    }
    let eps_of = |sigma: f64| -> Result<f64> {
        Ok(RdpAccountant::p3gm_total(eps_p, t_e, sigma_e, k, t_s, q, sigma, delta)?.epsilon)
    };
    bisect_sigma(target_eps, eps_of)
}

/// Calibrates the DP-EM noise scale σ_e so that `t_e` DP-EM iterations with
/// `k` components cost at most `target_eps` on their own (RDP-accounted).
pub fn calibrate_dpem_sigma(target_eps: f64, delta: f64, t_e: usize, k: usize) -> Result<f64> {
    if target_eps <= 0.0 || t_e == 0 || k == 0 {
        return Err(PrivacyError::InvalidParameter {
            msg: format!(
                "invalid DP-EM calibration parameters: eps={target_eps}, t_e={t_e}, k={k}"
            ),
        });
    }
    let eps_of = |sigma: f64| -> Result<f64> {
        let mut acc = RdpAccountant::default();
        acc.add_dp_em(t_e, sigma, k)?;
        Ok(acc.to_dp(delta)?.epsilon)
    };
    bisect_sigma(target_eps, eps_of)
}

/// Bisection on a monotone-decreasing ε(σ) curve.
fn bisect_sigma(target_eps: f64, eps_of: impl Fn(f64) -> Result<f64>) -> Result<f64> {
    let mut lo = 1e-2;
    let mut hi = 1e-2;
    // Grow `hi` until the budget is met (or give up).
    let mut met = false;
    for _ in 0..40 {
        if eps_of(hi)? <= target_eps {
            met = true;
            break;
        }
        hi *= 2.0;
    }
    if !met {
        return Err(PrivacyError::CalibrationFailed {
            msg: format!(
                "even sigma = {hi:.3e} does not reach epsilon = {target_eps}; the fixed \
                 components alone exceed the budget"
            ),
        });
    }
    // If the smallest sigma already satisfies the budget, return it.
    if eps_of(lo)? <= target_eps {
        return Ok(lo);
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if eps_of(mid)? <= target_eps {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) / hi < 1e-4 {
            break;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DELTA: f64 = 1e-5;

    #[test]
    fn gaussian_calibration_round_trips() {
        let sigma = calibrate_gaussian_sigma(1.0, DELTA, 1.0, 1).unwrap();
        let mut acc = RdpAccountant::default();
        acc.add_gaussian(1.0, sigma).unwrap();
        let eps = acc.to_dp(DELTA).unwrap().epsilon;
        assert!(eps <= 1.0 + 1e-6);
        assert!(eps > 0.9, "calibration should be tight, got {eps}");
        // The classic analytic-Gaussian ballpark for (1, 1e-5) is sigma ≈ 3–5.
        assert!(sigma > 2.0 && sigma < 6.0, "sigma {sigma}");
    }

    #[test]
    fn gaussian_calibration_more_steps_needs_more_noise() {
        let one = calibrate_gaussian_sigma(1.0, DELTA, 1.0, 1).unwrap();
        let ten = calibrate_gaussian_sigma(1.0, DELTA, 1.0, 10).unwrap();
        assert!(ten > one);
    }

    #[test]
    fn dpsgd_calibration_round_trips() {
        let (eps_p, t_e, sigma_e, k) = (0.1, 20, 300.0, 3);
        let (t_s, q) = (500, 0.02);
        let sigma = calibrate_dpsgd_sigma(1.0, DELTA, eps_p, t_e, sigma_e, k, t_s, q).unwrap();
        let eps = RdpAccountant::p3gm_total(eps_p, t_e, sigma_e, k, t_s, q, sigma, DELTA)
            .unwrap()
            .epsilon;
        assert!(eps <= 1.0 + 1e-6, "eps {eps}");
        assert!(eps > 0.85, "calibration too loose: {eps}");
    }

    #[test]
    fn dpsgd_calibration_larger_budget_needs_less_noise() {
        let tight = calibrate_dpsgd_sigma(0.5, DELTA, 0.05, 10, 300.0, 3, 300, 0.02).unwrap();
        let loose = calibrate_dpsgd_sigma(4.0, DELTA, 0.05, 10, 300.0, 3, 300, 0.02).unwrap();
        assert!(loose < tight);
    }

    #[test]
    fn dpsgd_calibration_fails_when_fixed_parts_exceed_budget() {
        // DP-PCA alone at eps_p = 2 cannot fit in a total budget of 0.5.
        let res = calibrate_dpsgd_sigma(0.5, DELTA, 2.0, 0, 1.0, 1, 100, 0.02);
        assert!(matches!(res, Err(PrivacyError::CalibrationFailed { .. })));
    }

    #[test]
    fn dpem_calibration_round_trips() {
        let sigma_e = calibrate_dpem_sigma(0.3, DELTA, 20, 3).unwrap();
        let mut acc = RdpAccountant::default();
        acc.add_dp_em(20, sigma_e, 3).unwrap();
        let eps = acc.to_dp(DELTA).unwrap().epsilon;
        assert!(eps <= 0.3 + 1e-6);
        assert!(eps > 0.25);
    }

    #[test]
    fn invalid_targets_rejected() {
        assert!(calibrate_gaussian_sigma(0.0, DELTA, 1.0, 1).is_err());
        assert!(calibrate_dpsgd_sigma(-1.0, DELTA, 0.1, 1, 1.0, 1, 10, 0.1).is_err());
        assert!(calibrate_dpsgd_sigma(1.0, DELTA, 0.1, 1, 1.0, 1, 0, 0.1).is_err());
        assert!(calibrate_dpem_sigma(1.0, DELTA, 0, 3).is_err());
    }

    #[test]
    fn budget_split_validation() {
        assert!(BudgetSplit::default().validate().is_ok());
        let bad = BudgetSplit {
            pca_fraction: 0.5,
            em_fraction: 0.5,
            sgd_fraction: 0.5,
        };
        assert!(bad.validate().is_err());
        let negative = BudgetSplit {
            pca_fraction: -0.1,
            em_fraction: 0.4,
            sgd_fraction: 0.7,
        };
        assert!(negative.validate().is_err());
    }
}
