//! Random samplers used by the DP mechanisms.
//!
//! Implemented directly on top of `rand`'s uniform generator so the
//! workspace does not need `rand_distr`:
//!
//! * standard normal via the Marsaglia polar method,
//! * Laplace via inverse-CDF,
//! * multivariate normal via a Cholesky factor,
//! * Wishart with integer degrees of freedom via sums of Gaussian outer
//!   products (exactly what DP-PCA's `W_d(d+1, C)` needs).

use p3gm_linalg::{Cholesky, Matrix};
use rand::Rng;

/// Draws one sample from the standard normal distribution `N(0, 1)` using
/// the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws one sample from `N(mean, std_dev²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Fills a vector with `n` i.i.d. samples from `N(0, std_dev²)`.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, std_dev: f64) -> Vec<f64> {
    (0..n).map(|_| std_dev * standard_normal(rng)).collect()
}

/// Draws one sample from the Laplace distribution with location 0 and the
/// given scale, via inverse-CDF sampling.
///
/// The boundary draw `u = -0.5` (which `gen_range(-0.5..0.5)` produces
/// with probability 2⁻⁵³ per call) would make `ln(1 − 2|u|) = ln 0 = −∞`
/// and return an infinite sample, corrupting the release it noises — so it
/// is rejected and redrawn. Every returned sample is finite.
pub fn laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    // u uniform in (-0.5, 0.5); Laplace = -scale * sign(u) * ln(1 - 2|u|).
    loop {
        let u: f64 = rng.gen_range(-0.5..0.5);
        let tail = 1.0 - 2.0 * u.abs();
        if tail > 0.0 {
            return -scale * u.signum() * tail.ln();
        }
    }
}

/// Fills a vector with `n` i.i.d. Laplace(0, scale) samples.
pub fn laplace_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, scale: f64) -> Vec<f64> {
    (0..n).map(|_| laplace(rng, scale)).collect()
}

/// Draws one sample from the multivariate normal `N(mean, L Lᵀ)` given the
/// Cholesky factor `L` of the covariance.
pub fn multivariate_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: &[f64],
    chol: &Cholesky,
) -> Vec<f64> {
    let d = mean.len();
    debug_assert_eq!(d, chol.dim());
    let z = normal_vec(rng, d, 1.0);
    let l = chol.lower();
    let mut out = mean.to_vec();
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, &zj) in z.iter().enumerate().take(i + 1) {
            acc += l.get(i, j) * zj;
        }
        *o += acc;
    }
    out
}

/// Draws a `d x d` sample from the Wishart distribution `W_d(df, scale)`
/// with **integer** degrees of freedom `df >= d`, where `scale = L Lᵀ`.
///
/// For integer degrees of freedom the Wishart is the distribution of
/// `Σ_{i=1}^{df} x_i x_iᵀ` with `x_i ~ N(0, scale)`, which is how DP-PCA's
/// Wishart mechanism (`df = d + 1`) is sampled here.
pub fn wishart<R: Rng + ?Sized>(rng: &mut R, df: usize, scale_chol: &Cholesky) -> Matrix {
    let d = scale_chol.dim();
    assert!(df >= d, "Wishart requires df >= dimension");
    let zeros = vec![0.0; d];
    let mut w = Matrix::zeros(d, d);
    for _ in 0..df {
        let x = multivariate_normal(rng, &zeros, scale_chol);
        for i in 0..d {
            for j in 0..d {
                let v = w.get(i, j) + x[i] * x[j];
                w.set(i, j, v);
            }
        }
    }
    w
}

/// Samples an index in `0..weights.len()` proportionally to the (unnormalized,
/// non-negative) weights. Returns `0` when all weights are zero.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return 0;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scaling() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.2);
    }

    #[test]
    fn laplace_moments() {
        let mut r = rng();
        let n = 40_000;
        let scale = 1.5;
        let samples: Vec<f64> = (0..n).map(|_| laplace(&mut r, scale)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var of Laplace(0, b) is 2b².
        assert!((var - 2.0 * scale * scale).abs() < 0.3, "var {var}");
    }

    /// An RNG that emits a fixed prefix of raw bit patterns before falling
    /// back to a seeded stream — used to force boundary draws.
    struct ScriptedRng {
        script: Vec<u64>,
        next: usize,
        fallback: StdRng,
    }

    impl rand::RngCore for ScriptedRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            if self.next < self.script.len() {
                self.next += 1;
                self.script[self.next - 1]
            } else {
                rand::RngCore::next_u64(&mut self.fallback)
            }
        }
    }

    #[test]
    fn laplace_boundary_draw_is_rejected_not_infinite() {
        // next_u64() == 0 maps to exactly u = -0.5 in gen_range(-0.5..0.5),
        // the point where ln(1 - 2|u|) = -inf. The sampler must redraw.
        let mut scripted = ScriptedRng {
            script: vec![0, 0, 0],
            next: 0,
            fallback: rng(),
        };
        let sample = laplace(&mut scripted, 1.0);
        assert!(sample.is_finite(), "boundary draw leaked {sample}");
        // The scripted prefix was consumed: the sampler rejected all three
        // boundary draws before producing the finite sample.
        assert_eq!(scripted.next, 3);
    }

    #[test]
    fn laplace_long_stream_is_always_finite() {
        let mut r = rng();
        for scale in [1e-3, 1.0, 50.0] {
            for _ in 0..50_000 {
                let v = laplace(&mut r, scale);
                assert!(v.is_finite(), "non-finite Laplace sample {v}");
            }
        }
    }

    #[test]
    fn normal_vec_and_laplace_vec_lengths() {
        let mut r = rng();
        assert_eq!(normal_vec(&mut r, 7, 1.0).len(), 7);
        assert_eq!(laplace_vec(&mut r, 5, 1.0).len(), 5);
    }

    #[test]
    fn multivariate_normal_covariance() {
        let mut r = rng();
        // Covariance [[2, 0.8], [0.8, 1]].
        let cov = Matrix::from_rows(&[vec![2.0, 0.8], vec![0.8, 1.0]]).unwrap();
        let chol = Cholesky::new(&cov).unwrap();
        let mean = [1.0, -1.0];
        let n = 20_000;
        let mut sum = [0.0, 0.0];
        let mut cov_acc = [[0.0; 2]; 2];
        let samples: Vec<Vec<f64>> = (0..n)
            .map(|_| multivariate_normal(&mut r, &mean, &chol))
            .collect();
        for s in &samples {
            sum[0] += s[0];
            sum[1] += s[1];
        }
        let m = [sum[0] / n as f64, sum[1] / n as f64];
        for s in &samples {
            for i in 0..2 {
                for j in 0..2 {
                    cov_acc[i][j] += (s[i] - m[i]) * (s[j] - m[j]);
                }
            }
        }
        for row in &mut cov_acc {
            for v in row.iter_mut() {
                *v /= n as f64;
            }
        }
        assert!((m[0] - 1.0).abs() < 0.05);
        assert!((m[1] + 1.0).abs() < 0.05);
        assert!((cov_acc[0][0] - 2.0).abs() < 0.15);
        assert!((cov_acc[0][1] - 0.8).abs() < 0.1);
        assert!((cov_acc[1][1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn wishart_mean_is_df_times_scale() {
        let mut r = rng();
        let scale = Matrix::from_diagonal(&[0.5, 0.25]);
        let chol = Cholesky::new(&scale).unwrap();
        let df = 3;
        let trials = 3000;
        let mut acc = Matrix::zeros(2, 2);
        for _ in 0..trials {
            acc = acc.add(&wishart(&mut r, df, &chol)).unwrap();
        }
        let mean = acc.scale(1.0 / trials as f64);
        // E[W] = df * scale.
        assert!((mean.get(0, 0) - 1.5).abs() < 0.1, "{}", mean.get(0, 0));
        assert!((mean.get(1, 1) - 0.75).abs() < 0.06, "{}", mean.get(1, 1));
        assert!(mean.get(0, 1).abs() < 0.05);
    }

    #[test]
    fn wishart_samples_are_symmetric_psd() {
        let mut r = rng();
        let scale = Matrix::identity(3).scale(0.1);
        let chol = Cholesky::new(&scale).unwrap();
        let w = wishart(&mut r, 4, &chol);
        for i in 0..3 {
            for j in 0..3 {
                assert!((w.get(i, j) - w.get(j, i)).abs() < 1e-12);
            }
        }
        // PSD with probability 1 (df >= d): Cholesky with tiny jitter succeeds.
        assert!(Cholesky::new_with_jitter(&w, 1e-12, 4).is_ok());
    }

    #[test]
    #[should_panic(expected = "df >= dimension")]
    fn wishart_rejects_small_df() {
        let mut r = rng();
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        let _ = wishart(&mut r, 2, &chol);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let weights = [0.0, 3.0, 1.0];
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[categorical(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        // Degenerate weights fall back to index 0.
        assert_eq!(categorical(&mut r, &[0.0, 0.0]), 0);
    }
}
