//! Rényi-DP accountant implementing the paper's Theorem 4.
//!
//! The accountant tracks, for every order α on a fixed grid, the accumulated
//! RDP budget `ε(α)` of all mechanisms applied so far.  At conversion time
//! (paper Theorem 2) it reports
//!
//! ```text
//! ε = min_α [ ε(α) + log(1/δ) / (α − 1) ]
//! ```
//!
//! which is exactly the right-hand side of paper Eq. (9) when the P3GM
//! components (DP-PCA, T_e steps of DP-EM, T_s steps of DP-SGD) have been
//! added.

use crate::moments::{
    ma_dp_em, ma_dp_sgd, moments_to_rdp, rdp_gaussian, rdp_pure_dp, rdp_sampled_gaussian,
};
use crate::{PrivacyError, Result};

/// Default grid of RDP orders. Matches the common practice of mixing a fine
/// low-order grid (where subsampled mechanisms are usually optimal) with a
/// coarse tail up to 512.
pub const DEFAULT_ORDERS: &[f64] = &[
    1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 16.0,
    20.0, 24.0, 28.0, 32.0, 48.0, 64.0, 96.0, 128.0, 256.0, 512.0,
];

/// Which bound to use for the per-step DP-SGD cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpSgdBound {
    /// Paper Eq. (4): Abadi et al.'s moments expansion, bridged to RDP by
    /// paper Theorem 3. This is what the paper's Theorem 4 uses.
    PaperEq4,
    /// The integer-order sampled-Gaussian RDP bound (Mironov et al.),
    /// provided as a tighter ablation.
    SampledGaussian,
}

/// A summary of the total privacy guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacySpec {
    /// The ε of the (ε, δ)-DP guarantee.
    pub epsilon: f64,
    /// The δ of the (ε, δ)-DP guarantee.
    pub delta: f64,
    /// The RDP order at which the conversion was tightest.
    pub optimal_order: f64,
}

impl PrivacySpec {
    /// Serializes the guarantee into a framed `p3gm-store` buffer — the
    /// stamp a persisted model snapshot carries so a serving process knows
    /// the (ε, δ) certified for the release without re-running accounting.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::PRIVACY_SPEC);
        enc.f64(self.epsilon)
            .f64(self.delta)
            .f64(self.optimal_order);
        enc.finish()
    }

    /// Deserializes a guarantee from a buffer produced by
    /// [`PrivacySpec::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<PrivacySpec> {
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::PRIVACY_SPEC)?;
        let epsilon = dec.f64()?;
        let delta = dec.f64()?;
        let optimal_order = dec.f64()?;
        dec.finish()?;
        if !(epsilon.is_finite() && epsilon >= 0.0) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!("epsilon must be finite and non-negative, got {epsilon}"),
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!("delta must be in (0,1), got {delta}"),
            });
        }
        if !optimal_order.is_finite() || optimal_order <= 1.0 {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!("RDP order must exceed 1, got {optimal_order}"),
            });
        }
        Ok(PrivacySpec {
            epsilon,
            delta,
            optimal_order,
        })
    }
}

impl std::fmt::Display for PrivacySpec {
    /// The human-facing certificate line, e.g. `(1.000, 1e-5)-DP` — the
    /// form the serving layer stamps on every synthesis response.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:e})-DP", self.epsilon, self.delta)
    }
}

/// Rényi-DP accountant over a fixed grid of orders.
#[derive(Debug, Clone)]
pub struct RdpAccountant {
    orders: Vec<f64>,
    /// Accumulated ε(α) for each order, aligned with `orders`.
    eps: Vec<f64>,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new(DEFAULT_ORDERS)
    }
}

impl RdpAccountant {
    /// Creates an accountant tracking the given orders (all must be > 1).
    pub fn new(orders: &[f64]) -> Self {
        let orders: Vec<f64> = orders.iter().copied().filter(|&a| a > 1.0).collect();
        let eps = vec![0.0; orders.len()];
        RdpAccountant { orders, eps }
    }

    /// The tracked RDP orders.
    pub fn orders(&self) -> &[f64] {
        &self.orders
    }

    /// The accumulated RDP epsilon at each tracked order.
    pub fn rdp_epsilons(&self) -> &[f64] {
        &self.eps
    }

    /// Adds a mechanism whose RDP curve is given by `f(α)`.
    pub fn add_curve(&mut self, f: impl Fn(f64) -> f64) {
        for (e, &a) in self.eps.iter_mut().zip(self.orders.iter()) {
            *e += f(a);
        }
    }

    /// Adds a pure `eps`-DP mechanism (e.g. DP-PCA with the Wishart
    /// mechanism), contributing `min(2αε², ε)` at each order — the `2αε²`
    /// form is the one used by the paper's Theorem 4.
    pub fn add_pure_dp(&mut self, eps: f64) -> Result<&mut Self> {
        if eps < 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("pure-DP epsilon must be non-negative, got {eps}"),
            });
        }
        self.add_curve(|a| rdp_pure_dp(a, eps));
        Ok(self)
    }

    /// Adds a Gaussian mechanism with L2 sensitivity `delta_f` and noise
    /// standard deviation `sigma`.
    pub fn add_gaussian(&mut self, delta_f: f64, sigma: f64) -> Result<&mut Self> {
        if sigma <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("gaussian sigma must be positive, got {sigma}"),
            });
        }
        self.add_curve(|a| rdp_gaussian(a, delta_f, sigma));
        Ok(self)
    }

    /// Adds `steps` iterations of DP-EM with noise scale `sigma_e` and
    /// `n_components` mixture components, using paper Eq. (3) bridged to RDP
    /// via paper Theorem 3 (`ε_re(α) = MA_DP-EM(α−1)/(α−1)`).
    pub fn add_dp_em(
        &mut self,
        steps: usize,
        sigma_e: f64,
        n_components: usize,
    ) -> Result<&mut Self> {
        if sigma_e <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("sigma_e must be positive, got {sigma_e}"),
            });
        }
        if n_components == 0 {
            return Err(PrivacyError::InvalidParameter {
                msg: "n_components must be positive".to_string(),
            });
        }
        let t = steps as f64;
        self.add_curve(|a| t * moments_to_rdp(ma_dp_em(a - 1.0, sigma_e, n_components), a));
        Ok(self)
    }

    /// Adds `steps` iterations of DP-SGD with sampling probability `q` and
    /// noise multiplier `sigma`, using the selected per-step bound.
    ///
    /// `q = 1` (a full-batch lot, which `DpSgdConfig::sampling_probability`
    /// produces whenever `batch_size >= n`) is legal: without subsampling
    /// each step is a plain Gaussian mechanism on the clipped gradient sum,
    /// so its exact RDP curve `α/(2σ²)` is charged instead of a subsampling
    /// bound (both Eq. (4) and the sampled-Gaussian expansion assume
    /// `q < 1`).
    pub fn add_dp_sgd(
        &mut self,
        steps: usize,
        q: f64,
        sigma: f64,
        bound: DpSgdBound,
    ) -> Result<&mut Self> {
        if !(0.0..=1.0).contains(&q) || q == 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("sampling probability must be in (0,1], got {q}"),
            });
        }
        if sigma <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("noise multiplier must be positive, got {sigma}"),
            });
        }
        let t = steps as f64;
        if q == 1.0 {
            self.add_curve(|a| t * rdp_gaussian(a, 1.0, sigma));
            return Ok(self);
        }
        match bound {
            DpSgdBound::PaperEq4 => {
                self.add_curve(|a| {
                    // MA is defined for integer moment orders λ; Theorem 3
                    // certifies order α only when λ ≥ α − 1, so round UP.
                    // λ is additionally floored at 2: the Eq. (4) expansion
                    // evaluates to exactly 0 at λ = 1 (the leading term
                    // carries λ(λ−1) and the t-loop is empty), which would
                    // account DP-SGD as free at every order α ≤ 2 — and the
                    // MA curve is nondecreasing in λ, so both roundings are
                    // conservative.
                    let lambda = (a - 1.0).ceil().max(2.0) as u32;
                    t * moments_to_rdp(ma_dp_sgd(lambda, q, sigma), a)
                });
            }
            DpSgdBound::SampledGaussian => {
                self.add_curve(|a| {
                    // Same soundness argument: RDP is nondecreasing in the
                    // order, so the integer-order value at ceil(α) upper
                    // bounds the fractional order α.
                    let alpha_int = a.ceil().max(2.0) as u32;
                    t * rdp_sampled_gaussian(alpha_int, q, sigma)
                });
            }
        }
        Ok(self)
    }

    /// Converts the accumulated RDP guarantee to (ε, δ)-DP via paper
    /// Theorem 2, minimizing over the tracked orders.
    pub fn to_dp(&self, delta: f64) -> Result<PrivacySpec> {
        if !(0.0..1.0).contains(&delta) || delta == 0.0 {
            return Err(PrivacyError::InvalidParameter {
                msg: format!("delta must be in (0,1), got {delta}"),
            });
        }
        let log_inv_delta = (1.0 / delta).ln();
        let mut best = f64::INFINITY;
        let mut best_order = self.orders.first().copied().unwrap_or(2.0);
        for (&a, &e) in self.orders.iter().zip(self.eps.iter()) {
            let candidate = e + log_inv_delta / (a - 1.0);
            if candidate < best {
                best = candidate;
                best_order = a;
            }
        }
        Ok(PrivacySpec {
            epsilon: best,
            delta,
            optimal_order: best_order,
        })
    }

    /// Convenience: total ε for the full P3GM pipeline of paper Theorem 4.
    ///
    /// `eps_p` is the DP-PCA budget, `(t_e, sigma_e, k)` the DP-EM schedule,
    /// `(t_s, q, sigma_s)` the DP-SGD schedule, `delta` the target δ.
    #[allow(clippy::too_many_arguments)]
    pub fn p3gm_total(
        eps_p: f64,
        t_e: usize,
        sigma_e: f64,
        k: usize,
        t_s: usize,
        q: f64,
        sigma_s: f64,
        delta: f64,
    ) -> Result<PrivacySpec> {
        let mut acc = RdpAccountant::default();
        if eps_p > 0.0 {
            acc.add_pure_dp(eps_p)?;
        }
        if t_e > 0 {
            acc.add_dp_em(t_e, sigma_e, k)?;
        }
        if t_s > 0 {
            acc.add_dp_sgd(t_s, q, sigma_s, DpSgdBound::PaperEq4)?;
        }
        acc.to_dp(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DELTA: f64 = 1e-5;

    #[test]
    fn privacy_spec_display_is_the_certificate_line() {
        let spec = PrivacySpec {
            epsilon: 0.987654,
            delta: 1e-5,
            optimal_order: 8.0,
        };
        assert_eq!(spec.to_string(), "(0.988, 1e-5)-DP");
    }

    #[test]
    fn empty_accountant_cost_is_conversion_overhead_only() {
        let acc = RdpAccountant::default();
        let spec = acc.to_dp(DELTA).unwrap();
        // With no mechanisms the only cost is log(1/δ)/(α−1), minimized at
        // the largest order.
        let expected = (1.0 / DELTA).ln() / (512.0 - 1.0);
        assert!((spec.epsilon - expected).abs() < 1e-9);
        assert_eq!(spec.optimal_order, 512.0);
    }

    #[test]
    fn gaussian_mechanism_known_value() {
        let mut acc = RdpAccountant::default();
        acc.add_gaussian(1.0, 4.0).unwrap();
        let spec = acc.to_dp(DELTA).unwrap();
        // Analytic: min over α of α/(2σ²) + log(1/δ)/(α−1);
        // optimum near α = 1 + sqrt(2σ² log(1/δ)) ≈ 20.2 → ε ≈ 1.23.
        assert!(
            spec.epsilon > 1.0 && spec.epsilon < 1.45,
            "{}",
            spec.epsilon
        );
    }

    #[test]
    fn composition_is_additive_in_rdp() {
        let mut one = RdpAccountant::default();
        one.add_gaussian(1.0, 2.0).unwrap();
        let mut two = RdpAccountant::default();
        two.add_gaussian(1.0, 2.0).unwrap();
        two.add_gaussian(1.0, 2.0).unwrap();
        for (a, b) in one.rdp_epsilons().iter().zip(two.rdp_epsilons().iter()) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
        // And the converted epsilon grows, but sub-linearly.
        let e1 = one.to_dp(DELTA).unwrap().epsilon;
        let e2 = two.to_dp(DELTA).unwrap().epsilon;
        assert!(e2 > e1);
        assert!(e2 < 2.0 * e1);
    }

    #[test]
    fn pure_dp_component_increases_epsilon() {
        let base = RdpAccountant::p3gm_total(0.0, 20, 10.0, 3, 100, 0.01, 2.0, DELTA)
            .unwrap()
            .epsilon;
        let with_pca = RdpAccountant::p3gm_total(0.1, 20, 10.0, 3, 100, 0.01, 2.0, DELTA)
            .unwrap()
            .epsilon;
        assert!(with_pca > base);
        // The PCA term 2αε_p² is tiny for ε_p = 0.1, so the increase is small.
        assert!(with_pca - base < 0.5);
    }

    #[test]
    fn dp_sgd_epsilon_decreases_with_noise() {
        let small_noise = RdpAccountant::p3gm_total(0.1, 20, 10.0, 3, 200, 0.02, 1.5, DELTA)
            .unwrap()
            .epsilon;
        let big_noise = RdpAccountant::p3gm_total(0.1, 20, 10.0, 3, 200, 0.02, 4.0, DELTA)
            .unwrap()
            .epsilon;
        assert!(big_noise < small_noise);
    }

    #[test]
    fn dp_sgd_epsilon_increases_with_steps_and_q() {
        let base = RdpAccountant::p3gm_total(0.0, 0, 1.0, 1, 100, 0.01, 2.0, DELTA)
            .unwrap()
            .epsilon;
        let more_steps = RdpAccountant::p3gm_total(0.0, 0, 1.0, 1, 400, 0.01, 2.0, DELTA)
            .unwrap()
            .epsilon;
        let more_q = RdpAccountant::p3gm_total(0.0, 0, 1.0, 1, 100, 0.04, 2.0, DELTA)
            .unwrap()
            .epsilon;
        assert!(more_steps > base);
        assert!(more_q > base);
    }

    #[test]
    fn sampled_gaussian_bound_not_looser_than_eq4() {
        let mut eq4 = RdpAccountant::default();
        eq4.add_dp_sgd(500, 0.01, 2.0, DpSgdBound::PaperEq4)
            .unwrap();
        let mut sg = RdpAccountant::default();
        sg.add_dp_sgd(500, 0.01, 2.0, DpSgdBound::SampledGaussian)
            .unwrap();
        let e_eq4 = eq4.to_dp(DELTA).unwrap().epsilon;
        let e_sg = sg.to_dp(DELTA).unwrap().epsilon;
        assert!(e_sg <= e_eq4 * 1.0001, "eq4 {e_eq4} vs sg {e_sg}");
    }

    #[test]
    fn paper_setting_is_order_one() {
        // A P3GM-like schedule (MNIST row of Table IV scaled down):
        // sigma_s = 1.42, q = 240/63000, 10 epochs → T_s ≈ 2625,
        // sigma_e chosen large, eps_p = 0.1. The paper reports this as
        // (1, 1e-5)-DP; our independently implemented accountant should land
        // in the same ballpark (within a factor ~2).
        let n = 63000.0;
        let batch = 240.0;
        let q = batch / n;
        let t_s = (10.0 * n / batch) as usize;
        let spec = RdpAccountant::p3gm_total(0.1, 20, 70.0, 3, t_s, q, 1.42, DELTA).unwrap();
        assert!(
            spec.epsilon > 0.3 && spec.epsilon < 2.0,
            "epsilon {} not near 1",
            spec.epsilon
        );
    }

    #[test]
    fn dp_sgd_is_never_free_at_low_orders() {
        // Regression for the floor(α−1) soundness bug: at every order
        // α < 3 the old accountant charged λ = 1, where the Eq. (4)
        // expansion is exactly 0, so DP-SGD was accounted as free.
        let low_orders = [1.25, 1.5, 1.75, 2.0, 2.25, 2.5];
        let mut acc = RdpAccountant::new(&low_orders);
        acc.add_dp_sgd(100, 0.01, 1.5, DpSgdBound::PaperEq4)
            .unwrap();
        for (&a, &e) in acc.orders().iter().zip(acc.rdp_epsilons().iter()) {
            assert!(e > 0.0, "DP-SGD accounted as free at order {a}");
        }
    }

    #[test]
    fn epsilon_strictly_increases_with_steps_at_every_order() {
        // Adding DP-SGD steps must never decrease (and in fact must
        // strictly increase) the reported ε, at every tracked order —
        // including the fractional α < 3 regime the floor bug zeroed out.
        for &a in DEFAULT_ORDERS {
            let mut base = RdpAccountant::new(&[a]);
            base.add_dp_sgd(100, 0.02, 2.0, DpSgdBound::PaperEq4)
                .unwrap();
            let mut more = RdpAccountant::new(&[a]);
            more.add_dp_sgd(200, 0.02, 2.0, DpSgdBound::PaperEq4)
                .unwrap();
            let e_base = base.to_dp(DELTA).unwrap().epsilon;
            let e_more = more.to_dp(DELTA).unwrap().epsilon;
            assert!(
                e_more >= e_base,
                "order {a}: ε decreased with steps ({e_base} -> {e_more})"
            );
            // While the per-step bound is finite (it saturates to +inf at
            // very large orders), doubling the steps strictly increases ε.
            if e_base.is_finite() {
                assert!(
                    e_more > e_base,
                    "order {a}: ε did not grow with steps ({e_base} -> {e_more})"
                );
            }
        }
    }

    #[test]
    fn ceil_bound_is_pointwise_at_least_the_floor_bound() {
        // ceil(α−1).max(2) ≥ floor(α−1).max(1) and the MA curve is
        // nondecreasing in λ, so the fixed accountant can only report a
        // larger (never smaller) per-order cost than the old one.
        use crate::moments::ma_dp_sgd;
        let (q, sigma) = (0.02, 1.5);
        for &a in DEFAULT_ORDERS {
            let floor_lambda = (a - 1.0).floor().max(1.0) as u32;
            let ceil_lambda = (a - 1.0).ceil().max(2.0) as u32;
            assert!(
                ma_dp_sgd(ceil_lambda, q, sigma) >= ma_dp_sgd(floor_lambda, q, sigma),
                "order {a}"
            );
        }
    }

    #[test]
    fn full_batch_q_one_is_accepted_as_plain_gaussian() {
        // A legal full-batch configuration (batch_size >= n clamps q to 1)
        // must account, not error — regression for the q = 1 rejection.
        let mut acc = RdpAccountant::default();
        acc.add_dp_sgd(10, 1.0, 2.0, DpSgdBound::PaperEq4).unwrap();
        // Each step is the plain Gaussian mechanism: ε(α) = α/(2σ²).
        for (&a, &e) in acc.orders().iter().zip(acc.rdp_epsilons().iter()) {
            let expected = 10.0 * a / (2.0 * 2.0 * 2.0);
            assert!((e - expected).abs() < 1e-12, "order {a}: {e} vs {expected}");
        }
        // Both bounds agree at q = 1 and the whole-pipeline helper works.
        let mut sg = RdpAccountant::default();
        sg.add_dp_sgd(10, 1.0, 2.0, DpSgdBound::SampledGaussian)
            .unwrap();
        assert_eq!(acc.rdp_epsilons(), sg.rdp_epsilons());
        let spec = RdpAccountant::p3gm_total(0.1, 5, 10.0, 3, 10, 1.0, 2.0, DELTA).unwrap();
        assert!(spec.epsilon.is_finite() && spec.epsilon > 0.0);
        // Full batch costs at least as much as any subsampled lot of the
        // same length and noise.
        let sub = RdpAccountant::p3gm_total(0.1, 5, 10.0, 3, 10, 0.1, 2.0, DELTA).unwrap();
        assert!(spec.epsilon >= sub.epsilon);
    }

    #[test]
    fn privacy_spec_byte_round_trip() {
        let mut acc = RdpAccountant::default();
        acc.add_gaussian(1.0, 3.0).unwrap();
        let spec = acc.to_dp(DELTA).unwrap();
        let back = PrivacySpec::from_bytes(&spec.to_bytes()).unwrap();
        assert_eq!(back, spec);
        let bytes = spec.to_bytes();
        for cut in 0..bytes.len() {
            assert!(PrivacySpec::from_bytes(&bytes[..cut]).is_err());
        }
        // Semantic validation inside a valid frame.
        let bad = PrivacySpec {
            epsilon: 1.0,
            delta: 2.0,
            optimal_order: 4.0,
        };
        assert!(matches!(
            PrivacySpec::from_bytes(&bad.to_bytes()),
            Err(p3gm_store::StoreError::Invalid { .. })
        ));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut acc = RdpAccountant::default();
        assert!(acc.add_pure_dp(-1.0).is_err());
        assert!(acc.add_gaussian(1.0, 0.0).is_err());
        assert!(acc.add_dp_em(5, -1.0, 3).is_err());
        assert!(acc.add_dp_em(5, 1.0, 0).is_err());
        assert!(acc.add_dp_sgd(5, 0.0, 1.0, DpSgdBound::PaperEq4).is_err());
        assert!(acc.add_dp_sgd(5, 1.5, 1.0, DpSgdBound::PaperEq4).is_err());
        assert!(acc.add_dp_sgd(5, 0.1, 0.0, DpSgdBound::PaperEq4).is_err());
        assert!(acc.to_dp(0.0).is_err());
        assert!(acc.to_dp(1.5).is_err());
    }

    #[test]
    fn orders_below_one_are_dropped() {
        let acc = RdpAccountant::new(&[0.5, 1.0, 2.0, 4.0]);
        assert_eq!(acc.orders(), &[2.0, 4.0]);
    }

    #[test]
    fn optimal_order_moves_with_budget() {
        // Heavier mechanisms favour smaller orders.
        let mut light = RdpAccountant::default();
        light.add_gaussian(1.0, 20.0).unwrap();
        let mut heavy = RdpAccountant::default();
        heavy.add_gaussian(1.0, 0.7).unwrap();
        let lo = light.to_dp(DELTA).unwrap().optimal_order;
        let ho = heavy.to_dp(DELTA).unwrap().optimal_order;
        assert!(ho <= lo);
    }
}
