//! Property tests for the conformance lexer.
//!
//! Two input classes drive every property: raw uniform bytes (adversarial,
//! mostly non-UTF-8, truncated literals everywhere) and bytes mapped into a
//! "rusty" alphabet dense in the characters that drive lexer state (quotes,
//! slashes, stars, hashes, backslashes, `r`/`b`/`c` prefixes) so comment and
//! literal forms actually occur at useful rates.
//!
//! Pinned properties:
//!
//! 1. **Totality** — `lex` returns for every byte string (a panic or hang
//!    here fails the test run).
//! 2. **Losslessness** — spans are monotone, non-overlapping, in bounds,
//!    and every byte outside a span is ASCII whitespace.
//! 3. **Stripping agreement** — blanking the interiors of comment/string/
//!    char tokens agrees byte-for-byte with an independent character-level
//!    state machine implementing the same lexical spec.
//! 4. **Engine totality** — `check_source` never panics on arbitrary bytes
//!    at either a numeric-crate path or an untrusted-byte-zone path.

use p3gm_conform::lexer::{lex, TokenKind};
use p3gm_conform::rules::check_source;
use proptest::prelude::*;

/// Maps a uniform byte into an alphabet dense in lexer-state characters.
fn rusty_byte(raw: u32) -> u8 {
    const ALPHABET: &[u8] = b"/*\"'\\#rbc_ax0 9.\n(){};:!<>&=-eE+u8fnmul_add";
    ALPHABET[(raw as usize) % ALPHABET.len()]
}

fn raw_bytes(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u32..256, len)
        .prop_map(|pool| pool.into_iter().map(|b| b as u8).collect())
}

fn rusty_bytes(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u32..4096, len)
        .prop_map(|pool| pool.into_iter().map(rusty_byte).collect())
}

/// Losslessness: spans monotone, non-overlapping, in bounds; every byte not
/// covered by a span is ASCII whitespace.
fn assert_lossless(src: &[u8]) {
    let tokens = lex(src);
    let mut prev_end = 0usize;
    for t in &tokens {
        assert!(t.start >= prev_end, "overlapping spans at {}", t.start);
        assert!(t.end > t.start, "empty span at {}", t.start);
        assert!(t.end <= src.len(), "span past EOF: {}..{}", t.start, t.end);
        for (i, &b) in src.iter().enumerate().take(t.start).skip(prev_end) {
            assert!(
                b.is_ascii_whitespace(),
                "byte {i} ({b:#04x}) skipped but not whitespace",
            );
        }
        prev_end = t.end;
    }
    for (i, &b) in src.iter().enumerate().skip(prev_end) {
        assert!(
            b.is_ascii_whitespace(),
            "trailing byte {i} ({b:#04x}) skipped but not whitespace",
        );
    }
}

/// Blanks the spans of comment, string, and char tokens with spaces
/// (newlines kept so line structure survives) using the lexer's tokens.
fn strip_via_tokens(src: &[u8]) -> Vec<u8> {
    let mut out = src.to_vec();
    for t in lex(src) {
        let blank = matches!(
            t.kind,
            TokenKind::Str | TokenKind::Char | TokenKind::LineComment | TokenKind::BlockComment
        );
        if blank {
            for b in out.iter_mut().take(t.end).skip(t.start) {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// An independent character-level reference for comment/string stripping:
/// one forward scan with explicit states, no token list. Implements the
/// same lexical spec as `lexer::lex` (same escape rules, same char-vs-
/// lifetime disambiguation, same literal prefixes) so the two must agree
/// byte-for-byte on every input.
fn naive_strip(src: &[u8]) -> Vec<u8> {
    let mut out = src.to_vec();
    let mut i = 0usize;
    // Blanks src[from..to] into `out`, preserving newlines.
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in out.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < src.len() {
        let b = src[i];
        match b {
            b'/' if src.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < src.len() && src[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if src.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < src.len() {
                    if src[i] == b'/' && src.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if src[i] == b'*' && src.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                let end = i.min(src.len());
                blank(&mut out, start, end);
                i = end;
            }
            b'"' => i = naive_string(src, &mut out, i),
            b'\'' => i = naive_char_or_lifetime(src, &mut out, i),
            b'0'..=b'9' => i = naive_number(src, i),
            _ if is_ident_start(b) => i = naive_ident_or_literal(src, &mut out, i),
            _ => i += 1,
        }
    }
    out
}

/// Plain `"..."` string starting at `src[i] == b'"'`; blanks it and
/// returns the index after the literal. Escapes consume two bytes;
/// unterminated runs to EOF.
fn naive_string(src: &[u8], out: &mut [u8], i: usize) -> usize {
    let start = i;
    let mut j = i + 1;
    while j < src.len() {
        match src[j] {
            b'\\' => j = (j + 2).min(src.len()),
            b'"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    for b in out.iter_mut().take(j).skip(start) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
    j
}

/// `'`-led literal starting at `src[i]`: escaped char, short char,
/// ident-run char, punctuation char, lifetime (not blanked), or a stray
/// quote (not blanked). Mirrors the spec's arm order exactly.
fn naive_char_or_lifetime(src: &[u8], out: &mut [u8], i: usize) -> usize {
    let start = i;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in out.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    match src.get(i + 1) {
        Some(b'\\') => {
            // Quote, backslash, escape-class byte, then scan to the close.
            let mut j = (i + 3).min(src.len());
            while j < src.len() {
                match src[j] {
                    b'\'' => {
                        j += 1;
                        break;
                    }
                    b'\n' => break,
                    _ => j += 1,
                }
            }
            blank(out, start, j);
            j
        }
        Some(&c) if c != b'\'' && src.get(i + 2) == Some(&b'\'') && !is_ident_continue(c) => {
            blank(out, start, i + 3);
            i + 3
        }
        Some(&c) if is_ident_start(c) || c.is_ascii_digit() => {
            let mut j = i + 1;
            while j < src.len() && is_ident_continue(src[j]) {
                j += 1;
            }
            if src.get(j) == Some(&b'\'') {
                blank(out, start, j + 1);
                j + 1
            } else {
                // Lifetime: plain code, left intact.
                j
            }
        }
        Some(&c) if c != b'\'' && src.get(i + 2) == Some(&b'\'') => {
            blank(out, start, i + 3);
            i + 3
        }
        _ => i + 1, // stray quote, left intact
    }
}

/// Numeric literal starting at a digit; consumed atomically (so a trailing
/// `b`/`r` inside `0b101` can never look like a literal prefix) and never
/// blanked. Returns the index after the literal.
fn naive_number(src: &[u8], i: usize) -> usize {
    let run = |src: &[u8], mut j: usize| {
        while j < src.len() && (src[j].is_ascii_alphanumeric() || src[j] == b'_') {
            j += 1;
        }
        j
    };
    let mut j = run(src, i);
    if src.get(j) == Some(&b'.') && src.get(j + 1).is_some_and(|b| b.is_ascii_digit()) {
        j = run(src, j + 1);
    }
    if matches!(src.get(j.wrapping_sub(1)), Some(b'e') | Some(b'E'))
        && matches!(src.get(j), Some(b'+') | Some(b'-'))
        && src.get(j + 1).is_some_and(|b| b.is_ascii_digit())
    {
        j = run(src, j + 1);
    }
    j
}

/// Identifier or prefixed literal starting at an ident-start byte: raw
/// strings (`r"`, `br#"`, `cr"`), raw identifiers (`r#ident`), prefixed
/// strings/chars (`b"`, `c"`, `b'`), else a plain identifier run.
fn naive_ident_or_literal(src: &[u8], out: &mut [u8], i: usize) -> usize {
    let start = i;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in out.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    let (prefix_len, raw_capable) = match (src.get(i), src.get(i + 1)) {
        (Some(b'r'), _) => (0usize, true),
        (Some(b'b') | Some(b'c'), Some(b'r')) => (1, true),
        _ => (0, false),
    };
    if raw_capable {
        let mut hashes = 0usize;
        while src.get(i + prefix_len + 1 + hashes) == Some(&b'#') {
            hashes += 1;
        }
        match src.get(i + prefix_len + 1 + hashes) {
            Some(b'"') => {
                // Raw string: scan past the opening quote for `"` + hashes.
                let mut j = i + prefix_len + 1 + hashes + 1;
                loop {
                    if j >= src.len() {
                        break;
                    }
                    if src[j] == b'"'
                        && src[j + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&b| b == b'#')
                            .count()
                            == hashes
                    {
                        j = (j + 1 + hashes).min(src.len());
                        break;
                    }
                    j += 1;
                }
                blank(out, start, j);
                return j;
            }
            Some(&c) if hashes == 1 && prefix_len == 0 && is_ident_start(c) => {
                // `r#ident` raw identifier: plain code.
                let mut j = i + 2;
                while j < src.len() && is_ident_continue(src[j]) {
                    j += 1;
                }
                return j;
            }
            _ => {}
        }
    }
    match (src.get(i), src.get(i + 1)) {
        (Some(b'b') | Some(b'c'), Some(b'"')) => {
            let j = naive_string(src, out, i + 1);
            // The prefix byte is part of the literal: blank it too.
            blank(out, start, j);
            return j;
        }
        (Some(b'b'), Some(b'\'')) => {
            let j = naive_char_or_lifetime(src, out, i + 1);
            // Blank the prefix only when the `'...'` part was a literal —
            // its opening quote got spaced out. Lifetimes and stray
            // quotes stay as code, and so does their `b` prefix.
            if out.get(i + 1) == Some(&b' ') {
                blank(out, start, j);
            }
            return j;
        }
        _ => {}
    }
    let mut j = i;
    while j < src.len() && is_ident_continue(src[j]) {
        j += 1;
    }
    j
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lex_is_total_and_lossless_on_raw_bytes(src in raw_bytes(512)) {
        assert_lossless(&src);
    }

    #[test]
    fn lex_is_total_and_lossless_on_rusty_bytes(src in rusty_bytes(512)) {
        assert_lossless(&src);
    }

    #[test]
    fn stripping_agrees_with_naive_reference_on_rusty_bytes(src in rusty_bytes(384)) {
        let via_tokens = strip_via_tokens(&src);
        let via_naive = naive_strip(&src);
        prop_assert_eq!(
            String::from_utf8_lossy(&via_tokens),
            String::from_utf8_lossy(&via_naive)
        );
    }

    #[test]
    fn stripping_agrees_with_naive_reference_on_raw_bytes(src in raw_bytes(256)) {
        prop_assert_eq!(strip_via_tokens(&src), naive_strip(&src));
    }

    #[test]
    fn check_source_is_total_on_arbitrary_bytes(src in raw_bytes(384)) {
        // Numeric crate: D1/D3/D5/D6 in scope. Must classify, not panic.
        let _ = check_source("crates/linalg/src/lib.rs", &src);
        // Untrusted-byte zone: D2/D4/D5 in scope.
        let _ = check_source("crates/store/src/lib.rs", &src);
    }
}

/// Deterministic spot checks of the stripping pair on the hard shapes, so
/// a proptest regression has named anchors.
#[test]
fn stripping_spot_checks() {
    let cases: &[&[u8]] = &[
        b"let x = a.powi(2); // powi in comment\n",
        b"/* outer /* inner */ still */ mul_add",
        b"let s = \"mul_add \\\" quoted\"; x",
        b"let r = r#\"raw \"q\" here\"#; y",
        b"let b = b\"bytes\"; let c = c\"cstr\";",
        b"let ch = '\\''; let l: &'static str = s;",
        b"b'x' 'y' '(' Foo<'a>",
        b"0b101 0xFF_u32 1e-9 4096.powi",
        b"r#type r##notraw \"tail",
        b"'\\n",
    ];
    for case in cases {
        assert_eq!(
            String::from_utf8_lossy(&strip_via_tokens(case)),
            String::from_utf8_lossy(&naive_strip(case)),
            "case: {}",
            String::from_utf8_lossy(case),
        );
    }
}
