//! The conformance rules and the token-stream engine that enforces them.
//!
//! Every rule machine-checks one clause of the workspace's two written
//! contracts — *bit-identical results under any thread count* and *never
//! panic on untrusted bytes*:
//!
//! | Rule | Contract | What it forbids | Where |
//! |------|----------|-----------------|-------|
//! | D1 | determinism | `mul_add` / `powi` / `fma` calls (FMA-contractible or expansion-order-dependent intrinsics) | numeric crates |
//! | D2 | determinism | `thread::spawn`, `Instant::now`, `SystemTime::now` (ad-hoc parallelism / wall-clock) | everywhere except `parallel`, `bench`, `server`, and the obs clock file `crates/obs/src/time.rs` |
//! | D3 | determinism | `HashMap` / `HashSet` (iteration order must never feed a float reduction) | numeric crates |
//! | D4 | hardening | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`-family | untrusted-byte zones |
//! | D5 | hardening | a crate root missing `#![forbid(unsafe_code)]`; for [`D5_SHIM_EXEMPT`] crates the root carries `#![deny(unsafe_code)]` and the `unsafe` token is banned in every file but the sanctioned shim | every crate root + shim-exempt crate files |
//! | D6 | determinism | `f32` (all numerics are f64 by contract) | numeric crates |
//!
//! *Numeric crates*: `linalg`, `mixture`, `nn`, `privacy`, `preprocess`,
//! `core`. *Untrusted-byte zones*: all of `crates/store/src/`, plus
//! `crates/server/src/{http,json,ledger}.rs`.
//!
//! `#[cfg(test)]` items are exempt from the token rules (tests *should*
//! `unwrap()`), and `debug_assert*` is deliberately not matched by D4:
//! it compiles out of release builds, so it cannot be a remote panic.
//!
//! ## The escape hatch
//!
//! A violation is suppressible only by an annotation on the offending
//! line (trailing) or on a comment line directly above it:
//!
//! ```text
//! let x = t.powi(2); // conform: allow(d1) — scalar of a loop counter, no data-order dependence
//! ```
//!
//! The justification after the dash is **required**, and an annotation
//! that suppresses nothing is itself a violation (`A0`), so stale or
//! malformed exceptions cannot accumulate silently.

use crate::lexer::{lex, Token, TokenKind};
use std::fmt;

/// The crates whose kernels feed float reductions: D1/D3/D6 territory.
pub const NUMERIC_CRATES: &[&str] = &["linalg", "mixture", "nn", "privacy", "preprocess", "core"];

/// Crates allowed to spawn threads and read clocks (D2 exemptions).
pub const D2_EXEMPT_CRATES: &[&str] = &["parallel", "bench", "server"];

/// Individual files allowed to read clocks (D2 exemptions narrower than
/// a whole crate). The obs crate's injectable-timer design confines every
/// real clock to exactly one file — the rest of `crates/obs` (and every
/// crate consuming it) stays under D2, so a metrics counter can never
/// smuggle wall-clock reads into a numeric kernel.
pub const D2_EXEMPT_FILES: &[&str] = &["crates/obs/src/time.rs"];

/// Files whose inputs are untrusted bytes: the D4 no-panic zones.
pub const D4_ZONES: &[&str] = &[
    "crates/store/src/",
    "crates/server/src/http.rs",
    "crates/server/src/json.rs",
    "crates/server/src/ledger.rs",
];

/// D5 file-level shim exemptions, mirroring the [`D2_EXEMPT_FILES`]
/// pattern: `(crate root, sanctioned shim file)` pairs. The named crate
/// confines all `unsafe` to exactly one file (the server's `poll(2)` FFI
/// shim). Its root then carries `#![deny(unsafe_code)]` instead of
/// `forbid` — `forbid` would reject the shim's file-level
/// `#![allow(unsafe_code)]` override — and in exchange D5 tightens from
/// an attribute check to a token rule: the `unsafe` keyword is banned
/// outright in **every** file of that crate except the sanctioned shim,
/// so the confinement the compiler no longer proves is machine-checked
/// here instead.
pub const D5_SHIM_EXEMPT: &[(&str, &str)] =
    &[("crates/server/src/lib.rs", "crates/server/src/sys.rs")];

/// Identifies one conformance rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No FMA-contractible / expansion-order-dependent float intrinsics.
    D1,
    /// No ad-hoc threads or wall-clock reads outside the sanctioned crates.
    D2,
    /// No hash-ordered collections in numeric crates.
    D3,
    /// No panic paths in the untrusted-byte zones.
    D4,
    /// Crate roots must `#![forbid(unsafe_code)]`.
    D5,
    /// No `f32` in numeric crates.
    D6,
    /// Meta-rule: `conform: allow` annotations must be well-formed,
    /// justified, and actually suppress something.
    A0,
}

impl RuleId {
    /// All checkable source rules, in order (excludes the meta-rule).
    pub const ALL: [RuleId; 6] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
    ];

    /// Parses `"d1"` / `"D1"` / ... Returns `None` for unknown ids.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_lowercase().as_str() {
            "d1" => Some(RuleId::D1),
            "d2" => Some(RuleId::D2),
            "d3" => Some(RuleId::D3),
            "d4" => Some(RuleId::D4),
            "d5" => Some(RuleId::D5),
            "d6" => Some(RuleId::D6),
            "a0" => Some(RuleId::A0),
            _ => None,
        }
    }

    /// One-line description, used by `--list-rules` and the README table.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "no mul_add/powi/fma in numeric crates (FMA contraction breaks bit-identity)"
            }
            RuleId::D2 => {
                "no thread::spawn/Instant::now/SystemTime::now outside parallel, bench, server, \
                 and the obs clock file"
            }
            RuleId::D3 => "no HashMap/HashSet in numeric crates (iteration order feeds reductions)",
            RuleId::D4 => {
                "no unwrap/expect/panic!/unreachable!/todo!/assert! in untrusted-byte zones"
            }
            RuleId::D5 => {
                "every crate root must carry #![forbid(unsafe_code)] (shim-exempt crates: \
                 #![deny(unsafe_code)] at the root, `unsafe` only in the sanctioned shim file)"
            }
            RuleId::D6 => "no f32 in numeric crates (all numerics are f64 by contract)",
            RuleId::A0 => "conform: allow annotations must parse, justify, and suppress something",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::A0 => "A0",
        };
        f.write_str(s)
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which token rules apply to a workspace-relative path, and whether the
/// file is a crate root (D5). Paths must be `/`-separated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scope {
    pub d1: bool,
    pub d2: bool,
    pub d3: bool,
    pub d4: bool,
    pub d5: bool,
    pub d6: bool,
    /// D5's token form for [`D5_SHIM_EXEMPT`] crates: the `unsafe`
    /// keyword is banned in this file (it is not the sanctioned shim).
    pub d5_unsafe_token: bool,
}

impl Scope {
    /// Whether no rule at all applies (the file need not be read).
    pub fn is_empty(&self) -> bool {
        !(self.d1 || self.d2 || self.d3 || self.d4 || self.d5 || self.d6 || self.d5_unsafe_token)
    }
}

/// Splits `crates/<name>/src/<rest>` (or the facade's `src/<rest>`) into
/// the owning crate name and the path inside `src/`.
fn crate_src(path: &str) -> Option<(&str, &str)> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        let inside = tail.strip_prefix("src/")?;
        Some((name, inside))
    } else {
        path.strip_prefix("src/").map(|inside| ("p3gm", inside))
    }
}

/// Computes the rules in scope for a workspace-relative `/`-separated
/// path. Files outside every scope (tests, benches, examples, non-Rust
/// trees) come back [`Scope::is_empty`].
pub fn scope_for(path: &str) -> Scope {
    let mut scope = Scope::default();
    let Some((crate_name, inside)) = crate_src(path) else {
        return scope;
    };
    let numeric = NUMERIC_CRATES.contains(&crate_name);
    scope.d1 = numeric;
    scope.d3 = numeric;
    scope.d6 = numeric;
    scope.d2 = crate_name != "p3gm"
        && !D2_EXEMPT_CRATES.contains(&crate_name)
        && !D2_EXEMPT_FILES.contains(&path);
    scope.d4 = D4_ZONES
        .iter()
        .any(|zone| path == *zone || (zone.ends_with('/') && path.starts_with(zone)));
    scope.d5 = inside == "lib.rs" || inside == "main.rs";
    // Shim-exempt crates trade the compiler-proved `forbid` for a
    // conform-proved token ban: `unsafe` may appear only in the one
    // sanctioned shim file.
    scope.d5_unsafe_token = D5_SHIM_EXEMPT.iter().any(|(root, shim)| {
        let Some((dir, _)) = root.rsplit_once('/') else {
            return false;
        };
        path != *shim
            && path
                .strip_prefix(dir)
                .is_some_and(|rest| rest.starts_with('/'))
    });
    scope
}

/// A parsed `conform: allow(...)` annotation.
#[derive(Debug)]
struct AllowSite {
    /// Line the annotation's comment starts on (for reporting).
    comment_line: u32,
    /// Line whose violations it suppresses (same line for a trailing
    /// comment, the next code line for a standalone comment line).
    effective_line: Option<u32>,
    rules: Vec<RuleId>,
    /// The annotation could not be parsed or lacks a justification.
    malformed: bool,
    used: bool,
}

/// Checks one file's source against the rules in scope for `path`.
///
/// `path` must be workspace-relative and `/`-separated (as produced by
/// [`crate::scan_workspace`]). Returns all unsuppressed violations plus
/// any `A0` annotation problems; the empty vector means the file
/// conforms. Never panics, whatever `src` contains.
pub fn check_source(path: &str, src: &[u8]) -> Vec<Violation> {
    let scope = scope_for(path);
    if scope.is_empty() {
        return Vec::new();
    }
    let tokens = lex(src);
    let code: Vec<Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .copied()
        .collect();
    let comments: Vec<Token> = tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .copied()
        .collect();
    let in_test = test_item_mask(&code, src);

    // Annotations whose target line is `#[cfg(test)]` code are ignored
    // outright (the rules don't fire there, so they can be neither used
    // nor meaningfully stale).
    let test_lines: std::collections::BTreeSet<u32> = code
        .iter()
        .zip(in_test.iter())
        .filter(|(_, &t)| t)
        .map(|(tok, _)| tok.line)
        .collect();
    let mut allows: Vec<AllowSite> = collect_allows(&comments, &code, src)
        .into_iter()
        .filter(|site| {
            site.malformed
                || site
                    .effective_line
                    .is_none_or(|line| !test_lines.contains(&line))
        })
        .collect();
    let mut violations = Vec::new();

    let mut push = |line: u32, rule: RuleId, message: String, allows: &mut Vec<AllowSite>| {
        for site in allows.iter_mut() {
            if !site.malformed && site.effective_line == Some(line) && site.rules.contains(&rule) {
                site.used = true;
                return;
            }
        }
        violations.push(Violation {
            path: path.to_string(),
            line,
            rule,
            message,
        });
    };

    // --- Token rules over non-test code -------------------------------
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let tok = code[i];
        let text = tok.text(src);
        let next = code.get(i + 1).copied();
        let next_is = |p: u8| next.map(|t| t.kind) == Some(TokenKind::Punct(p));

        if scope.d1
            && tok.kind == TokenKind::Ident
            && matches!(text, b"mul_add" | b"powi" | b"fma")
            && next_is(b'(')
        {
            let name = String::from_utf8_lossy(text);
            push(
                tok.line,
                RuleId::D1,
                format!("`{name}` is FMA-contractible / expansion-order-dependent; spell the arithmetic out so codegen cannot reassociate it"),
                &mut allows,
            );
        }

        if scope.d2 && tok.kind == TokenKind::Ident {
            let tail = path_tail(&code, src, i);
            let banned = match text {
                b"thread" if tail == Some(b"spawn" as &[u8]) => Some("thread::spawn"),
                b"Instant" if tail == Some(b"now" as &[u8]) => Some("Instant::now"),
                b"SystemTime" if tail == Some(b"now" as &[u8]) => Some("SystemTime::now"),
                _ => None,
            };
            if let Some(call) = banned {
                push(
                    tok.line,
                    RuleId::D2,
                    format!("`{call}` outside crates/parallel, crates/bench, crates/server — all parallelism and timing go through p3gm-parallel or the server"),
                    &mut allows,
                );
            }
        }

        if scope.d3 && tok.kind == TokenKind::Ident && matches!(text, b"HashMap" | b"HashSet") {
            let name = String::from_utf8_lossy(text);
            push(
                tok.line,
                RuleId::D3,
                format!("`{name}` has randomized iteration order; use BTreeMap/BTreeSet or a Vec so reductions stay bit-identical"),
                &mut allows,
            );
        }

        if scope.d4 && tok.kind == TokenKind::Ident {
            let prev_is_dot = i > 0 && code[i - 1].kind == TokenKind::Punct(b'.');
            let method = match text {
                b"unwrap" if prev_is_dot && next_is(b'(') => Some(".unwrap()"),
                b"expect" if prev_is_dot && next_is(b'(') => Some(".expect(...)"),
                _ => None,
            };
            let mac = match text {
                b"panic" | b"unreachable" | b"todo" | b"unimplemented" | b"assert"
                | b"assert_eq" | b"assert_ne"
                    if next_is(b'!') =>
                {
                    Some(String::from_utf8_lossy(text))
                }
                _ => None,
            };
            if let Some(m) = method {
                push(
                    tok.line,
                    RuleId::D4,
                    format!("{m} in an untrusted-byte zone; return a typed error instead"),
                    &mut allows,
                );
            } else if let Some(m) = mac {
                push(
                    tok.line,
                    RuleId::D4,
                    format!("`{m}!` in an untrusted-byte zone; hostile input must map to a typed error, never a panic"),
                    &mut allows,
                );
            }
        }

        if scope.d5_unsafe_token && tok.kind == TokenKind::Ident && text == b"unsafe" {
            push(
                tok.line,
                RuleId::D5,
                "`unsafe` outside the sanctioned shim file of a D5 shim-exempt crate (see D5_SHIM_EXEMPT); all unsafe code must stay confined to that one file".to_string(),
                &mut allows,
            );
        }

        if scope.d6 && tok.kind == TokenKind::Ident && text == b"f32" {
            push(
                tok.line,
                RuleId::D6,
                "f32 in a numeric crate; the determinism and accuracy contracts are stated for f64 only".to_string(),
                &mut allows,
            );
        }
    }

    // --- D5: crate roots must forbid unsafe code ----------------------
    if scope.d5 {
        let shim_root = D5_SHIM_EXEMPT.iter().any(|(root, _)| path == *root);
        if shim_root {
            // A shim-exempt root must still deny unsafe crate-wide
            // (forbid would reject the shim's file-level allow; the
            // token rule above covers what deny leaves overridable).
            if !has_unsafe_lint(&code, src, b"deny") && !has_unsafe_lint(&code, src, b"forbid") {
                push(
                    1,
                    RuleId::D5,
                    "crate root of a D5 shim-exempt crate is missing `#![deny(unsafe_code)]`"
                        .to_string(),
                    &mut allows,
                );
            }
        } else if !has_unsafe_lint(&code, src, b"forbid") {
            push(
                1,
                RuleId::D5,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                &mut allows,
            );
        }
    }

    // --- A0: malformed / stale annotations ----------------------------
    for site in &allows {
        if site.malformed {
            violations.push(Violation {
                path: path.to_string(),
                line: site.comment_line,
                rule: RuleId::A0,
                message: "malformed annotation — expected `conform: allow(d1[, d4...]) — <justification>` with a non-empty justification".to_string(),
            });
        } else if !site.used {
            let rules: Vec<String> = site.rules.iter().map(|r| r.to_string()).collect();
            violations.push(Violation {
                path: path.to_string(),
                line: site.comment_line,
                rule: RuleId::A0,
                message: format!(
                    "stale `conform: allow({})` — it suppresses no violation; delete it",
                    rules.join(", ")
                ),
            });
        }
    }

    violations.sort_by_key(|a| (a.line, a.rule));
    violations
}

/// For D2: if `code[i]` is followed by `::ident`, the trailing ident.
fn path_tail<'a>(code: &[Token], src: &'a [u8], i: usize) -> Option<&'a [u8]> {
    if code.get(i + 1)?.kind != TokenKind::Punct(b':') {
        return None;
    }
    if code.get(i + 2)?.kind != TokenKind::Punct(b':') {
        return None;
    }
    let tail = code.get(i + 3)?;
    if tail.kind != TokenKind::Ident {
        return None;
    }
    Some(tail.text(src))
}

/// Whether the token stream contains `#![<level>(unsafe_code)]` for the
/// given lint level (token subsequence, so formatting and attribute
/// grouping don't matter).
fn has_unsafe_lint(code: &[Token], src: &[u8], level: &[u8]) -> bool {
    let mut i = 0;
    while i + 2 < code.len() {
        if code[i].kind == TokenKind::Punct(b'#')
            && code[i + 1].kind == TokenKind::Punct(b'!')
            && code[i + 2].kind == TokenKind::Punct(b'[')
        {
            let end = matching_bracket(code, i + 2);
            let mut saw_level = false;
            let mut saw_unsafe_code = false;
            for tok in code.iter().take(end).skip(i + 3) {
                if tok.kind == TokenKind::Ident {
                    let text = tok.text(src);
                    if text == level {
                        saw_level = true;
                    } else if text == b"unsafe_code" {
                        saw_unsafe_code = true;
                    }
                }
            }
            if saw_level && saw_unsafe_code {
                return true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    false
}

/// Index of the `]` matching the `[` at `open` (brackets nest inside
/// attributes via expressions). Returns `code.len() - 1`-ish bounds-safe
/// fallback when unmatched.
fn matching_bracket(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < code.len() {
        match code[i].kind {
            TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Marks tokens belonging to `#[cfg(test)]` items (the attribute, any
/// stacked attributes after it, and the item body through its matching
/// closing brace or terminating semicolon).
fn test_item_mask(code: &[Token], src: &[u8]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        // Inner attribute `#![...]`: skip, never a test item marker.
        if code[i].kind == TokenKind::Punct(b'#')
            && code.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'!'))
            && code.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct(b'['))
        {
            i = matching_bracket(code, i + 2) + 1;
            continue;
        }
        // Outer attribute `#[...]`.
        if code[i].kind == TokenKind::Punct(b'#')
            && code.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'['))
        {
            let close = matching_bracket(code, i + 1);
            if attr_is_cfg_test(code, src, i + 2, close) {
                let start = i;
                // Skip any further stacked attributes.
                let mut j = close + 1;
                while j < code.len()
                    && code[j].kind == TokenKind::Punct(b'#')
                    && code.get(j + 1).map(|t| t.kind) == Some(TokenKind::Punct(b'['))
                {
                    j = matching_bracket(code, j + 1) + 1;
                }
                // Consume the item: through a balanced `{...}` block or
                // to a top-level `;`, whichever comes first.
                let mut depth = 0usize;
                while j < code.len() {
                    match code[j].kind {
                        TokenKind::Punct(b'{') => depth += 1,
                        TokenKind::Punct(b'}') => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        TokenKind::Punct(b';') if depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for flag in mask.iter_mut().take(j.min(code.len())).skip(start) {
                    *flag = true;
                }
                i = j;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether the attribute tokens in `code[start..close]` spell a
/// `cfg(...)` whose arguments mention `test`.
fn attr_is_cfg_test(code: &[Token], src: &[u8], start: usize, close: usize) -> bool {
    let mut saw_cfg = false;
    let mut saw_test = false;
    for tok in code.iter().take(close).skip(start) {
        if tok.kind == TokenKind::Ident {
            match tok.text(src) {
                b"cfg" => saw_cfg = true,
                b"test" => saw_test = true,
                _ => {}
            }
        }
    }
    saw_cfg && saw_test
}

/// Extracts every `conform: allow(...)` annotation from the comments.
fn collect_allows(comments: &[Token], code: &[Token], src: &[u8]) -> Vec<AllowSite> {
    let mut sites = Vec::new();
    for comment in comments {
        let Some((rules, well_formed)) = parse_allow(comment.text(src)) else {
            continue;
        };
        let trailing = code
            .iter()
            .any(|t| t.line == comment.line && t.start < comment.start);
        let effective_line = if trailing {
            Some(comment.line)
        } else {
            // Standalone comment line: applies to the next code line.
            code.iter().map(|t| t.line).find(|&l| l > comment.line)
        };
        sites.push(AllowSite {
            comment_line: comment.line,
            effective_line,
            rules,
            malformed: !well_formed,
            used: false,
        });
    }
    sites
}

/// Parses one comment's bytes. Returns `Some((rules, well_formed))` when
/// the comment *is* an annotation — i.e. `conform:` is the first thing
/// after the comment opener (so prose that merely mentions the marker,
/// `p3gm_conform::` paths, and doc examples showing annotations after
/// code are not annotations). `well_formed` is false when the
/// annotation is unparseable or lacks a justification.
fn parse_allow(comment: &[u8]) -> Option<(Vec<RuleId>, bool)> {
    let text = String::from_utf8_lossy(comment);
    let stripped = text.trim_start_matches(['/', '!', '*']).trim_start();
    let rest = stripped.strip_prefix("conform:")?.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Some((Vec::new(), false));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some((Vec::new(), false));
    };
    let Some(close) = rest.find(')') else {
        return Some((Vec::new(), false));
    };
    let mut rules = Vec::new();
    for part in rest[..close].split(',') {
        match RuleId::parse(part) {
            Some(rule) => rules.push(rule),
            None => return Some((Vec::new(), false)),
        }
    }
    if rules.is_empty() {
        return Some((Vec::new(), false));
    }
    // Justification: a dash separator followed by non-empty prose.
    let after = rest[close + 1..].trim_start();
    let justification = after
        .strip_prefix("—")
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix('-'))
        .or_else(|| after.strip_prefix(':'))
        .map(str::trim);
    match justification {
        Some(j) if j.chars().filter(|c| c.is_alphanumeric()).count() >= 3 => Some((rules, true)),
        _ => Some((rules, false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NUMERIC_PATH: &str = "crates/linalg/src/matrix.rs";
    const ZONE_PATH: &str = "crates/store/src/lib.rs";

    fn rules_hit(path: &str, src: &str) -> Vec<RuleId> {
        check_source(path, src.as_bytes())
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn scope_assignment() {
        let s = scope_for("crates/linalg/src/matrix.rs");
        assert!(s.d1 && s.d3 && s.d6 && s.d2 && !s.d4 && !s.d5);
        let s = scope_for("crates/linalg/src/lib.rs");
        assert!(s.d5);
        let s = scope_for("crates/server/src/http.rs");
        assert!(!s.d1 && !s.d2 && s.d4 && !s.d5 && s.d5_unsafe_token);
        // Server files carry no token rule but the D5 unsafe ban (the
        // crate root denies rather than forbids, for the sys.rs shim).
        let s = scope_for("crates/server/src/registry.rs");
        assert!(!s.is_empty() && s.d5_unsafe_token && !s.d4 && !s.d2);
        // The sanctioned shim itself is the one file allowed `unsafe`.
        let s = scope_for("crates/server/src/sys.rs");
        assert!(s.is_empty() && !s.d5_unsafe_token);
        let s = scope_for("crates/server/src/lib.rs");
        assert!(s.d5 && s.d5_unsafe_token);
        // Other crates are untouched by the shim exemption.
        let s = scope_for("crates/obs/src/metrics.rs");
        assert!(!s.d5_unsafe_token);
        let s = scope_for("crates/parallel/src/lib.rs");
        assert!(!s.d2 && s.d5);
        let s = scope_for("crates/store/src/lib.rs");
        assert!(s.d4 && s.d5 && s.d2);
        let s = scope_for("src/lib.rs");
        assert!(s.d5 && !s.d2);
        // The obs crate is under D2 except its one sanctioned clock file.
        let s = scope_for("crates/obs/src/lib.rs");
        assert!(s.d2 && s.d5 && !s.d1);
        let s = scope_for("crates/obs/src/time.rs");
        assert!(!s.d2 && !s.d5 && s.is_empty());
        assert!(scope_for("tests/conformance.rs").is_empty());
        assert!(scope_for("crates/linalg/benches/kernels.rs").is_empty());
        assert!(scope_for("vendor/rand/src/lib.rs").is_empty());
    }

    #[test]
    fn d1_fires_on_fma_style_calls() {
        let src = "fn f(a: f64) -> f64 { a.mul_add(2.0, 1.0) }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![RuleId::D1]);
        let src = "fn f(a: f64) -> f64 { a.powi(3) }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![RuleId::D1]);
        // Mentions in comments and strings do not count.
        let src = "// no mul_add here\nfn f() -> &'static str { \"powi(2)\" }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![]);
        // An identifier that merely contains the name does not count.
        let src = "fn f(powi_table: &[f64]) -> f64 { powi_table[0] }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![]);
    }

    #[test]
    fn d2_fires_on_threads_and_clocks() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![RuleId::D2]);
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![RuleId::D2]);
        let src = "fn f() { let t = SystemTime::now(); }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![RuleId::D2]);
        // The sanctioned crates are exempt.
        assert_eq!(
            rules_hit(
                "crates/parallel/src/pool.rs",
                "fn f() { std::thread::spawn(|| {}); }"
            ),
            vec![]
        );
        // `Instant::elapsed`, `thread::sleep` etc. are fine.
        let src = "fn f(t: Instant) { let _ = t.elapsed(); thread::sleep(d); }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![]);
    }

    #[test]
    fn d3_fires_on_hash_collections() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); }";
        let hits = rules_hit(NUMERIC_PATH, src);
        assert!(!hits.is_empty() && hits.iter().all(|r| *r == RuleId::D3));
        let src = "use std::collections::BTreeMap;";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![]);
    }

    #[test]
    fn d4_fires_on_panic_paths_in_zones() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }";
        assert_eq!(rules_hit(ZONE_PATH, src), vec![RuleId::D4, RuleId::D5]);
        let src = "#![forbid(unsafe_code)]\nfn f(v: Option<u32>) -> u32 { v.expect(\"set\") }";
        assert_eq!(rules_hit(ZONE_PATH, src), vec![RuleId::D4]);
        let src = "#![forbid(unsafe_code)]\nfn f() { panic!(\"boom\"); }";
        assert_eq!(rules_hit(ZONE_PATH, src), vec![RuleId::D4]);
        let src = "#![forbid(unsafe_code)]\nfn f(n: usize) { assert!(n < 4); }";
        assert_eq!(rules_hit(ZONE_PATH, src), vec![RuleId::D4]);
        // unwrap_or_else / unwrap_or are fine; debug_assert compiles out.
        let src = "#![forbid(unsafe_code)]\nfn f(v: Option<u32>) -> u32 { debug_assert!(true); v.unwrap_or_else(|| 0).min(v.unwrap_or(1)) }";
        assert_eq!(rules_hit(ZONE_PATH, src), vec![]);
        // Outside a zone, unwrap is not D4's business.
        assert_eq!(
            rules_hit(NUMERIC_PATH, "fn f(v: Option<u32>) -> u32 { v.unwrap() }"),
            vec![]
        );
    }

    #[test]
    fn d4_skips_cfg_test_items() {
        let src = r#"#![forbid(unsafe_code)]
fn decode(v: Option<u32>) -> Option<u32> { v }

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        super::decode(Some(1)).unwrap();
        panic!("tests may panic");
    }
}
"#;
        assert_eq!(rules_hit(ZONE_PATH, src), vec![]);
        // ... but code after the test module is still checked.
        let tail = format!("{src}\nfn late(v: Option<u32>) -> u32 {{ v.unwrap() }}");
        assert_eq!(rules_hit(ZONE_PATH, &tail), vec![RuleId::D4]);
    }

    #[test]
    fn d5_requires_forbid_unsafe() {
        assert_eq!(
            rules_hit("crates/linalg/src/lib.rs", "pub mod matrix;"),
            vec![RuleId::D5]
        );
        assert_eq!(
            rules_hit(
                "crates/linalg/src/lib.rs",
                "//! Docs first.\n#![forbid(unsafe_code)]\npub mod matrix;"
            ),
            vec![]
        );
        // deny is not forbid.
        assert_eq!(
            rules_hit(
                "crates/linalg/src/lib.rs",
                "#![deny(unsafe_code)]\npub mod m;"
            ),
            vec![RuleId::D5]
        );
        // Non-root server files carry no attribute requirement (the
        // shim exemption's token rule watches them instead).
        assert_eq!(
            rules_hit("crates/server/src/registry.rs", "pub fn f() {}"),
            vec![]
        );
    }

    #[test]
    fn d5_shim_exemption_accepts_deny_at_the_root() {
        // The shim-exempt root may deny instead of forbid...
        assert_eq!(
            rules_hit(
                "crates/server/src/lib.rs",
                "#![deny(unsafe_code)]\npub mod http;"
            ),
            vec![]
        );
        // ...forbid is also fine (stricter than required)...
        assert_eq!(
            rules_hit(
                "crates/server/src/lib.rs",
                "#![forbid(unsafe_code)]\npub mod http;"
            ),
            vec![]
        );
        // ...but no unsafe lint at all still fails D5.
        assert_eq!(
            rules_hit("crates/server/src/lib.rs", "pub mod http;"),
            vec![RuleId::D5]
        );
        // allow(unsafe_code) at the root does not satisfy the deny check.
        assert_eq!(
            rules_hit(
                "crates/server/src/lib.rs",
                "#![allow(unsafe_code)]\npub mod http;"
            ),
            vec![RuleId::D5]
        );
    }

    #[test]
    fn d5_bans_the_unsafe_token_outside_the_shim() {
        let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }";
        // Any server file other than the shim: D5 fires on the token.
        assert_eq!(
            rules_hit("crates/server/src/registry.rs", src),
            vec![RuleId::D5]
        );
        // The crate root itself is also covered by the token rule.
        let root = format!("#![deny(unsafe_code)]\n{src}");
        assert_eq!(
            rules_hit("crates/server/src/lib.rs", &root),
            vec![RuleId::D5]
        );
        // The sanctioned shim is out of scope entirely.
        assert_eq!(rules_hit("crates/server/src/sys.rs", src), vec![]);
        // Mentions in comments and strings do not count.
        assert_eq!(
            rules_hit(
                "crates/server/src/registry.rs",
                "// unsafe in prose\nfn f() -> &'static str { \"unsafe\" }"
            ),
            vec![]
        );
        // Other crates' non-root files never pick up the token rule.
        assert_eq!(rules_hit("crates/obs/src/metrics.rs", src), vec![]);
    }

    #[test]
    fn d6_fires_on_f32() {
        assert_eq!(
            rules_hit(NUMERIC_PATH, "fn f(x: f32) -> f32 { x }"),
            vec![RuleId::D6, RuleId::D6]
        );
        assert_eq!(rules_hit(NUMERIC_PATH, "fn f(x: f64) -> f64 { x }"), vec![]);
    }

    #[test]
    fn allow_suppresses_with_justification() {
        let src = "fn f(a: f64, t: i32) -> f64 { a.powi(t) } // conform: allow(d1) — scalar of a loop counter, no reduction order at stake";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![]);
        // Standalone annotation on the line above.
        let src = "// conform: allow(d1) — scalar bias correction\nfn f(a: f64, t: i32) -> f64 { a.powi(t) }";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![]);
        // Multiple rules in one annotation.
        let src = "fn f(m: &HashMap<u32, f32>) {} // conform: allow(d3, d6) — adapter signature mandated by an external trait";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![]);
    }

    #[test]
    fn allow_without_justification_is_malformed() {
        let src = "fn f(a: f64) -> f64 { a.powi(2) } // conform: allow(d1)";
        let hits = rules_hit(NUMERIC_PATH, src);
        // The annotation does not suppress, and is itself flagged.
        assert!(hits.contains(&RuleId::D1), "{hits:?}");
        assert!(hits.contains(&RuleId::A0), "{hits:?}");
        let src = "fn f(a: f64) -> f64 { a.powi(2) } // conform: allow(d1) — ";
        let hits = rules_hit(NUMERIC_PATH, src);
        assert!(hits.contains(&RuleId::A0), "{hits:?}");
        // Unknown rule name.
        let src = "fn f() {} // conform: allow(d9) — whatever";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![RuleId::A0]);
    }

    #[test]
    fn stale_allow_is_flagged() {
        let src =
            "fn f(a: f64) -> f64 { a + 1.0 } // conform: allow(d1) — left over from a deleted powi";
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![RuleId::A0]);
        // An allow for the wrong rule is stale even when another fires.
        let src = "fn f(a: f32) -> f32 { a } // conform: allow(d1) — wrong rule id";
        let hits = rules_hit(NUMERIC_PATH, src);
        assert!(
            hits.contains(&RuleId::D6) && hits.contains(&RuleId::A0),
            "{hits:?}"
        );
    }

    #[test]
    fn allow_in_test_code_is_ignored() {
        let src = r#"#[cfg(test)]
mod tests {
    // conform: allow(d1) — annotations in test code are inert
    fn helper(a: f64) -> f64 { a.powi(2) }
}
"#;
        assert_eq!(rules_hit(NUMERIC_PATH, src), vec![]);
    }

    #[test]
    fn out_of_scope_files_produce_nothing() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() } // mul_add powi HashMap f32";
        assert_eq!(rules_hit("tests/integration.rs", src), vec![]);
        assert_eq!(rules_hit("vendor/rand/src/lib.rs", src), vec![]);
    }

    #[test]
    fn violations_carry_location_and_text() {
        let src = "#![forbid(unsafe_code)]\n\nfn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let violations = check_source(ZONE_PATH, src.as_bytes());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 4);
        assert_eq!(violations[0].rule, RuleId::D4);
        assert!(violations[0]
            .to_string()
            .contains("crates/store/src/lib.rs:4"));
    }
}
