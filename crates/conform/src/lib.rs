//! # p3gm-conform — machine-checked determinism & hardening contracts
//!
//! The P3GM workspace rests on two repo-wide contracts that ordinary
//! tests can only spot-check:
//!
//! * **Determinism** — every result is bit-identical under any thread
//!   count (`P3GM_THREADS`): no FMA contraction, fixed reduction order,
//!   all parallelism through `p3gm-parallel`.
//! * **Hardening** — the byte-facing layers (`p3gm-store` decode,
//!   `server::http`, `server::json`, the ledger load path) never panic
//!   on untrusted input; hostile bytes map to typed errors.
//!
//! This crate turns those contracts into a static-analysis pass: a
//! hand-rolled, panic-free [`lexer`] (comment / string / raw-string /
//! char-literal aware, total on arbitrary bytes) feeds a token-stream
//! [`rules`] engine that walks every workspace crate's sources and
//! enforces the named rules D1–D6 (see [`rules`] for the table).
//! Violations are suppressible only by an in-review-visible annotation
//! trailing the offending line:
//!
//! ```text
//! let c = d.powi(t); // conform: allow(d1) — <why this one site is sound>
//! ```
//!
//! Ship shape: this library (unit- and proptest-covered), the
//! `p3gm-conform` binary for CI, and the workspace's `tests/conformance.rs`
//! which runs the pass inside tier-1 `cargo test`.
//!
//! ```no_run
//! let report = p3gm_conform::scan_workspace(std::path::Path::new(".")).unwrap();
//! assert!(report.violations.is_empty(), "{}", report.render());
//! ```

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use lexer::{lex, Token, TokenKind};
pub use rules::{check_source, scope_for, RuleId, Scope, Violation};

use std::path::{Path, PathBuf};

/// Directories never descended into: vendored stand-ins (external code,
/// not bound by the contracts), build output, VCS metadata.
pub const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "node_modules"];

/// The outcome of a workspace scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Files that had at least one rule in scope and were checked.
    pub files_checked: usize,
    /// All unsuppressed violations, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
}

impl Report {
    /// Whether the workspace conforms.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations, one per line, ready to print.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// Walks the workspace rooted at `root` and checks every `.rs` file that
/// has a rule in scope. Traversal order is sorted by file name, so the
/// report is deterministic for a given tree — the analyzer holds itself
/// to the contract it enforces.
///
/// `Err` is returned only when the walk itself fails (unreadable root or
/// file); rule violations are data, not errors.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut pending: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = pending.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    pending.push(path);
                }
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let rel = relative_path(root, &path);
            if scope_for(&rel).is_empty() {
                continue;
            }
            let src = std::fs::read(&path)?;
            report.files_checked += 1;
            report.violations.extend(check_source(&rel, &src));
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/w");
        let p = Path::new("/w/crates/linalg/src/lib.rs");
        assert_eq!(relative_path(root, p), "crates/linalg/src/lib.rs");
    }

    #[test]
    fn scan_reports_seeded_violations_and_skips_vendor() {
        let dir = std::env::temp_dir().join(format!("p3gm_conform_scan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/linalg/src")).unwrap();
        std::fs::create_dir_all(dir.join("vendor/rand/src")).unwrap();
        std::fs::write(
            dir.join("crates/linalg/src/lib.rs"),
            "#![forbid(unsafe_code)]\nfn f(a: f64) -> f64 { a.mul_add(2.0, 1.0) }\n",
        )
        .unwrap();
        // The same violation under vendor/ must be invisible.
        std::fs::write(
            dir.join("vendor/rand/src/lib.rs"),
            "fn f(a: f64) -> f64 { a.mul_add(2.0, 1.0) }\n",
        )
        .unwrap();
        let report = scan_workspace(&dir).unwrap();
        assert_eq!(report.files_checked, 1);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, RuleId::D1);
        assert_eq!(report.violations[0].path, "crates/linalg/src/lib.rs");
        assert!(report.render().contains("crates/linalg/src/lib.rs:2: D1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_of_a_clean_tree_is_clean() {
        let dir = std::env::temp_dir().join(format!("p3gm_conform_clean_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/mixture/src")).unwrap();
        std::fs::write(
            dir.join("crates/mixture/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f(x: f64) -> f64 { x * x }\n",
        )
        .unwrap();
        let report = scan_workspace(&dir).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.files_checked, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
