//! `p3gm-conform` — the CI entry point for the workspace conformance
//! pass. See the `p3gm_conform` library docs for the rules.
//!
//! ```text
//! usage: p3gm-conform [--list-rules] [ROOT]
//! ```
//!
//! Scans the workspace rooted at `ROOT` (default: the current
//! directory), printing one line per violation. Exit status: `0` when
//! the tree conforms, `1` when violations were found, `2` on usage or
//! I/O errors — so CI can distinguish "dirty tree" from "broken run".

#![forbid(unsafe_code)]

use p3gm_conform::{scan_workspace, RuleId};
use std::path::Path;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<String> = None;
    for arg in &args {
        match arg.as_str() {
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{rule}: {}", rule.summary());
                }
                println!("{}: {}", RuleId::A0, RuleId::A0.summary());
                return 0;
            }
            "--help" | "-h" => {
                println!("usage: p3gm-conform [--list-rules] [ROOT]");
                return 0;
            }
            _ if arg.starts_with('-') => {
                eprintln!("p3gm-conform: unknown flag `{arg}`");
                eprintln!("usage: p3gm-conform [--list-rules] [ROOT]");
                return 2;
            }
            _ => {
                if root.is_some() {
                    eprintln!("p3gm-conform: more than one ROOT given");
                    return 2;
                }
                root = Some(arg.clone());
            }
        }
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    match scan_workspace(Path::new(&root)) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                println!(
                    "p3gm-conform: {} files checked, 0 violations",
                    report.files_checked
                );
                0
            } else {
                println!(
                    "p3gm-conform: {} files checked, {} violations",
                    report.files_checked,
                    report.violations.len()
                );
                1
            }
        }
        Err(e) => {
            eprintln!("p3gm-conform: scan of `{root}` failed: {e}");
            2
        }
    }
}
