//! A hand-rolled, panic-free lexer for Rust source **bytes**.
//!
//! The rule engine ([`crate::rules`]) needs just enough lexical structure
//! to match token patterns in *code* while never being fooled by the same
//! characters inside comments, string literals, raw strings, or char
//! literals — and it must survive arbitrary (adversarial, non-UTF-8,
//! truncated) input without panicking, because the analyzer itself is
//! bound by the workspace's "never panic on untrusted bytes" contract.
//!
//! The lexer is deliberately *not* a full Rust tokenizer: it classifies
//! exactly the shapes the rules consume (identifiers, numbers, literals,
//! comments, single-byte punctuation) and guarantees two properties the
//! proptest suite pins down:
//!
//! 1. **Totality** — `lex` returns for every possible byte string; all
//!    indexing is bounds-checked, unterminated literals and comments
//!    extend to end of input.
//! 2. **Losslessness** — token spans are monotonically increasing,
//!    non-overlapping, and cover every non-whitespace byte, so the
//!    original source can be reconstructed from spans plus whitespace.
//!
//! Byte values ≥ 0x80 are treated as identifier characters (a superset
//! of Rust's XID rules — good enough for matching ASCII rule tokens,
//! and total on invalid UTF-8).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `r#raw` identifiers).
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// One byte of punctuation (`.`, `(`, `::` is two `:` tokens, ...).
    Punct(u8),
    /// String literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime: `'ident` (no closing quote).
    Lifetime,
    /// Line comment `// ...` (including `///` and `//!`), newline excluded.
    LineComment,
    /// Block comment `/* ... */`, nesting-aware.
    BlockComment,
    /// Any byte the lexer cannot classify (e.g. a stray `'`).
    Unknown,
}

/// One lexed token: kind plus its byte span and 1-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's bytes within `src`. Returns an empty slice rather than
    /// panicking if the span is somehow out of bounds.
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        src.get(self.start..self.end).unwrap_or(&[])
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Lexes `src` completely. Total: never panics, consumes every byte.
pub fn lex(src: &[u8]) -> Vec<Token> {
    Lexer {
        src,
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line = self.line.saturating_add(1);
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.src.len() {
                break;
            }
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while let Some(b) = self.peek(0) {
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind(b);
            // Totality backstop: every branch must advance; if one did
            // not (a bug, not expected), consume the byte as Unknown so
            // the loop always terminates.
            if self.pos == start {
                self.bump();
                tokens.push(Token {
                    kind: TokenKind::Unknown,
                    start,
                    end: self.pos,
                    line,
                });
                continue;
            }
            tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        tokens
    }

    fn next_kind(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' => match self.peek(1) {
                Some(b'/') => self.line_comment(),
                Some(b'*') => self.block_comment(),
                _ => self.punct(),
            },
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'0'..=b'9' => self.number(),
            _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
            _ => self.punct(),
        }
    }

    fn punct(&mut self) -> TokenKind {
        let b = self.peek(0).unwrap_or(0);
        self.bump();
        if b.is_ascii_graphic() {
            TokenKind::Punct(b)
        } else {
            TokenKind::Unknown
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        // Consume `/*`, then track nesting; unterminated runs to EOF.
        self.bump_n(2);
        let mut depth = 1usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment
    }

    /// A `"..."` string with `\` escapes; unterminated runs to EOF.
    fn string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// A raw string starting at `r` (hashes already counted by caller):
    /// consumes `r#*"` then scans for `"#*`; unterminated runs to EOF.
    fn raw_string(&mut self, hashes: usize) -> TokenKind {
        // `r` + hashes + opening quote.
        self.bump_n(1 + hashes + 1);
        while self.peek(0).is_some() {
            if self.peek(0) == Some(b'"') {
                let mut matched = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    self.bump_n(1 + hashes);
                    return TokenKind::Str;
                }
            }
            self.bump();
        }
        TokenKind::Str
    }

    /// `'` — a char literal, byte-for-byte lookahead, or a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        match self.peek(1) {
            // `'\...'`: escaped char literal. Consume the quote, the
            // backslash, and the escape-class byte (which may itself be
            // `\` or `'`), then scan to the closing quote — no escape
            // can contain a further `'` before the close.
            Some(b'\\') => {
                self.bump_n(3);
                while let Some(b) = self.peek(0) {
                    match b {
                        b'\'' => {
                            self.bump();
                            break;
                        }
                        b'\n' => break, // unterminated; don't eat the file
                        _ => self.bump(),
                    }
                }
                TokenKind::Char
            }
            // `'x'` (single non-quote, non-backslash byte then `'`).
            Some(c) if c != b'\'' && self.peek(2) == Some(b'\'') && !is_ident_continue(c) => {
                self.bump_n(3);
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // Could still be 'x' (char) or 'ident (lifetime): consume
                // the identifier run, then check for a closing quote.
                self.bump(); // the `'`
                while let Some(b) = self.peek(0) {
                    if is_ident_continue(b) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                }
            }
            // `'('`-style: single punctuation char literal.
            Some(c) if c != b'\'' && self.peek(2) == Some(b'\'') => {
                self.bump_n(3);
                TokenKind::Char
            }
            _ => {
                self.bump();
                TokenKind::Unknown
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        // Integer part (covers 0x/0b/0o digits and `_` separators).
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: consume `.` only when followed by a digit, so
        // `4096.unwrap()`-style method calls keep their `.` punct.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while let Some(b) = self.peek(0) {
                if b.is_ascii_alphanumeric() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent sign (`1e-9`): the `e` was consumed above; a sign
        // followed by digits continues the literal.
        if (self.src.get(self.pos.wrapping_sub(1)) == Some(&b'e')
            || self.src.get(self.pos.wrapping_sub(1)) == Some(&b'E'))
            && matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            while let Some(b) = self.peek(0) {
                if b.is_ascii_alphanumeric() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        TokenKind::Number
    }

    /// An identifier — or a literal prefix (`r""`, `b''`, `br#""#`,
    /// `c""`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        // Raw strings and raw identifiers first: `r` / `br` / `cr`.
        let (prefix_len, raw_capable) = match (self.peek(0), self.peek(1)) {
            (Some(b'r'), _) => (0, true),
            (Some(b'b') | Some(b'c'), Some(b'r')) => (1, true),
            _ => (0, false),
        };
        if raw_capable {
            let mut hashes = 0usize;
            while self.peek(prefix_len + 1 + hashes) == Some(b'#') {
                hashes += 1;
            }
            match self.peek(prefix_len + 1 + hashes) {
                Some(b'"') => {
                    self.bump_n(prefix_len);
                    return self.raw_string(hashes);
                }
                // `r#ident` raw identifier (exactly one hash, no quote).
                Some(c) if hashes == 1 && prefix_len == 0 && is_ident_start(c) => {
                    self.bump_n(2);
                    while let Some(b) = self.peek(0) {
                        if is_ident_continue(b) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    return TokenKind::Ident;
                }
                _ => {}
            }
        }
        // `b"..."`, `c"..."`, `b'x'` prefixed literals.
        match (self.peek(0), self.peek(1)) {
            (Some(b'b') | Some(b'c'), Some(b'"')) => {
                self.bump();
                return self.string();
            }
            (Some(b'b'), Some(b'\'')) => {
                self.bump();
                return self.char_or_lifetime();
            }
            _ => {}
        }
        // Plain identifier.
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src.as_bytes()).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src.as_bytes())
            .iter()
            .map(|t| String::from_utf8_lossy(t.text(src.as_bytes())).into_owned())
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(texts("x.unwrap()"), vec!["x", ".", "unwrap", "(", ")"],);
        assert_eq!(
            kinds("a::b"),
            vec![
                TokenKind::Ident,
                TokenKind::Punct(b':'),
                TokenKind::Punct(b':'),
                TokenKind::Ident
            ],
        );
    }

    #[test]
    fn comments_are_single_tokens() {
        assert_eq!(
            kinds("a // mul_add in a comment\nb"),
            vec![TokenKind::Ident, TokenKind::LineComment, TokenKind::Ident],
        );
        assert_eq!(
            kinds("a /* outer /* nested mul_add */ still */ b"),
            vec![TokenKind::Ident, TokenKind::BlockComment, TokenKind::Ident],
        );
    }

    #[test]
    fn strings_swallow_rule_tokens() {
        assert_eq!(
            kinds(r#"let s = "call mul_add() here";"#),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct(b'='),
                TokenKind::Str,
                TokenKind::Punct(b';'),
            ],
        );
        assert_eq!(
            kinds(r##"let s = r#"raw "quoted" mul_add"#;"##),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct(b'='),
                TokenKind::Str,
                TokenKind::Punct(b';'),
            ],
        );
        assert_eq!(
            kinds(r#"b"bytes" c"cstr""#),
            vec![TokenKind::Str, TokenKind::Str]
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        assert_eq!(kinds(r#""a\"b" x"#), vec![TokenKind::Str, TokenKind::Ident]);
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\n'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\''"), vec![TokenKind::Char]);
        assert_eq!(kinds("b'x'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'('"), vec![TokenKind::Char]);
        assert_eq!(
            kinds("&'static str"),
            vec![
                TokenKind::Punct(b'&'),
                TokenKind::Lifetime,
                TokenKind::Ident,
            ],
        );
        // A lifetime followed by a generic close must not eat the `>`.
        assert_eq!(
            kinds("Foo<'a>"),
            vec![
                TokenKind::Ident,
                TokenKind::Punct(b'<'),
                TokenKind::Lifetime,
                TokenKind::Punct(b'>'),
            ],
        );
    }

    #[test]
    fn numbers_keep_method_dots() {
        assert_eq!(texts("0.5.sqrt"), vec!["0.5", ".", "sqrt"]);
        assert_eq!(texts("1e-9"), vec!["1e-9"]);
        assert_eq!(texts("0xFF_u32"), vec!["0xFF_u32"]);
        assert_eq!(texts("4096.powi"), vec!["4096", ".", "powi"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#type"), vec![TokenKind::Ident]);
        assert_eq!(texts("r#type"), vec!["r#type"]);
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        assert_eq!(kinds("\"never closed"), vec![TokenKind::Str]);
        assert_eq!(kinds("r#\"never closed\""), vec![TokenKind::Str]);
        assert_eq!(kinds("/* never closed"), vec![TokenKind::BlockComment]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex(b"a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn non_utf8_bytes_lex_without_panicking() {
        let src = [b'a', 0xFF, 0xFE, b' ', b'+', 0x00, b'z'];
        let toks = lex(&src);
        assert!(!toks.is_empty());
        // Spans are monotone and in bounds.
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end);
            assert!(t.end <= src.len());
            assert!(t.end > t.start);
            prev_end = t.end;
        }
    }
}
