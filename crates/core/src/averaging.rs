//! Polyak (exponential moving) averaging of parameter iterates.
//!
//! DP-SGD adds independent noise at every step, so the *last* iterate is a
//! high-variance draw around the optimum while the average of the trailing
//! iterates cancels most of the injected noise. Averaging is post-processing
//! of the privatized gradients, so it costs no additional privacy budget —
//! and it also smooths the non-private trainers at no cost.

/// Exponential moving average of flat parameter vectors.
#[derive(Debug, Clone)]
pub struct PolyakAverager {
    decay: f64,
    steps: u64,
    /// `decay^steps`, maintained incrementally — one multiply per
    /// update in a fixed order, so the bias correction never goes
    /// through `powi` (whose expansion order codegen may choose).
    decay_pow: f64,
    avg: Vec<f64>,
}

impl PolyakAverager {
    /// Creates an averager with the given per-step decay in `[0, 1)`; the
    /// effective averaging window is roughly `(1 + decay) / (1 - decay)`
    /// steps.
    pub fn new(decay: f64) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        PolyakAverager {
            decay,
            steps: 0,
            decay_pow: 1.0,
            avg: Vec::new(),
        }
    }

    /// Number of iterates folded in so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Folds one iterate into the average. A length change resets the
    /// average (the parameter vector belongs to a different model).
    pub fn update(&mut self, params: &[f64]) {
        if self.avg.len() != params.len() {
            self.avg = vec![0.0; params.len()];
            self.steps = 0;
            self.decay_pow = 1.0;
        }
        self.steps += 1;
        self.decay_pow *= self.decay;
        let d = self.decay;
        for (a, &p) in self.avg.iter_mut().zip(params.iter()) {
            *a = d * *a + (1.0 - d) * p;
        }
    }

    /// The bias-corrected average, or `None` before the first update.
    pub fn average(&self) -> Option<Vec<f64>> {
        if self.steps == 0 {
            return None;
        }
        let correction = 1.0 - self.decay_pow;
        Some(self.avg.iter().map(|&a| a / correction).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_average_is_none() {
        let avg = PolyakAverager::new(0.9);
        assert!(avg.average().is_none());
        assert_eq!(avg.steps(), 0);
    }

    #[test]
    fn single_update_is_identity() {
        // Bias correction makes the first average equal the first iterate.
        let mut avg = PolyakAverager::new(0.9);
        avg.update(&[2.0, -3.0]);
        let a = avg.average().unwrap();
        assert!((a[0] - 2.0).abs() < 1e-12);
        assert!((a[1] + 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sequence_averages_to_constant() {
        let mut avg = PolyakAverager::new(0.95);
        for _ in 0..100 {
            avg.update(&[1.5]);
        }
        assert!((avg.average().unwrap()[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn noise_is_suppressed() {
        // Alternating ±1 around 10: the average should be much closer to 10
        // than the raw iterates.
        let mut avg = PolyakAverager::new(0.95);
        for i in 0..200 {
            let noise = if i % 2 == 0 { 1.0 } else { -1.0 };
            avg.update(&[10.0 + noise]);
        }
        assert!((avg.average().unwrap()[0] - 10.0).abs() < 0.1);
    }

    #[test]
    fn length_change_resets() {
        let mut avg = PolyakAverager::new(0.9);
        avg.update(&[1.0]);
        avg.update(&[5.0, 5.0]);
        assert_eq!(avg.steps(), 1);
        let a = avg.average().unwrap();
        assert!((a[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decay must be in [0, 1)")]
    fn rejects_bad_decay() {
        let _ = PolyakAverager::new(1.0);
    }
}
