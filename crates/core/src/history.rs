//! Per-epoch training statistics.
//!
//! Figure 7 of the paper plots the reconstruction loss per iteration and
//! the downstream utility per epoch for DP-VAE, P3GM(AE) and P3GM; every
//! trainer in this crate therefore reports an [`EpochStats`] per epoch and
//! accumulates them into a [`TrainingHistory`].

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Average per-example reconstruction loss (the first term of paper
    /// Eq. (8), negated so that smaller is better).
    pub reconstruction_loss: f64,
    /// Average per-example KL term.
    pub kl_loss: f64,
    /// Number of optimizer steps taken during the epoch.
    pub steps: usize,
}

impl EpochStats {
    /// The (negative) ELBO estimate: reconstruction loss plus KL.
    pub fn negative_elbo(&self) -> f64 {
        self.reconstruction_loss + self.kl_loss
    }
}

/// The sequence of per-epoch statistics from one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingHistory {
    /// One entry per completed epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainingHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch of statistics.
    pub fn push(&mut self, stats: EpochStats) {
        self.epochs.push(stats);
    }

    /// The reconstruction-loss curve (one value per epoch).
    pub fn reconstruction_curve(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.reconstruction_loss).collect()
    }

    /// The KL curve (one value per epoch).
    pub fn kl_curve(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.kl_loss).collect()
    }

    /// The final epoch's statistics, if any epoch completed.
    pub fn last(&self) -> Option<&EpochStats> {
        self.epochs.last()
    }

    /// Number of completed epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether no epoch has completed yet.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Total optimizer steps across all epochs.
    pub fn total_steps(&self) -> usize {
        self.epochs.iter().map(|e| e.steps).sum()
    }

    /// Whether the reconstruction loss decreased from the first to the last
    /// epoch (a coarse convergence indicator used in tests and reports).
    pub fn improved(&self) -> bool {
        match (self.epochs.first(), self.epochs.last()) {
            (Some(first), Some(last)) if self.epochs.len() > 1 => {
                last.reconstruction_loss < first.reconstruction_loss
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(epoch: usize, recon: f64) -> EpochStats {
        EpochStats {
            epoch,
            reconstruction_loss: recon,
            kl_loss: 1.0,
            steps: 10,
        }
    }

    #[test]
    fn accumulates_epochs() {
        let mut h = TrainingHistory::new();
        assert!(h.is_empty());
        h.push(stats(0, 5.0));
        h.push(stats(1, 3.0));
        assert_eq!(h.len(), 2);
        assert_eq!(h.reconstruction_curve(), vec![5.0, 3.0]);
        assert_eq!(h.kl_curve(), vec![1.0, 1.0]);
        assert_eq!(h.total_steps(), 20);
        assert_eq!(h.last().unwrap().epoch, 1);
        assert!(h.improved());
    }

    #[test]
    fn improvement_requires_two_epochs_and_a_decrease() {
        let mut h = TrainingHistory::new();
        assert!(!h.improved());
        h.push(stats(0, 5.0));
        assert!(!h.improved());
        h.push(stats(1, 6.0));
        assert!(!h.improved());
    }

    #[test]
    fn negative_elbo_is_sum() {
        let s = stats(0, 4.0);
        assert_eq!(s.negative_elbo(), 5.0);
    }
}
