//! The phased generative model (PGM) and its differentially private version
//! (P3GM) — the paper's §IV.
//!
//! **Encoding Phase** (paper §IV-B): a dimensionality reduction `f` is
//! fitted with (DP-)PCA and the encoder mean is frozen to `µ_φ(x) = f(x)`
//! (paper Eq. (6)); a mixture-of-Gaussians prior `r_λ(z)` is fitted to the
//! projected data with (DP-)EM (paper Eq. (7)).
//!
//! **Decoding Phase** (paper §IV-C): the decoder `p_θ(x|z)` and the encoder
//! variance `σ_φ(x)` are trained against the ELBO of paper Eq. (8), whose KL
//! term is taken against the MoG prior via the Hershey–Olsen approximation;
//! the optimizer is DP-SGD for P3GM and plain Adam for PGM.
//!
//! **Data synthesis** (paper §IV-E): sample `z ~ MoG(λ)`, decode.
//!
//! The privacy of the whole pipeline is the RDP composition of Theorem 4,
//! exposed through [`PhasedGenerativeModel::privacy_spec`].

use crate::config::{DecoderLoss, PgmConfig, VarianceMode};
use crate::history::{EpochStats, TrainingHistory};
use crate::{CoreError, GenerativeModel, Result};
use p3gm_linalg::Matrix;
use p3gm_mixture::dpem::{self, DpEmConfig};
use p3gm_mixture::em::{self, EmConfig};
use p3gm_mixture::Gmm;
use p3gm_nn::activation::{sigmoid, Activation};
use p3gm_nn::dpsgd::{sample_batch_indices, DpSgdConfig};
use p3gm_nn::loss::{bce_with_logits, sse};
use p3gm_nn::mlp::Mlp;
use p3gm_nn::optimizer::{Adam, Optimizer};
use p3gm_preprocess::pca::{DpPca, Pca};
use p3gm_privacy::rdp::{PrivacySpec, RdpAccountant};
use p3gm_privacy::sampling;
use rand::Rng;

/// The dimensionality-reduction component of the Encoding Phase.
#[derive(Debug, Clone)]
enum Projection {
    /// Exact PCA (PGM).
    Exact(Pca),
    /// DP-PCA via the Wishart mechanism (P3GM).
    Private(DpPca),
}

impl Projection {
    fn transform_row(&self, x: &[f64]) -> Vec<f64> {
        match self {
            Projection::Exact(p) => p.transform_row(x).expect("dimension fixed at fit time"),
            Projection::Private(p) => p.transform_row(x).expect("dimension fixed at fit time"),
        }
    }
}

/// The phased generative model: PGM when `config.private == false`, P3GM
/// when `true`, P3GM(AE) when the variance mode is fixed.
#[derive(Debug, Clone)]
pub struct PhasedGenerativeModel {
    projection: Projection,
    prior: Gmm,
    /// Encoder-variance network `x → log σ²_φ(x)` (present even in the
    /// fixed-variance mode, but then it is not trained or used).
    encoder_var: Mlp,
    decoder: Mlp,
    config: PgmConfig,
    data_dim: usize,
    /// Scale applied to rows before the projection so that the DP-PCA
    /// sensitivity bound (unit L2 ball) holds; 1.0 for the non-private PGM.
    input_scale: f64,
    optimizer: Adam,
    trained_epochs: usize,
    n_train: usize,
}

impl PhasedGenerativeModel {
    /// Runs the Encoding Phase: fits the (DP-)PCA projection and the (DP-)EM
    /// mixture prior, and initializes the networks. The Decoding Phase is
    /// run separately with [`PhasedGenerativeModel::train_epoch`] (or use
    /// [`PhasedGenerativeModel::fit`] for the whole pipeline).
    pub fn encode_phase<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        config: PgmConfig,
    ) -> Result<Self> {
        config.validate(data.rows(), data.cols())?;
        let d = data.cols();
        let n = data.rows();

        // DP-PCA's Wishart sensitivity analysis assumes rows in the unit L2
        // ball; [0,1]^d rows have norm at most sqrt(d) (a public bound), so
        // scale by 1/sqrt(d) before computing the covariance. The same scale
        // is applied at projection time so f(x) is consistent.
        let input_scale = if config.private {
            1.0 / (d as f64).sqrt()
        } else {
            1.0
        };
        let scaled = if input_scale == 1.0 {
            data.clone()
        } else {
            data.scale(input_scale)
        };

        let projection = if config.private {
            Projection::Private(
                DpPca::fit(rng, &scaled, config.latent_dim, config.eps_p)
                    .map_err(|e| CoreError::Substrate { msg: e.to_string() })?,
            )
        } else {
            Projection::Exact(
                Pca::fit(&scaled, config.latent_dim)
                    .map_err(|e| CoreError::Substrate { msg: e.to_string() })?,
            )
        };

        // Project every row and fit the MoG prior.
        let projected_rows: Vec<Vec<f64>> = scaled
            .row_iter()
            .map(|row| projection.transform_row(row))
            .collect();
        let projected = Matrix::from_rows(&projected_rows)
            .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;

        let prior = if config.private {
            dpem::fit(
                rng,
                &projected,
                &DpEmConfig {
                    n_components: config.mog_components,
                    iterations: config.em_iterations,
                    sigma_e: config.sigma_e,
                    covariance_regularization: 1e-4,
                    clip_norm: 1.0,
                },
            )
            .map_err(|e| CoreError::Substrate { msg: e.to_string() })?
            .model
        } else {
            em::fit(
                rng,
                &projected,
                &EmConfig {
                    n_components: config.mog_components,
                    max_iters: 50,
                    tolerance: 1e-5,
                    covariance_regularization: 1e-6,
                },
            )
            .map_err(|e| CoreError::Substrate { msg: e.to_string() })?
            .model
        };

        let encoder_var = Mlp::new(
            rng,
            &[d, config.hidden_dim, config.latent_dim],
            Activation::Relu,
            Activation::Identity,
        );
        let decoder = Mlp::new(
            rng,
            &[config.latent_dim, config.hidden_dim, d],
            Activation::Relu,
            Activation::Identity,
        );
        let optimizer = Adam::new(config.learning_rate);

        Ok(PhasedGenerativeModel {
            projection,
            prior,
            encoder_var,
            decoder,
            config,
            data_dim: d,
            input_scale,
            optimizer,
            trained_epochs: 0,
            n_train: n,
        })
    }

    /// Runs the complete two-phase training (Encoding Phase + `epochs`
    /// epochs of the Decoding Phase).
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        config: PgmConfig,
    ) -> Result<(Self, TrainingHistory)> {
        let epochs = config.epochs;
        let mut model = Self::encode_phase(rng, data, config)?;
        let mut history = TrainingHistory::new();
        for _ in 0..epochs {
            history.push(model.train_epoch(rng, data)?);
        }
        Ok((model, history))
    }

    /// The training configuration.
    pub fn config(&self) -> &PgmConfig {
        &self.config
    }

    /// The fitted mixture-of-Gaussians prior `r_λ(z)`.
    pub fn prior(&self) -> &Gmm {
        &self.prior
    }

    /// Dimensionality of the data space.
    pub fn data_dim(&self) -> usize {
        self.data_dim
    }

    /// Number of Decoding-Phase epochs trained so far.
    pub fn trained_epochs(&self) -> usize {
        self.trained_epochs
    }

    /// Whether the encoder-variance network is trained (full P3GM) or the
    /// variance is frozen (P3GM(AE)).
    pub fn trains_variance(&self) -> bool {
        matches!(self.config.variance_mode, VarianceMode::Learned)
    }

    /// The frozen encoder mean `µ_φ(x) = f(x)` (paper Eq. (6)).
    pub fn encode_mean(&self, x: &[f64]) -> Vec<f64> {
        let scaled: Vec<f64> = x.iter().map(|v| v * self.input_scale).collect();
        self.projection.transform_row(&scaled)
    }

    /// The encoder log-variance for one row (the frozen constant in the
    /// fixed-variance mode).
    pub fn encode_logvar(&self, x: &[f64]) -> Vec<f64> {
        match self.config.variance_mode {
            VarianceMode::Learned => self.encoder_var.forward(x),
            VarianceMode::Fixed(v) => vec![v; self.config.latent_dim],
        }
    }

    /// Decodes a latent vector to the data-space mean.
    pub fn decode(&self, z: &[f64]) -> Vec<f64> {
        let logits = self.decoder.forward(z);
        match self.config.decoder_loss {
            DecoderLoss::Bernoulli => logits.iter().map(|&l| sigmoid(l)).collect(),
            DecoderLoss::Gaussian => logits,
        }
    }

    /// Deterministic reconstruction: decode the frozen encoder mean.
    pub fn reconstruct(&self, x: &[f64]) -> Vec<f64> {
        self.decode(&self.encode_mean(x))
    }

    /// Average per-example reconstruction loss over a dataset (decoding the
    /// encoder mean; this is the curve plotted in Figure 7a/7b).
    pub fn reconstruction_loss(&self, data: &Matrix) -> f64 {
        let mut total = 0.0;
        for row in data.row_iter() {
            let mu = self.encode_mean(row);
            let logits = self.decoder.forward(&mu);
            total += match self.config.decoder_loss {
                DecoderLoss::Bernoulli => bce_with_logits(&logits, row).0,
                DecoderLoss::Gaussian => sse(&logits, row).0,
            };
        }
        total / data.rows().max(1) as f64
    }

    /// One epoch of the Decoding Phase. Exposed so the Figure 7 experiments
    /// can evaluate the model after every epoch.
    pub fn train_epoch<R: Rng + ?Sized>(&mut self, rng: &mut R, data: &Matrix) -> Result<EpochStats> {
        if data.cols() != self.data_dim {
            return Err(CoreError::InvalidData {
                msg: format!("expected {} features, got {}", self.data_dim, data.cols()),
            });
        }
        let n = data.rows();
        if n == 0 {
            return Err(CoreError::InvalidData {
                msg: "empty training data".to_string(),
            });
        }
        let batch = self.config.batch_size.min(n).max(1);
        let steps_per_epoch = n.div_ceil(batch);
        let dp = if self.config.private {
            Some(DpSgdConfig {
                clip_norm: self.config.clip_norm,
                noise_multiplier: self.config.sigma_s,
                batch_size: batch,
            })
        } else {
            None
        };

        let mut params = self.flat_params();
        let mut recon_sum = 0.0;
        let mut kl_sum = 0.0;
        let mut examples = 0usize;

        for _ in 0..steps_per_epoch {
            let indices = sample_batch_indices(rng, n, batch);
            let mut per_example = Vec::with_capacity(indices.len());
            for &i in &indices {
                let (recon, kl, grad) = self.example_gradient(rng, data.row(i));
                recon_sum += recon;
                kl_sum += kl;
                examples += 1;
                per_example.push(grad);
            }
            match &dp {
                Some(cfg) => {
                    cfg.step(rng, &per_example, &mut params, &mut self.optimizer)
                        .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;
                }
                None => {
                    let mut avg = vec![0.0; params.len()];
                    for g in &per_example {
                        p3gm_linalg::vector::axpy(1.0, g, &mut avg);
                    }
                    p3gm_linalg::vector::scale(1.0 / per_example.len() as f64, &mut avg);
                    self.optimizer.step(&mut params, &avg);
                }
            }
            self.set_flat_params(&params);
        }

        let stats = EpochStats {
            epoch: self.trained_epochs,
            reconstruction_loss: recon_sum / examples.max(1) as f64,
            kl_loss: kl_sum / examples.max(1) as f64,
            steps: steps_per_epoch,
        };
        self.trained_epochs += 1;
        Ok(stats)
    }

    /// The (ε, δ)-DP guarantee of the *configured* training run on `n` rows
    /// (paper Theorem 4), or `None` for the non-private PGM.
    ///
    /// The guarantee covers DP-PCA, `em_iterations` DP-EM steps and the
    /// number of DP-SGD steps the configuration takes on `n` rows.
    pub fn privacy_spec(&self, n: usize) -> Option<PrivacySpec> {
        if !self.config.private {
            return None;
        }
        RdpAccountant::p3gm_total(
            self.config.eps_p,
            self.config.em_iterations,
            self.config.sigma_e,
            self.config.mog_components,
            self.config.sgd_steps(n),
            self.config.sampling_probability(n),
            self.config.sigma_s,
            self.config.delta,
        )
        .ok()
    }

    /// Convenience: the privacy guarantee for the dataset the model was
    /// fitted on.
    pub fn training_privacy_spec(&self) -> Option<PrivacySpec> {
        self.privacy_spec(self.n_train)
    }

    /// Per-example gradient of the Decoding-Phase loss (paper Eq. (10)) with
    /// respect to the trainable parameters, plus the reconstruction and KL
    /// losses.
    fn example_gradient<R: Rng + ?Sized>(&self, rng: &mut R, x: &[f64]) -> (f64, f64, Vec<f64>) {
        let d = self.config.latent_dim;
        let mu = self.encode_mean(x);

        // Encoder variance: learned or frozen.
        let (logvar, enc_cache) = match self.config.variance_mode {
            VarianceMode::Learned => {
                let cache = self.encoder_var.forward_cached(x);
                (cache.output().to_vec(), Some(cache))
            }
            VarianceMode::Fixed(v) => (vec![v; d], None),
        };

        // Reparametrized sample.
        let eps = sampling::normal_vec(rng, d, 1.0);
        let sigma: Vec<f64> = logvar.iter().map(|&l| (0.5 * l).exp()).collect();
        let z: Vec<f64> = (0..d).map(|i| mu[i] + sigma[i] * eps[i]).collect();

        // Reconstruction term.
        let dec_cache = self.decoder.forward_cached(&z);
        let (recon, grad_logits) = match self.config.decoder_loss {
            DecoderLoss::Bernoulli => bce_with_logits(dec_cache.output(), x),
            DecoderLoss::Gaussian => sse(dec_cache.output(), x),
        };
        let mut dec_grads = vec![0.0; self.decoder.num_params()];
        let grad_z = self.decoder.backward(&dec_cache, &grad_logits, &mut dec_grads);

        // KL against the MoG prior (Hershey–Olsen approximation). The mean
        // is frozen so only the log-variance gradient is used.
        let (kl, _kl_grad_mu, kl_grad_logvar) = self.prior.kl_diag_to_mixture(&mu, &logvar);

        match (self.config.variance_mode, enc_cache) {
            (VarianceMode::Learned, Some(cache)) => {
                let mut grad_enc_out = vec![0.0; d];
                for i in 0..d {
                    grad_enc_out[i] = grad_z[i] * 0.5 * sigma[i] * eps[i] + kl_grad_logvar[i];
                }
                let mut enc_grads = vec![0.0; self.encoder_var.num_params()];
                self.encoder_var
                    .backward(&cache, &grad_enc_out, &mut enc_grads);
                enc_grads.extend_from_slice(&dec_grads);
                (recon, kl, enc_grads)
            }
            _ => (recon, kl, dec_grads),
        }
    }

    /// Flat trainable-parameter vector: encoder-variance network (when
    /// trained) followed by the decoder.
    fn flat_params(&self) -> Vec<f64> {
        if self.trains_variance() {
            let mut p = self.encoder_var.params();
            p.extend(self.decoder.params());
            p
        } else {
            self.decoder.params()
        }
    }

    fn set_flat_params(&mut self, params: &[f64]) {
        if self.trains_variance() {
            let enc_n = self.encoder_var.num_params();
            self.encoder_var.set_params(&params[..enc_n]);
            self.decoder.set_params(&params[enc_n..]);
        } else {
            self.decoder.set_params(params);
        }
    }
}

impl GenerativeModel for PhasedGenerativeModel {
    fn sample(&self, rng: &mut dyn rand::RngCore, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let z = self.prior.sample(rng);
                self.decode(&z)
            })
            .collect();
        Matrix::from_rows(&rows).expect("decoded rows have equal width")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(131)
    }

    /// Bimodal dataset in [0,1]^8 with two clearly distinct patterns.
    fn bimodal(rng: &mut StdRng, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..8)
                    .map(|j| {
                        let base = if (j < 4) == hot { 0.9 } else { 0.1 };
                        (base + sampling::normal(rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn small_config(private: bool) -> PgmConfig {
        PgmConfig {
            latent_dim: 3,
            hidden_dim: 16,
            mog_components: 2,
            epochs: 10,
            batch_size: 16,
            learning_rate: 5e-3,
            clip_norm: 1.0,
            private,
            eps_p: 0.5,
            sigma_e: 50.0,
            em_iterations: 5,
            sigma_s: 1.0,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        }
    }

    #[test]
    fn encode_phase_fixes_the_encoder_mean() {
        let mut r = rng();
        let data = bimodal(&mut r, 80);
        let model = PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(false)).unwrap();
        // The frozen mean is a deterministic function of x with the latent
        // dimensionality.
        let mu1 = model.encode_mean(data.row(0));
        let mu2 = model.encode_mean(data.row(0));
        assert_eq!(mu1.len(), 3);
        assert_eq!(mu1, mu2);
        // Different patterns land in different latent locations.
        let a = model.encode_mean(data.row(0));
        let b = model.encode_mean(data.row(1));
        assert!(p3gm_linalg::vector::distance(&a, &b) > 0.1);
        assert_eq!(model.prior().n_components(), 2);
        assert!(model.trains_variance());
        assert_eq!(model.trained_epochs(), 0);
    }

    #[test]
    fn pgm_training_reduces_reconstruction_loss() {
        let mut r = rng();
        let data = bimodal(&mut r, 120);
        let untrained =
            PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(false)).unwrap();
        let before = untrained.reconstruction_loss(&data);
        let (model, history) =
            PhasedGenerativeModel::fit(&mut r, &data, small_config(false)).unwrap();
        let after = model.reconstruction_loss(&data);
        assert!(after < before, "loss should drop: {before} -> {after}");
        assert_eq!(history.len(), 10);
        assert!(history.improved());
    }

    #[test]
    fn p3gm_trains_under_noise_and_reports_privacy() {
        let mut r = rng();
        let data = bimodal(&mut r, 120);
        let (model, history) =
            PhasedGenerativeModel::fit(&mut r, &data, small_config(true)).unwrap();
        assert_eq!(history.len(), 10);
        let spec = model.training_privacy_spec().expect("P3GM is private");
        assert!(spec.epsilon.is_finite() && spec.epsilon > 0.0);
        assert_eq!(spec.delta, 1e-5);
        // Reconstruction is still meaningfully better than random guessing
        // (BCE of ~0.69 per dimension on [0,1] data with p=0.5).
        let loss = model.reconstruction_loss(&data);
        assert!(loss < 8.0 * 0.69, "reconstruction loss {loss}");
    }

    #[test]
    fn non_private_pgm_has_no_privacy_spec() {
        let mut r = rng();
        let data = bimodal(&mut r, 60);
        let model =
            PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(false)).unwrap();
        assert!(model.privacy_spec(60).is_none());
        assert!(model.training_privacy_spec().is_none());
    }

    #[test]
    fn samples_have_correct_shape_and_range() {
        let mut r = rng();
        let data = bimodal(&mut r, 80);
        let (model, _) = PhasedGenerativeModel::fit(&mut r, &data, small_config(false)).unwrap();
        let samples = model.sample(&mut r, 25);
        assert_eq!(samples.shape(), (25, 8));
        assert!(samples
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn generated_samples_resemble_the_two_modes() {
        let mut r = rng();
        let data = bimodal(&mut r, 200);
        let mut cfg = small_config(false);
        cfg.epochs = 30;
        let (model, _) = PhasedGenerativeModel::fit(&mut r, &data, cfg).unwrap();
        let samples = model.sample(&mut r, 60);
        // Every sample should be closer to one of the two true modes than to
        // the uniform 0.5 vector.
        let mode_a: Vec<f64> = (0..8).map(|j| if j < 4 { 0.9 } else { 0.1 }).collect();
        let mode_b: Vec<f64> = (0..8).map(|j| if j < 4 { 0.1 } else { 0.9 }).collect();
        let uniform = vec![0.5; 8];
        let mut near_modes = 0;
        for row in samples.row_iter() {
            let da = p3gm_linalg::vector::distance(row, &mode_a);
            let db = p3gm_linalg::vector::distance(row, &mode_b);
            let du = p3gm_linalg::vector::distance(row, &uniform);
            if da.min(db) < du {
                near_modes += 1;
            }
        }
        assert!(
            near_modes as f64 / 60.0 > 0.6,
            "only {near_modes}/60 samples near the true modes"
        );
    }

    #[test]
    fn ae_variant_trains_only_the_decoder() {
        let mut r = rng();
        let data = bimodal(&mut r, 80);
        let cfg = small_config(false).autoencoder_variant();
        let model = PhasedGenerativeModel::encode_phase(&mut r, &data, cfg).unwrap();
        assert!(!model.trains_variance());
        // Frozen log-variance is the configured constant.
        let lv = model.encode_logvar(data.row(0));
        assert!(lv.iter().all(|&v| (v + 20.0).abs() < 1e-12));
        // Training still works and reduces loss.
        let mut model = model;
        let before = model.reconstruction_loss(&data);
        for _ in 0..10 {
            model.train_epoch(&mut r, &data).unwrap();
        }
        let after = model.reconstruction_loss(&data);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn config_validation_propagates() {
        let mut r = rng();
        let data = bimodal(&mut r, 40);
        let mut cfg = small_config(true);
        cfg.latent_dim = 50; // larger than data dimension
        assert!(PhasedGenerativeModel::encode_phase(&mut r, &data, cfg).is_err());
        let mut cfg = small_config(true);
        cfg.sigma_s = 0.0;
        assert!(PhasedGenerativeModel::encode_phase(&mut r, &data, cfg).is_err());
    }

    #[test]
    fn train_epoch_rejects_wrong_width() {
        let mut r = rng();
        let data = bimodal(&mut r, 40);
        let mut model =
            PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(false)).unwrap();
        assert!(model.train_epoch(&mut r, &Matrix::zeros(5, 3)).is_err());
        assert!(model.train_epoch(&mut r, &Matrix::zeros(0, 8)).is_err());
    }

    #[test]
    fn paper_epsilon_ballpark_for_table_iv_settings() {
        // MNIST row of Table IV: sigma_s = 1.42, batch 240, 10 epochs,
        // N = 63 000, eps_p = 0.1, Te = 20, dm = 3 → the paper reports
        // (1, 1e-5)-DP. Our accountant should place it near 1.
        let cfg = PgmConfig {
            sigma_s: 1.42,
            batch_size: 240,
            epochs: 10,
            eps_p: 0.1,
            em_iterations: 20,
            mog_components: 3,
            sigma_e: 70.0,
            ..PgmConfig::default()
        };
        let n = 63_000;
        let spec = RdpAccountant::p3gm_total(
            cfg.eps_p,
            cfg.em_iterations,
            cfg.sigma_e,
            cfg.mog_components,
            cfg.sgd_steps(n),
            cfg.sampling_probability(n),
            cfg.sigma_s,
            cfg.delta,
        )
        .unwrap();
        assert!(
            spec.epsilon > 0.3 && spec.epsilon < 2.0,
            "epsilon {} not near the paper's 1.0",
            spec.epsilon
        );
    }
}
