//! The phased generative model (PGM) and its differentially private version
//! (P3GM) — the paper's §IV.
//!
//! **Encoding Phase** (paper §IV-B): a dimensionality reduction `f` is
//! fitted with (DP-)PCA and the encoder mean is frozen to `µ_φ(x) = f(x)`
//! (paper Eq. (6)); a mixture-of-Gaussians prior `r_λ(z)` is fitted to the
//! projected data with (DP-)EM (paper Eq. (7)).
//!
//! **Decoding Phase** (paper §IV-C): the decoder `p_θ(x|z)` and the encoder
//! variance `σ_φ(x)` are trained against the ELBO of paper Eq. (8), whose KL
//! term is taken against the MoG prior via the Hershey–Olsen approximation;
//! the optimizer is DP-SGD for P3GM and plain Adam for PGM.
//!
//! **Data synthesis** (paper §IV-E): sample `z ~ MoG(λ)`, decode.
//!
//! The privacy of the whole pipeline is the RDP composition of Theorem 4,
//! exposed through [`PhasedGenerativeModel::privacy_spec`].

use crate::averaging::PolyakAverager;
use crate::config::{DecoderLoss, PgmConfig, VarianceMode};
use crate::history::{EpochStats, TrainingHistory};
use crate::report::TrainReport;
use crate::{CoreError, GenerativeModel, Result};
use p3gm_linalg::Matrix;
use p3gm_mixture::dpem::{self, DpEmConfig};
use p3gm_mixture::em::{self, EmConfig};
use p3gm_mixture::Gmm;
use p3gm_nn::activation::{sigmoid, Activation};
use p3gm_nn::dpsgd::{sample_batch_indices, DpSgdConfig};
use p3gm_nn::loss::{bce_with_logits, sse};
use p3gm_nn::mlp::Mlp;
use p3gm_nn::optimizer::{Adam, Optimizer};
use p3gm_obs::TimeSource;
use p3gm_preprocess::pca::{DpPca, Pca};
use p3gm_privacy::rdp::PrivacySpec;
use p3gm_privacy::sampling;
use rand::Rng;

/// The dimensionality-reduction component of the Encoding Phase.
#[derive(Debug, Clone)]
enum Projection {
    /// Exact PCA (PGM).
    Exact(Pca),
    /// DP-PCA via the Wishart mechanism (P3GM).
    Private(DpPca),
}

impl Projection {
    fn transform_row(&self, x: &[f64]) -> Vec<f64> {
        match self {
            Projection::Exact(p) => p.transform_row(x).expect("dimension fixed at fit time"),
            Projection::Private(p) => p.transform_row(x).expect("dimension fixed at fit time"),
        }
    }

    /// Projects a whole batch as one centred matrix product.
    fn transform(&self, data: &Matrix) -> Result<Matrix> {
        match self {
            Projection::Exact(p) => p.transform(data),
            Projection::Private(p) => p.transform(data),
        }
        .map_err(|e| CoreError::Substrate { msg: e.to_string() })
    }
}

/// The phased generative model: PGM when `config.private == false`, P3GM
/// when `true`, P3GM(AE) when the variance mode is fixed.
#[derive(Debug, Clone)]
pub struct PhasedGenerativeModel {
    projection: Projection,
    prior: Gmm,
    /// Encoder-variance network `x → log σ²_φ(x)` (present even in the
    /// fixed-variance mode, but then it is not trained or used).
    encoder_var: Mlp,
    decoder: Mlp,
    config: PgmConfig,
    data_dim: usize,
    /// Scale applied to rows before the projection so that the DP-PCA
    /// sensitivity bound (unit L2 ball) holds; 1.0 for the non-private PGM.
    input_scale: f64,
    optimizer: Adam,
    trained_epochs: usize,
    n_train: usize,
    /// Raw (non-averaged) optimizer iterate. The networks themselves hold the
    /// Polyak-averaged weights after each epoch, which is what inference and
    /// sampling should use; the optimizer continues from the raw iterate.
    raw_params: Option<Vec<f64>>,
    averager: PolyakAverager,
}

impl PhasedGenerativeModel {
    /// Runs the Encoding Phase: fits the (DP-)PCA projection and the (DP-)EM
    /// mixture prior, and initializes the networks. The Decoding Phase is
    /// run separately with [`PhasedGenerativeModel::train_epoch`] (or use
    /// [`PhasedGenerativeModel::fit`] for the whole pipeline).
    pub fn encode_phase<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        config: PgmConfig,
    ) -> Result<Self> {
        Self::encode_phase_observed(rng, data, config, &mut TrainReport::new())
    }

    /// [`encode_phase`](Self::encode_phase) plus telemetry: the (DP-)EM
    /// iteration count and log-likelihood trajectory are accumulated into
    /// `report`. The fitted model is identical — the trace is a diagnostic
    /// the mixture fit computes anyway (post-processing of its own private
    /// release, no extra budget), previously discarded here.
    pub fn encode_phase_observed<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        config: PgmConfig,
        report: &mut TrainReport,
    ) -> Result<Self> {
        config.validate(data.rows(), data.cols())?;
        let d = data.cols();
        let n = data.rows();

        // DP-PCA's Wishart sensitivity analysis assumes rows in the unit L2
        // ball; [0,1]^d rows have norm at most sqrt(d) (a public bound), so
        // scale by 1/sqrt(d) before computing the covariance. The same scale
        // is applied at projection time so f(x) is consistent.
        let input_scale = if config.private {
            1.0 / (d as f64).sqrt()
        } else {
            1.0
        };
        let scaled = if input_scale == 1.0 {
            data.clone()
        } else {
            data.scale(input_scale)
        };

        // For the private pipeline, keep the DP-PCA's noisy eigenvalues: they
        // are part of the same DP release and provide a calibrated estimate
        // of the projected data's per-coordinate variance, which the prior
        // sanitization below uses (post-processing, no extra budget).
        let mut latent_scale: Option<Vec<f64>> = None;
        let projection = if config.private {
            let dp_pca = DpPca::fit(rng, &scaled, config.latent_dim, config.eps_p)
                .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;
            // The Wishart noise matrix has known mean (d+1)·3/(2nε)·I; subtract
            // it from the noisy eigenvalues to debias the variance estimate.
            let noise_mean = (d as f64 + 1.0) * 3.0 / (2.0 * n as f64 * config.eps_p);
            latent_scale = Some(
                dp_pca.pca().eigenvalues()[..config.latent_dim]
                    .iter()
                    .map(|&l| (l - noise_mean).max(l.abs() * 0.05).max(1e-10))
                    .collect(),
            );
            Projection::Private(dp_pca)
        } else {
            Projection::Exact(
                Pca::fit(&scaled, config.latent_dim)
                    .map_err(|e| CoreError::Substrate { msg: e.to_string() })?,
            )
        };

        // Project the whole batch and fit the MoG prior.
        let projected = projection.transform(&scaled)?;

        let prior = if config.private {
            let fitted = dpem::fit(
                rng,
                &projected,
                &DpEmConfig {
                    n_components: config.mog_components,
                    iterations: config.em_iterations,
                    sigma_e: config.sigma_e,
                    covariance_regularization: 1e-4,
                    clip_norm: 1.0,
                },
            )
            .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;
            report.em_iterations += fitted.iterations as u64;
            report
                .em_log_likelihood
                .extend_from_slice(&fitted.log_likelihood_trace);
            match &latent_scale {
                Some(scale) => sanitize_prior(&fitted.model, scale)?,
                None => fitted.model,
            }
        } else {
            let fitted = em::fit(
                rng,
                &projected,
                &EmConfig {
                    n_components: config.mog_components,
                    max_iters: 50,
                    tolerance: 1e-5,
                    covariance_regularization: 1e-6,
                },
            )
            .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;
            report.em_iterations += fitted.iterations as u64;
            report
                .em_log_likelihood
                .extend_from_slice(&fitted.log_likelihood_trace);
            fitted.model
        };

        let mut encoder_var = Mlp::new(
            rng,
            &[d, config.hidden_dim, config.latent_dim],
            Activation::Relu,
            Activation::Identity,
        );
        // Initialize the output bias of the variance network so that the
        // initial σ_φ(x) matches the within-component scale of the prior
        // instead of the default σ = 1. The frozen encoder mean µ_φ(x) =
        // f(x) lives on the prior's scale (typically ≪ 1 after the unit-ball
        // normalization), so starting with unit reparametrization noise
        // would drown the latent signal for most of a short training run.
        // The prior is already a DP release, so this is pure post-processing.
        {
            let weights = prior.weights();
            let mut v_bar = 0.0;
            for (k, cov) in prior.covariances().iter().enumerate() {
                let dim = cov.rows();
                let trace_mean = (0..dim).map(|i| cov.get(i, i)).sum::<f64>() / dim as f64;
                v_bar += weights[k] * trace_mean;
            }
            let log_var = v_bar.max(1e-12).ln();
            let mut params = encoder_var.params();
            let n_params = params.len();
            for b in &mut params[n_params - config.latent_dim..] {
                *b = log_var;
            }
            encoder_var.set_params(&params);
        }
        let mut decoder = Mlp::new(
            rng,
            &[config.latent_dim, config.hidden_dim, d],
            Activation::Relu,
            Activation::Identity,
        );
        // Warm-start the decoder at the linear inverse of the projection,
        // which is known in closed form: the reconstruction
        // x̂ = (V z + µ) / input_scale. A ReLU pair per latent coordinate
        // (+z_i, −z_i) represents the identity exactly, so the two-layer
        // decoder can start as precisely this affine map instead of a
        // random function. Privacy: V is post-processing of the DP-PCA
        // release; the centring mean µ is the same quantity the projection
        // already exposes through `transform_row` and is treated as
        // publicly available per the paper's footnote 2 (see the
        // `p3gm-preprocess::pca` module docs), so the warm start consumes
        // no additional budget under the paper's threat model. It lets a
        // short (or heavily noised) decoding phase start from a generator
        // that already respects the data's principal structure.
        {
            let pca = match &projection {
                Projection::Exact(p) => p,
                Projection::Private(p) => p.pca(),
            };
            warm_start_decoder(
                &mut decoder,
                pca.components(),
                pca.mean(),
                input_scale,
                config.decoder_loss,
            );
        }
        let optimizer = Adam::new(config.learning_rate);

        Ok(PhasedGenerativeModel {
            projection,
            prior,
            encoder_var,
            decoder,
            config,
            data_dim: d,
            input_scale,
            optimizer,
            trained_epochs: 0,
            n_train: n,
            raw_params: None,
            averager: PolyakAverager::new(0.99),
        })
    }

    /// Runs the complete two-phase training (Encoding Phase + `epochs`
    /// epochs of the Decoding Phase).
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        config: PgmConfig,
    ) -> Result<(Self, TrainingHistory)> {
        Self::fit_with_report(rng, data, config, None).map(|(model, history, _)| (model, history))
    }

    /// [`fit`](Self::fit) plus a [`TrainReport`]: DP-SGD step and
    /// clipped-gradient counts, the EM log-likelihood trajectory, and —
    /// only when a [`TimeSource`] is injected — per-phase wall times. The
    /// trained model is bit-identical to [`fit`](Self::fit) with the same
    /// rng: telemetry consumes no randomness and alters no update. Pass
    /// `timer: None` to keep the call fully deterministic (this crate
    /// never reads a clock itself).
    pub fn fit_with_report<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        config: PgmConfig,
        timer: Option<&dyn TimeSource>,
    ) -> Result<(Self, TrainingHistory, TrainReport)> {
        let epochs = config.epochs;
        let mut report = TrainReport::new();
        let encode_start = timer.map(TimeSource::now_nanos);
        let mut model = Self::encode_phase_observed(rng, data, config, &mut report)?;
        report.record_phase(timer, "encode", encode_start);
        let decode_start = timer.map(TimeSource::now_nanos);
        let mut history = TrainingHistory::new();
        for _ in 0..epochs {
            history.push(model.train_epoch_observed(rng, data, &mut report)?);
        }
        report.record_phase(timer, "decode", decode_start);
        Ok((model, history, report))
    }

    /// The training configuration.
    pub fn config(&self) -> &PgmConfig {
        &self.config
    }

    /// The fitted mixture-of-Gaussians prior `r_λ(z)`.
    pub fn prior(&self) -> &Gmm {
        &self.prior
    }

    /// Dimensionality of the data space.
    pub fn data_dim(&self) -> usize {
        self.data_dim
    }

    /// Number of Decoding-Phase epochs trained so far.
    pub fn trained_epochs(&self) -> usize {
        self.trained_epochs
    }

    /// Whether the encoder-variance network is trained (full P3GM) or the
    /// variance is frozen (P3GM(AE)).
    pub fn trains_variance(&self) -> bool {
        matches!(self.config.variance_mode, VarianceMode::Learned)
    }

    /// The frozen encoder mean `µ_φ(x) = f(x)` (paper Eq. (6)).
    pub fn encode_mean(&self, x: &[f64]) -> Vec<f64> {
        let scaled: Vec<f64> = x.iter().map(|v| v * self.input_scale).collect();
        self.projection.transform_row(&scaled)
    }

    /// The encoder log-variance for one row (the frozen constant in the
    /// fixed-variance mode).
    pub fn encode_logvar(&self, x: &[f64]) -> Vec<f64> {
        match self.config.variance_mode {
            VarianceMode::Learned => self.encoder_var.forward(x),
            VarianceMode::Fixed(v) => vec![v; self.config.latent_dim],
        }
    }

    /// Decodes a latent vector to the data-space mean.
    pub fn decode(&self, z: &[f64]) -> Vec<f64> {
        let logits = self.decoder.forward(z);
        match self.config.decoder_loss {
            DecoderLoss::Bernoulli => logits.iter().map(|&l| sigmoid(l)).collect(),
            DecoderLoss::Gaussian => logits,
        }
    }

    /// Deterministic reconstruction: decode the frozen encoder mean.
    pub fn reconstruct(&self, x: &[f64]) -> Vec<f64> {
        self.decode(&self.encode_mean(x))
    }

    /// Average per-example reconstruction loss over a dataset (decoding the
    /// encoder mean; this is the curve plotted in Figure 7a/7b).
    /// Accumulated over parallel row chunks with a deterministic in-order
    /// fold.
    pub fn reconstruction_loss(&self, data: &Matrix) -> f64 {
        let total = p3gm_parallel::par_map_reduce(
            data.rows(),
            p3gm_parallel::default_chunk_len(data.rows()),
            |range| {
                let mut sum = 0.0;
                for i in range {
                    let row = data.row(i);
                    let mu = self.encode_mean(row);
                    let logits = self.decoder.forward(&mu);
                    sum += match self.config.decoder_loss {
                        DecoderLoss::Bernoulli => bce_with_logits(&logits, row).0,
                        DecoderLoss::Gaussian => sse(&logits, row).0,
                    };
                }
                sum
            },
            |a, b| a + b,
        )
        .unwrap_or(0.0);
        total / data.rows().max(1) as f64
    }

    /// One epoch of the Decoding Phase. Exposed so the Figure 7 experiments
    /// can evaluate the model after every epoch.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        data: &Matrix,
    ) -> Result<EpochStats> {
        self.train_epoch_observed(rng, data, &mut TrainReport::new())
    }

    /// [`train_epoch`](Self::train_epoch) plus telemetry accumulated into
    /// `report`: one epoch, its DP-SGD steps, and the clipped-gradient
    /// counts from the fused clip-and-sum pass. The counts are
    /// deterministic (folded in chunk order) and do not alter the update.
    pub fn train_epoch_observed<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        data: &Matrix,
        report: &mut TrainReport,
    ) -> Result<EpochStats> {
        if data.cols() != self.data_dim {
            return Err(CoreError::InvalidData {
                msg: format!("expected {} features, got {}", self.data_dim, data.cols()),
            });
        }
        let n = data.rows();
        if n == 0 {
            return Err(CoreError::InvalidData {
                msg: "empty training data".to_string(),
            });
        }
        let batch = self.config.batch_size.min(n).max(1);
        let steps_per_epoch = n.div_ceil(batch);
        let dp = if self.config.private {
            Some(DpSgdConfig {
                clip_norm: self.config.clip_norm,
                noise_multiplier: self.config.sigma_s,
                batch_size: batch,
            })
        } else {
            None
        };

        // Resume from the raw optimizer iterate: the networks hold the
        // Polyak-averaged weights between epochs.
        let mut params = match self.raw_params.take() {
            Some(p) => p,
            None => self.flat_params(),
        };
        // Re-install the raw iterate before computing any gradients: the
        // networks currently hold the averaged weights from the previous
        // epoch, and gradients must be evaluated at the point the optimizer
        // actually updates.
        self.set_flat_params(&params);
        let mut recon_sum = 0.0;
        let mut kl_sum = 0.0;
        let mut examples = 0usize;

        let n_params = params.len();
        let d = self.config.latent_dim;
        for _ in 0..steps_per_epoch {
            let indices = sample_batch_indices(rng, n, batch);
            let xb = data
                .select_rows(&indices)
                .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;
            let b = xb.rows();
            // Draw the reparametrization noise serially (row-major, the same
            // rng order as the per-example loop used), then compute the
            // per-example gradients on parallel row chunks — bit-identical
            // for every thread count.
            let eps = Matrix::from_fn(b, d, |_, _| sampling::normal(rng, 0.0, 1.0));
            let mut per_example = Matrix::zeros(b, n_params);
            let rows_per_chunk = p3gm_parallel::default_chunk_len(b);
            let losses = p3gm_parallel::par_chunks_mut_map(
                per_example.as_mut_slice(),
                rows_per_chunk * n_params,
                |chunk_index, grad_chunk| {
                    let base = chunk_index * rows_per_chunk;
                    grad_chunk
                        .chunks_mut(n_params)
                        .enumerate()
                        .map(|(local, grad_row)| {
                            let i = base + local;
                            self.example_gradient_into(xb.row(i), eps.row(i), grad_row)
                        })
                        .collect::<Vec<_>>()
                },
            );
            for (recon, kl) in losses.into_iter().flatten() {
                recon_sum += recon;
                kl_sum += kl;
                examples += 1;
            }
            match &dp {
                Some(cfg) => {
                    let outcome = cfg
                        .step_observed(rng, &per_example, &mut params, &mut self.optimizer)
                        .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;
                    report.dp_sgd_steps += 1;
                    report.clipped_examples += outcome.clipped_examples;
                    report.clip_measured_examples += outcome.examples;
                }
                None => {
                    let mut avg = per_example.column_sums();
                    p3gm_linalg::vector::scale(1.0 / b as f64, &mut avg);
                    self.optimizer.step(&mut params, &avg);
                }
            }
            self.set_flat_params(&params);
            self.averager.update(&params);
        }

        // Install the averaged weights for inference; keep the raw iterate
        // so the next epoch's optimization continues undisturbed.
        if let Some(avg) = self.averager.average() {
            self.raw_params = Some(params);
            self.set_flat_params(&avg);
        }

        let stats = EpochStats {
            epoch: self.trained_epochs,
            reconstruction_loss: recon_sum / examples.max(1) as f64,
            kl_loss: kl_sum / examples.max(1) as f64,
            steps: steps_per_epoch,
        };
        self.trained_epochs += 1;
        report.epochs += 1;
        Ok(stats)
    }

    /// The (ε, δ)-DP guarantee of the *configured* training run on `n` rows
    /// (paper Theorem 4), or `None` for the non-private PGM.
    ///
    /// The guarantee covers DP-PCA, `em_iterations` DP-EM steps and the
    /// number of DP-SGD steps the configuration takes on `n` rows.
    pub fn privacy_spec(&self, n: usize) -> Option<PrivacySpec> {
        self.config.privacy_spec(n)
    }

    /// Convenience: the privacy guarantee for the dataset the model was
    /// fitted on.
    pub fn training_privacy_spec(&self) -> Option<PrivacySpec> {
        self.privacy_spec(self.n_train)
    }

    /// Per-example gradient of the Decoding-Phase loss (paper Eq. (10)) with
    /// respect to the trainable parameters, written into `out`
    /// (encoder-variance block then decoder block when the variance is
    /// trained, decoder only otherwise). `eps` is the example's pre-drawn
    /// standard-normal reparametrization noise, so this function is
    /// deterministic and safe to run on worker threads. Returns the
    /// reconstruction and KL losses.
    fn example_gradient_into(&self, x: &[f64], eps: &[f64], out: &mut [f64]) -> (f64, f64) {
        let d = self.config.latent_dim;
        let mu = self.encode_mean(x);

        // Encoder variance: learned or frozen.
        let (logvar, enc_cache) = match self.config.variance_mode {
            VarianceMode::Learned => {
                let cache = self.encoder_var.forward_cached(x);
                (cache.output().to_vec(), Some(cache))
            }
            VarianceMode::Fixed(v) => (vec![v; d], None),
        };

        // Reparametrized sample with the pre-drawn noise.
        let sigma: Vec<f64> = logvar.iter().map(|&l| (0.5 * l).exp()).collect();
        let z: Vec<f64> = (0..d).map(|i| mu[i] + sigma[i] * eps[i]).collect();

        let (enc_grads, dec_grads) = if self.trains_variance() {
            let (enc, dec) = out.split_at_mut(self.encoder_var.num_params());
            (Some(enc), dec)
        } else {
            (None, out)
        };

        // Reconstruction term.
        let dec_cache = self.decoder.forward_cached(&z);
        let (recon, grad_logits) = match self.config.decoder_loss {
            DecoderLoss::Bernoulli => bce_with_logits(dec_cache.output(), x),
            DecoderLoss::Gaussian => sse(dec_cache.output(), x),
        };
        let grad_z = self.decoder.backward(&dec_cache, &grad_logits, dec_grads);

        // KL against the MoG prior (Hershey–Olsen approximation). The mean
        // is frozen so only the log-variance gradient is used.
        let (kl, _kl_grad_mu, kl_grad_logvar) = self.prior.kl_diag_to_mixture(&mu, &logvar);

        if let (Some(enc_grads), Some(cache)) = (enc_grads, enc_cache) {
            let mut grad_enc_out = vec![0.0; d];
            for i in 0..d {
                grad_enc_out[i] = grad_z[i] * 0.5 * sigma[i] * eps[i] + kl_grad_logvar[i];
            }
            self.encoder_var.backward(&cache, &grad_enc_out, enc_grads);
        }
        (recon, kl)
    }

    /// Serializes the trained model into a framed `p3gm-store` buffer:
    /// the configuration, the dataset geometry, the fitted projection
    /// (PCA or DP-PCA), the MoG prior and both networks, all as `f64` bit
    /// patterns so the round trip is bit-exact.
    ///
    /// The snapshot is an **inference artifact**: the networks hold the
    /// Polyak-averaged weights that sampling and reconstruction use, and
    /// optimizer state (Adam moments, the raw iterate, the averaging
    /// window) is deliberately *not* persisted. A reloaded model samples
    /// bit-identically to the saved one, but further [`Self::train_epoch`]
    /// calls restart the optimizer from the averaged weights.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::PGM_MODEL);
        self.config.encode_into(&mut enc);
        enc.usize(self.data_dim)
            .f64(self.input_scale)
            .usize(self.trained_epochs)
            .usize(self.n_train);
        match &self.projection {
            Projection::Exact(p) => enc.u8(0).nested(&p.to_bytes()),
            Projection::Private(p) => enc.u8(1).nested(&p.to_bytes()),
        };
        enc.nested(&self.prior.to_bytes());
        enc.nested(&self.encoder_var.to_bytes());
        enc.nested(&self.decoder.to_bytes());
        enc.finish()
    }

    /// Deserializes a model from a buffer produced by
    /// [`PhasedGenerativeModel::to_bytes`], revalidating the configuration
    /// and the cross-component geometry (projection, prior and network
    /// dimensions must agree) so a malformed buffer can never produce a
    /// model that panics later.
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Self> {
        use p3gm_store::StoreError;
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::PGM_MODEL)?;
        let config = PgmConfig::decode_from(&mut dec)?;
        let data_dim = dec.usize()?;
        let input_scale = dec.f64()?;
        let trained_epochs = dec.usize()?;
        let n_train = dec.usize()?;
        let projection = match dec.u8()? {
            0 => Projection::Exact(Pca::from_bytes(dec.nested()?)?),
            1 => Projection::Private(DpPca::from_bytes(dec.nested()?)?),
            code => {
                return Err(StoreError::Invalid {
                    msg: format!("unknown projection code {code}"),
                })
            }
        };
        let prior = Gmm::from_bytes(dec.nested()?)?;
        let encoder_var = Mlp::from_bytes(dec.nested()?)?;
        let decoder = Mlp::from_bytes(dec.nested()?)?;
        dec.finish()?;

        config
            .validate(n_train, data_dim)
            .map_err(|e| StoreError::Invalid { msg: e.to_string() })?;
        if !(input_scale.is_finite() && input_scale > 0.0) {
            return Err(StoreError::Invalid {
                msg: format!("input scale must be positive and finite, got {input_scale}"),
            });
        }
        let (proj_in, proj_out) = match &projection {
            Projection::Exact(p) => (p.input_dim(), p.n_components()),
            Projection::Private(p) => (p.pca().input_dim(), p.pca().n_components()),
        };
        if proj_in != data_dim || proj_out != config.latent_dim {
            return Err(StoreError::Invalid {
                msg: format!(
                    "projection maps {proj_in}->{proj_out}, model expects {data_dim}->{}",
                    config.latent_dim
                ),
            });
        }
        if prior.dim() != config.latent_dim || prior.n_components() != config.mog_components {
            return Err(StoreError::Invalid {
                msg: format!(
                    "prior is a {}-component mixture over {} dims, config expects {} over {}",
                    prior.n_components(),
                    prior.dim(),
                    config.mog_components,
                    config.latent_dim
                ),
            });
        }
        if encoder_var.in_dim() != data_dim || encoder_var.out_dim() != config.latent_dim {
            return Err(StoreError::Invalid {
                msg: "encoder-variance network dimensions disagree with the model".to_string(),
            });
        }
        if decoder.in_dim() != config.latent_dim || decoder.out_dim() != data_dim {
            return Err(StoreError::Invalid {
                msg: "decoder dimensions disagree with the model".to_string(),
            });
        }

        let optimizer = Adam::new(config.learning_rate);
        Ok(PhasedGenerativeModel {
            projection,
            prior,
            encoder_var,
            decoder,
            config,
            data_dim,
            input_scale,
            optimizer,
            trained_epochs,
            n_train,
            raw_params: None,
            averager: PolyakAverager::new(0.99),
        })
    }

    /// Flat trainable-parameter vector: encoder-variance network (when
    /// trained) followed by the decoder.
    fn flat_params(&self) -> Vec<f64> {
        if self.trains_variance() {
            let mut p = self.encoder_var.params();
            p.extend(self.decoder.params());
            p
        } else {
            self.decoder.params()
        }
    }

    fn set_flat_params(&mut self, params: &[f64]) {
        if self.trains_variance() {
            let enc_n = self.encoder_var.num_params();
            self.encoder_var.set_params(&params[..enc_n]);
            self.decoder.set_params(&params[enc_n..]);
        } else {
            self.decoder.set_params(params);
        }
    }
}

/// Initializes a two-layer ReLU decoder to the affine PCA reconstruction
/// `x̂(z) = (V z + µ) / input_scale`, using one `(+z_i, −z_i)` ReLU pair per
/// latent coordinate (`ReLU(t) − ReLU(−t) = t`). For the Bernoulli decoder
/// the output is expressed in logit space via the first-order linearization
/// `logit ≈ 4 (x̂ − ½)`, which matches value and slope of `sigmoid⁻¹` at ½.
///
/// Requires `hidden ≥ 2 · latent`; smaller hidden layers keep their random
/// initialization. Hidden units beyond the identity pairs keep their random
/// incoming weights but start with zero outgoing weights, so the function is
/// exactly affine at initialization while spare capacity remains trainable.
fn warm_start_decoder(
    decoder: &mut Mlp,
    components: &Matrix,
    mean: &[f64],
    input_scale: f64,
    decoder_loss: DecoderLoss,
) {
    let latent = components.cols();
    let d = components.rows();
    let hidden = (decoder.num_params() - d) / (latent + d + 1);
    if hidden < 2 * latent {
        return;
    }
    let (k, shift) = match decoder_loss {
        DecoderLoss::Bernoulli => (4.0, -0.5),
        DecoderLoss::Gaussian => (1.0, 0.0),
    };

    let mut params = decoder.params();
    let w0_len = hidden * latent;
    // Layer 0: rows 2i and 2i+1 select ±z_i; their biases are zero.
    for i in 0..latent {
        for (row, sign) in [(2 * i, 1.0), (2 * i + 1, -1.0)] {
            for j in 0..latent {
                params[row * latent + j] = if j == i { sign } else { 0.0 };
            }
            params[w0_len + row] = 0.0;
        }
    }
    // Layer 1: recombine the pairs into k·V/s and zero the spare columns.
    let l1 = w0_len + hidden;
    for out in 0..d {
        for h in 0..hidden {
            let value = if h < 2 * latent {
                let i = h / 2;
                let sign = if h % 2 == 0 { 1.0 } else { -1.0 };
                sign * k * components.get(out, i) / input_scale
            } else {
                0.0
            };
            params[l1 + out * hidden + h] = value;
        }
        params[l1 + d * hidden + out] = k * (mean[out] / input_scale + shift);
    }
    decoder.set_params(&params);
}

/// Post-processes a DP-EM prior so its per-coordinate marginal second
/// moments match `target_var` — the (debiased) DP-PCA eigenvalue spectrum of
/// the same latent space.
///
/// At small `n` the DP-EM noise can leave component means and covariances
/// orders of magnitude off the data's scale, in which case samples from the
/// prior land far outside the region the decoder is trained on and the
/// synthesized data degrades to extrapolation noise. Both inputs are DP
/// releases, so this rescaling is pure post-processing (no privacy cost);
/// when DP-EM already matches the spectrum (large `n`), the scale factors
/// are ≈ 1 and the prior is returned essentially unchanged.
fn sanitize_prior(raw: &Gmm, target_var: &[f64]) -> Result<Gmm> {
    let k = raw.n_components();
    let dim = raw.dim();
    debug_assert_eq!(dim, target_var.len());

    // Floor collapsed component weights: noisy responsibilities can starve a
    // component to numerical zero, which would make sampling degenerate.
    let floor = 1.0 / (20.0 * k as f64);
    let weights: Vec<f64> = raw.weights().iter().map(|&w| w.max(floor)).collect();

    // Per-coordinate marginal second moment of the mixture.
    let mut m2 = vec![0.0; dim];
    let total: f64 = weights.iter().sum();
    for (c, (mean, cov)) in raw
        .means()
        .row_iter()
        .zip(raw.covariances().iter())
        .enumerate()
    {
        let w = weights[c] / total;
        for j in 0..dim {
            m2[j] += w * (cov.get(j, j) + mean[j] * mean[j]);
        }
    }

    // Clamp the correction to four orders of magnitude: enough to pull a
    // noise-dominated prior back on scale, while keeping the congruence
    // transform numerically safe for the Cholesky revalidation below.
    let scale: Vec<f64> = (0..dim)
        .map(|j| (target_var[j] / m2[j].max(1e-12)).sqrt().clamp(1e-2, 1e2))
        .collect();

    let mut means = raw.means().clone();
    for c in 0..k {
        for (v, s) in means.row_mut(c).iter_mut().zip(scale.iter()) {
            *v *= s;
        }
    }
    let covariances: Vec<Matrix> = raw
        .covariances()
        .iter()
        .map(|cov| {
            let mut out = cov.clone();
            for i in 0..dim {
                for j in 0..dim {
                    out.set(i, j, cov.get(i, j) * scale[i] * scale[j]);
                }
            }
            // Diagonal jitter keeps the rescaled matrix safely positive
            // definite despite floating-point asymmetry.
            for (j, &tv) in target_var.iter().enumerate() {
                out.set(j, j, out.get(j, j) + 1e-9 + 1e-6 * tv);
            }
            out
        })
        .collect();

    Gmm::new(weights, means, covariances).map_err(|e| CoreError::Substrate { msg: e.to_string() })
}

impl GenerativeModel for PhasedGenerativeModel {
    fn sample(&self, rng: &mut dyn rand::RngCore, n: usize) -> Matrix {
        let mut out = Matrix::zeros(n, self.data_dim);
        for i in 0..n {
            let z = self.prior.sample(rng);
            out.row_mut(i).copy_from_slice(&self.decode(&z));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3gm_privacy::rdp::RdpAccountant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(131)
    }

    /// Bimodal dataset in [0,1]^8 with two clearly distinct patterns.
    fn bimodal(rng: &mut StdRng, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..8)
                    .map(|j| {
                        let base = if (j < 4) == hot { 0.9 } else { 0.1 };
                        (base + sampling::normal(rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn small_config(private: bool) -> PgmConfig {
        PgmConfig {
            latent_dim: 3,
            hidden_dim: 16,
            mog_components: 2,
            epochs: 10,
            batch_size: 16,
            learning_rate: 5e-3,
            clip_norm: 1.0,
            private,
            eps_p: 0.5,
            sigma_e: 50.0,
            em_iterations: 5,
            sigma_s: 1.0,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        }
    }

    #[test]
    fn encode_phase_fixes_the_encoder_mean() {
        let mut r = rng();
        let data = bimodal(&mut r, 80);
        let model =
            PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(false)).unwrap();
        // The frozen mean is a deterministic function of x with the latent
        // dimensionality.
        let mu1 = model.encode_mean(data.row(0));
        let mu2 = model.encode_mean(data.row(0));
        assert_eq!(mu1.len(), 3);
        assert_eq!(mu1, mu2);
        // Different patterns land in different latent locations.
        let a = model.encode_mean(data.row(0));
        let b = model.encode_mean(data.row(1));
        assert!(p3gm_linalg::vector::distance(&a, &b) > 0.1);
        assert_eq!(model.prior().n_components(), 2);
        assert!(model.trains_variance());
        assert_eq!(model.trained_epochs(), 0);
    }

    #[test]
    fn pgm_training_reduces_reconstruction_loss() {
        let mut r = rng();
        let data = bimodal(&mut r, 120);
        let untrained =
            PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(false)).unwrap();
        let before = untrained.reconstruction_loss(&data);
        let (model, history) =
            PhasedGenerativeModel::fit(&mut r, &data, small_config(false)).unwrap();
        let after = model.reconstruction_loss(&data);
        assert!(after < before, "loss should drop: {before} -> {after}");
        assert_eq!(history.len(), 10);
        assert!(history.improved());
    }

    #[test]
    fn p3gm_trains_under_noise_and_reports_privacy() {
        let mut r = rng();
        let data = bimodal(&mut r, 120);
        let (model, history) =
            PhasedGenerativeModel::fit(&mut r, &data, small_config(true)).unwrap();
        assert_eq!(history.len(), 10);
        let spec = model.training_privacy_spec().expect("P3GM is private");
        assert!(spec.epsilon.is_finite() && spec.epsilon > 0.0);
        assert_eq!(spec.delta, 1e-5);
        // Reconstruction is still meaningfully better than random guessing
        // (BCE of ~0.69 per dimension on [0,1] data with p=0.5).
        let loss = model.reconstruction_loss(&data);
        assert!(loss < 8.0 * 0.69, "reconstruction loss {loss}");
    }

    #[test]
    fn non_private_pgm_has_no_privacy_spec() {
        let mut r = rng();
        let data = bimodal(&mut r, 60);
        let model =
            PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(false)).unwrap();
        assert!(model.privacy_spec(60).is_none());
        assert!(model.training_privacy_spec().is_none());
    }

    #[test]
    fn samples_have_correct_shape_and_range() {
        let mut r = rng();
        let data = bimodal(&mut r, 80);
        let (model, _) = PhasedGenerativeModel::fit(&mut r, &data, small_config(false)).unwrap();
        let samples = model.sample(&mut r, 25);
        assert_eq!(samples.shape(), (25, 8));
        assert!(samples.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn generated_samples_resemble_the_two_modes() {
        let mut r = rng();
        let data = bimodal(&mut r, 200);
        let mut cfg = small_config(false);
        cfg.epochs = 30;
        let (model, _) = PhasedGenerativeModel::fit(&mut r, &data, cfg).unwrap();
        let samples = model.sample(&mut r, 60);
        // Every sample should be closer to one of the two true modes than to
        // the uniform 0.5 vector.
        let mode_a: Vec<f64> = (0..8).map(|j| if j < 4 { 0.9 } else { 0.1 }).collect();
        let mode_b: Vec<f64> = (0..8).map(|j| if j < 4 { 0.1 } else { 0.9 }).collect();
        let uniform = vec![0.5; 8];
        let mut near_modes = 0;
        for row in samples.row_iter() {
            let da = p3gm_linalg::vector::distance(row, &mode_a);
            let db = p3gm_linalg::vector::distance(row, &mode_b);
            let du = p3gm_linalg::vector::distance(row, &uniform);
            if da.min(db) < du {
                near_modes += 1;
            }
        }
        assert!(
            near_modes as f64 / 60.0 > 0.6,
            "only {near_modes}/60 samples near the true modes"
        );
    }

    #[test]
    fn ae_variant_trains_only_the_decoder() {
        let mut r = rng();
        let data = bimodal(&mut r, 80);
        let cfg = small_config(false).autoencoder_variant();
        let model = PhasedGenerativeModel::encode_phase(&mut r, &data, cfg).unwrap();
        assert!(!model.trains_variance());
        // Frozen log-variance is the configured constant.
        let lv = model.encode_logvar(data.row(0));
        assert!(lv.iter().all(|&v| (v + 20.0).abs() < 1e-12));
        // Training still works and reduces loss.
        let mut model = model;
        let before = model.reconstruction_loss(&data);
        for _ in 0..10 {
            model.train_epoch(&mut r, &data).unwrap();
        }
        let after = model.reconstruction_loss(&data);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn byte_round_trip_samples_bit_identically() {
        let mut r = rng();
        let data = bimodal(&mut r, 120);
        for private in [false, true] {
            let (model, _) =
                PhasedGenerativeModel::fit(&mut r, &data, small_config(private)).unwrap();
            let back = PhasedGenerativeModel::from_bytes(&model.to_bytes()).unwrap();
            assert_eq!(back.data_dim(), model.data_dim());
            assert_eq!(back.trained_epochs(), model.trained_epochs());
            assert_eq!(back.config(), model.config());
            // Deterministic surfaces match bitwise.
            assert_eq!(
                back.encode_mean(data.row(0)),
                model.encode_mean(data.row(0))
            );
            assert_eq!(
                back.reconstruct(data.row(3)),
                model.reconstruct(data.row(3))
            );
            // Sampling with the same seed is bit-identical to the model
            // that never left memory.
            let mut r1 = StdRng::seed_from_u64(777);
            let mut r2 = StdRng::seed_from_u64(777);
            let original = model.sample(&mut r1, 40);
            let reloaded = back.sample(&mut r2, 40);
            assert_eq!(original.as_slice(), reloaded.as_slice());
            // The privacy stamp recomputes identically from the restored
            // configuration and training-set size.
            assert_eq!(back.training_privacy_spec(), model.training_privacy_spec());
        }
    }

    #[test]
    fn from_bytes_rejects_malformed_buffers() {
        let mut r = rng();
        let data = bimodal(&mut r, 80);
        let model = PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(true)).unwrap();
        let bytes = model.to_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                PhasedGenerativeModel::from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut}"
            );
        }
        let mut corrupted = bytes.clone();
        corrupted[bytes.len() / 2] ^= 0x02;
        assert!(PhasedGenerativeModel::from_bytes(&corrupted).is_err());
        assert!(PhasedGenerativeModel::from_bytes(&[]).is_err());
    }

    #[test]
    fn config_validation_propagates() {
        let mut r = rng();
        let data = bimodal(&mut r, 40);
        let mut cfg = small_config(true);
        cfg.latent_dim = 50; // larger than data dimension
        assert!(PhasedGenerativeModel::encode_phase(&mut r, &data, cfg).is_err());
        let mut cfg = small_config(true);
        cfg.sigma_s = 0.0;
        assert!(PhasedGenerativeModel::encode_phase(&mut r, &data, cfg).is_err());
    }

    #[test]
    fn train_epoch_rejects_wrong_width() {
        let mut r = rng();
        let data = bimodal(&mut r, 40);
        let mut model =
            PhasedGenerativeModel::encode_phase(&mut r, &data, small_config(false)).unwrap();
        assert!(model.train_epoch(&mut r, &Matrix::zeros(5, 3)).is_err());
        assert!(model.train_epoch(&mut r, &Matrix::zeros(0, 8)).is_err());
    }

    #[test]
    fn paper_epsilon_ballpark_for_table_iv_settings() {
        // MNIST row of Table IV: sigma_s = 1.42, batch 240, 10 epochs,
        // N = 63 000, eps_p = 0.1, Te = 20, dm = 3 → the paper reports
        // (1, 1e-5)-DP. Our accountant should place it near 1.
        let cfg = PgmConfig {
            sigma_s: 1.42,
            batch_size: 240,
            epochs: 10,
            eps_p: 0.1,
            em_iterations: 20,
            mog_components: 3,
            sigma_e: 70.0,
            ..PgmConfig::default()
        };
        let n = 63_000;
        let spec = RdpAccountant::p3gm_total(
            cfg.eps_p,
            cfg.em_iterations,
            cfg.sigma_e,
            cfg.mog_components,
            cfg.sgd_steps(n),
            cfg.sampling_probability(n),
            cfg.sigma_s,
            cfg.delta,
        )
        .unwrap();
        assert!(
            spec.epsilon > 0.3 && spec.epsilon < 2.0,
            "epsilon {} not near the paper's 1.0",
            spec.epsilon
        );
    }
}
