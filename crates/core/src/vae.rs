//! Variational autoencoder with end-to-end training — the `VAE` and
//! `DP-VAE` baselines of the paper.
//!
//! The encoder maps `x` to the mean and log-variance of a diagonal Gaussian
//! `q_φ(z|x)`; the decoder maps a reparametrized sample `z = µ + σ ⊙ ε`
//! back to logits over `x`. The objective is the negative ELBO of paper
//! Eq. (1) with the standard-normal prior. With `sigma_s > 0` the gradients
//! are privatized with DP-SGD (DP-VAE).

use crate::averaging::PolyakAverager;
use crate::config::{DecoderLoss, VaeConfig};
use crate::history::{EpochStats, TrainingHistory};
use crate::{CoreError, GenerativeModel, Result};
use p3gm_linalg::Matrix;
use p3gm_nn::activation::{sigmoid, Activation};
use p3gm_nn::dpsgd::{sample_batch_indices, DpSgdConfig};
use p3gm_nn::loss::{bce_with_logits, kl_diag_gaussian_standard, sse};
use p3gm_nn::mlp::Mlp;
use p3gm_nn::optimizer::{Adam, Optimizer};
use p3gm_privacy::rdp::{DpSgdBound, PrivacySpec, RdpAccountant};
use p3gm_privacy::sampling;
use rand::Rng;

/// A (DP-)VAE with two-layer MLP encoder and decoder.
#[derive(Debug, Clone)]
pub struct Vae {
    encoder: Mlp,
    decoder: Mlp,
    config: VaeConfig,
    data_dim: usize,
    optimizer: Adam,
    trained_epochs: usize,
    /// Raw (non-averaged) optimizer iterate; the networks hold the
    /// Polyak-averaged weights between epochs (see [`PolyakAverager`]).
    raw_params: Option<Vec<f64>>,
    averager: PolyakAverager,
}

impl Vae {
    /// Builds an untrained VAE for `data_dim`-dimensional data.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, data_dim: usize, config: VaeConfig) -> Result<Self> {
        if data_dim == 0 {
            return Err(CoreError::InvalidConfig {
                msg: "data_dim must be positive".to_string(),
            });
        }
        if config.latent_dim == 0 || config.latent_dim > data_dim {
            return Err(CoreError::InvalidConfig {
                msg: format!(
                    "latent_dim must be in 1..={data_dim}, got {}",
                    config.latent_dim
                ),
            });
        }
        let encoder = Mlp::new(
            rng,
            &[data_dim, config.hidden_dim, 2 * config.latent_dim],
            Activation::Relu,
            Activation::Identity,
        );
        let decoder = Mlp::new(
            rng,
            &[config.latent_dim, config.hidden_dim, data_dim],
            Activation::Relu,
            Activation::Identity,
        );
        let optimizer = Adam::new(config.learning_rate);
        Ok(Vae {
            encoder,
            decoder,
            config,
            data_dim,
            optimizer,
            trained_epochs: 0,
            raw_params: None,
            averager: PolyakAverager::new(0.95),
        })
    }

    /// Trains a VAE on `data` (rows in `[0, 1]` for the Bernoulli decoder)
    /// for the configured number of epochs.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        config: VaeConfig,
    ) -> Result<(Self, TrainingHistory)> {
        config.validate(data.rows(), data.cols())?;
        let mut vae = Vae::new(rng, data.cols(), config)?;
        let mut history = TrainingHistory::new();
        for _ in 0..vae.config.epochs {
            history.push(vae.train_epoch(rng, data)?);
        }
        Ok((vae, history))
    }

    /// The training configuration.
    pub fn config(&self) -> &VaeConfig {
        &self.config
    }

    /// Dimensionality of the data space.
    pub fn data_dim(&self) -> usize {
        self.data_dim
    }

    /// Number of epochs trained so far.
    pub fn trained_epochs(&self) -> usize {
        self.trained_epochs
    }

    /// Total number of trainable parameters (encoder + decoder).
    pub fn num_params(&self) -> usize {
        self.encoder.num_params() + self.decoder.num_params()
    }

    /// Runs one epoch of training and returns its statistics. Exposed so the
    /// learning-efficiency experiments (Figure 7) can evaluate the model
    /// after every epoch.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        data: &Matrix,
    ) -> Result<EpochStats> {
        if data.cols() != self.data_dim {
            return Err(CoreError::InvalidData {
                msg: format!("expected {} features, got {}", self.data_dim, data.cols()),
            });
        }
        let n = data.rows();
        if n == 0 {
            return Err(CoreError::InvalidData {
                msg: "empty training data".to_string(),
            });
        }
        let batch = self.config.batch_size.min(n).max(1);
        let steps_per_epoch = n.div_ceil(batch);
        let dp = if self.config.is_private() {
            Some(DpSgdConfig {
                clip_norm: self.config.clip_norm,
                noise_multiplier: self.config.sigma_s,
                batch_size: batch,
            })
        } else {
            None
        };

        // Resume from the raw optimizer iterate: the networks hold the
        // Polyak-averaged weights between epochs.
        let mut params: Vec<f64> = match self.raw_params.take() {
            Some(p) => p,
            None => self.flat_params(),
        };
        // Re-install the raw iterate before computing any gradients: the
        // networks currently hold the averaged weights from the previous
        // epoch, and gradients must be evaluated at the point the optimizer
        // actually updates.
        self.set_flat_params(&params);
        let mut recon_sum = 0.0;
        let mut kl_sum = 0.0;
        let mut examples = 0usize;

        let n_params = params.len();
        let d = self.config.latent_dim;
        for _ in 0..steps_per_epoch {
            let indices = sample_batch_indices(rng, n, batch);
            let xb = data
                .select_rows(&indices)
                .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;
            let b = xb.rows();
            // Draw the reparametrization noise serially (row-major, the same
            // rng order as the per-example loop used), then compute the
            // per-example gradients on parallel row chunks — bit-identical
            // for every thread count.
            let eps = Matrix::from_fn(b, d, |_, _| sampling::normal(rng, 0.0, 1.0));
            let mut per_example = Matrix::zeros(b, n_params);
            let rows_per_chunk = p3gm_parallel::default_chunk_len(b);
            let losses = p3gm_parallel::par_chunks_mut_map(
                per_example.as_mut_slice(),
                rows_per_chunk * n_params,
                |chunk_index, grad_chunk| {
                    let base = chunk_index * rows_per_chunk;
                    grad_chunk
                        .chunks_mut(n_params)
                        .enumerate()
                        .map(|(local, grad_row)| {
                            let i = base + local;
                            self.example_gradient_into(xb.row(i), eps.row(i), grad_row)
                        })
                        .collect::<Vec<_>>()
                },
            );
            for (recon, kl) in losses.into_iter().flatten() {
                recon_sum += recon;
                kl_sum += kl;
                examples += 1;
            }
            match &dp {
                Some(cfg) => {
                    cfg.step(rng, &per_example, &mut params, &mut self.optimizer)
                        .map_err(|e| CoreError::Substrate { msg: e.to_string() })?;
                }
                None => {
                    let mut avg = per_example.column_sums();
                    p3gm_linalg::vector::scale(1.0 / b as f64, &mut avg);
                    self.optimizer.step(&mut params, &avg);
                }
            }
            self.set_flat_params(&params);
            self.averager.update(&params);
        }

        // Install the averaged weights for inference; keep the raw iterate
        // so the next epoch's optimization continues undisturbed.
        if let Some(avg) = self.averager.average() {
            self.raw_params = Some(params);
            self.set_flat_params(&avg);
        }

        let stats = EpochStats {
            epoch: self.trained_epochs,
            reconstruction_loss: recon_sum / examples.max(1) as f64,
            kl_loss: kl_sum / examples.max(1) as f64,
            steps: steps_per_epoch,
        };
        self.trained_epochs += 1;
        Ok(stats)
    }

    /// Encodes one row to the mean and log-variance of `q_φ(z|x)`.
    pub fn encode(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let out = self.encoder.forward(x);
        let d = self.config.latent_dim;
        (out[..d].to_vec(), out[d..].to_vec())
    }

    /// Decodes a latent vector to the data-space mean (sigmoid of the logits
    /// for the Bernoulli decoder, raw output for the Gaussian decoder).
    pub fn decode(&self, z: &[f64]) -> Vec<f64> {
        let logits = self.decoder.forward(z);
        match self.config.decoder_loss {
            DecoderLoss::Bernoulli => logits.iter().map(|&l| sigmoid(l)).collect(),
            DecoderLoss::Gaussian => logits,
        }
    }

    /// Deterministic reconstruction of one row (encode to the mean, decode).
    pub fn reconstruct(&self, x: &[f64]) -> Vec<f64> {
        let (mu, _) = self.encode(x);
        self.decode(&mu)
    }

    /// Average per-example reconstruction loss over a dataset (no sampling
    /// noise; uses the encoder mean). Accumulated over parallel row chunks
    /// with a deterministic in-order fold.
    pub fn reconstruction_loss(&self, data: &Matrix) -> f64 {
        let total = p3gm_parallel::par_map_reduce(
            data.rows(),
            p3gm_parallel::default_chunk_len(data.rows()),
            |range| {
                let mut sum = 0.0;
                for i in range {
                    let row = data.row(i);
                    let (mu, _) = self.encode(row);
                    let logits = self.decoder.forward(&mu);
                    sum += match self.config.decoder_loss {
                        DecoderLoss::Bernoulli => bce_with_logits(&logits, row).0,
                        DecoderLoss::Gaussian => sse(&logits, row).0,
                    };
                }
                sum
            },
            |a, b| a + b,
        )
        .unwrap_or(0.0);
        total / data.rows().max(1) as f64
    }

    /// The (ε, δ)-DP guarantee of training this configuration on `n` rows,
    /// or `None` for the non-private VAE.
    pub fn privacy_spec(&self, n: usize) -> Option<PrivacySpec> {
        if !self.config.is_private() {
            return None;
        }
        let mut acc = RdpAccountant::default();
        acc.add_dp_sgd(
            self.config.sgd_steps(n),
            self.config.sampling_probability(n),
            self.config.sigma_s,
            DpSgdBound::PaperEq4,
        )
        .ok()?;
        acc.to_dp(self.config.delta).ok()
    }

    /// Per-example ELBO gradient with respect to all parameters, written
    /// into `out` (encoder block then decoder block, matching the flat
    /// parameter layout). `eps` is the example's pre-drawn standard-normal
    /// reparametrization noise, so this function is deterministic and safe
    /// to run on worker threads. Returns the reconstruction and KL losses.
    fn example_gradient_into(&self, x: &[f64], eps: &[f64], out: &mut [f64]) -> (f64, f64) {
        let d = self.config.latent_dim;
        let enc_cache = self.encoder.forward_cached(x);
        let enc_out = enc_cache.output();
        let mu = &enc_out[..d];
        let logvar = &enc_out[d..];

        // Reparametrization trick with the pre-drawn noise.
        let sigma: Vec<f64> = logvar.iter().map(|&l| (0.5 * l).exp()).collect();
        let z: Vec<f64> = (0..d).map(|i| mu[i] + sigma[i] * eps[i]).collect();

        let (enc_grads, dec_grads) = out.split_at_mut(self.encoder.num_params());
        let dec_cache = self.decoder.forward_cached(&z);
        let (recon, grad_logits) = match self.config.decoder_loss {
            DecoderLoss::Bernoulli => bce_with_logits(dec_cache.output(), x),
            DecoderLoss::Gaussian => sse(dec_cache.output(), x),
        };
        let grad_z = self.decoder.backward(&dec_cache, &grad_logits, dec_grads);

        let (kl, kl_grad_mu, kl_grad_logvar) = kl_diag_gaussian_standard(mu, logvar);

        // Chain the reconstruction gradient through the reparametrization.
        let mut grad_enc_out = vec![0.0; 2 * d];
        for i in 0..d {
            grad_enc_out[i] = grad_z[i] + kl_grad_mu[i];
            grad_enc_out[d + i] = grad_z[i] * 0.5 * sigma[i] * eps[i] + kl_grad_logvar[i];
        }
        self.encoder.backward(&enc_cache, &grad_enc_out, enc_grads);
        (recon, kl)
    }

    fn flat_params(&self) -> Vec<f64> {
        let mut p = self.encoder.params();
        p.extend(self.decoder.params());
        p
    }

    fn set_flat_params(&mut self, params: &[f64]) {
        let enc_n = self.encoder.num_params();
        self.encoder.set_params(&params[..enc_n]);
        self.decoder.set_params(&params[enc_n..]);
    }
}

impl GenerativeModel for Vae {
    fn sample(&self, rng: &mut dyn rand::RngCore, n: usize) -> Matrix {
        let d = self.config.latent_dim;
        let mut out = Matrix::zeros(n, self.data_dim);
        for i in 0..n {
            let z = sampling::normal_vec(rng, d, 1.0);
            out.row_mut(i).copy_from_slice(&self.decode(&z));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(111)
    }

    /// Tiny bimodal dataset in [0,1]^6: half the rows light up the first
    /// three features, half the last three.
    fn bimodal(rng: &mut StdRng, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..6)
                    .map(|j| {
                        let base = if (j < 3) == hot { 0.9 } else { 0.1 };
                        (base + sampling::normal(rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn small_config() -> VaeConfig {
        VaeConfig {
            latent_dim: 2,
            hidden_dim: 16,
            epochs: 15,
            batch_size: 16,
            learning_rate: 5e-3,
            ..Default::default()
        }
    }

    #[test]
    fn construction_validates() {
        let mut r = rng();
        assert!(Vae::new(&mut r, 0, small_config()).is_err());
        let bad = VaeConfig {
            latent_dim: 10,
            ..small_config()
        };
        assert!(Vae::new(&mut r, 6, bad).is_err());
        let vae = Vae::new(&mut r, 6, small_config()).unwrap();
        assert_eq!(vae.data_dim(), 6);
        assert!(vae.num_params() > 0);
        assert_eq!(vae.trained_epochs(), 0);
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let mut r = rng();
        let data = bimodal(&mut r, 120);
        let untrained = Vae::new(&mut r, 6, small_config()).unwrap();
        let before = untrained.reconstruction_loss(&data);
        let (vae, history) = Vae::fit(&mut r, &data, small_config()).unwrap();
        let after = vae.reconstruction_loss(&data);
        assert!(
            after < before,
            "reconstruction loss should drop: {before} -> {after}"
        );
        assert_eq!(history.len(), 15);
        assert!(history.improved());
        assert_eq!(vae.trained_epochs(), 15);
    }

    #[test]
    fn samples_have_correct_shape_and_range() {
        let mut r = rng();
        let data = bimodal(&mut r, 60);
        let (vae, _) = Vae::fit(&mut r, &data, small_config()).unwrap();
        let samples = vae.sample(&mut r, 32);
        assert_eq!(samples.shape(), (32, 6));
        assert!(samples.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn encode_decode_roundtrip_shapes() {
        let mut r = rng();
        let vae = Vae::new(&mut r, 6, small_config()).unwrap();
        let (mu, logvar) = vae.encode(&[0.5; 6]);
        assert_eq!(mu.len(), 2);
        assert_eq!(logvar.len(), 2);
        assert_eq!(vae.decode(&mu).len(), 6);
        assert_eq!(vae.reconstruct(&[0.5; 6]).len(), 6);
    }

    #[test]
    fn dp_vae_trains_and_reports_privacy() {
        let mut r = rng();
        let data = bimodal(&mut r, 80);
        let cfg = VaeConfig {
            sigma_s: 2.0,
            epochs: 3,
            ..small_config()
        };
        let (vae, history) = Vae::fit(&mut r, &data, cfg).unwrap();
        assert_eq!(history.len(), 3);
        let spec = vae.privacy_spec(80).expect("private config has a spec");
        assert!(spec.epsilon > 0.0 && spec.epsilon.is_finite());
        assert_eq!(spec.delta, 1e-5);
        // Non-private VAE reports no privacy guarantee.
        let (plain, _) = Vae::fit(&mut r, &data, small_config()).unwrap();
        assert!(plain.privacy_spec(80).is_none());
    }

    #[test]
    fn dp_vae_with_more_noise_learns_worse() {
        let mut r = rng();
        let data = bimodal(&mut r, 100);
        let loss_with = |sigma: f64, r: &mut StdRng| {
            let cfg = VaeConfig {
                sigma_s: sigma,
                epochs: 8,
                ..small_config()
            };
            let (vae, _) = Vae::fit(r, &data, cfg).unwrap();
            vae.reconstruction_loss(&data)
        };
        // Average two runs each to reduce randomness.
        let low = (loss_with(0.5, &mut r) + loss_with(0.5, &mut r)) / 2.0;
        let high = (loss_with(30.0, &mut r) + loss_with(30.0, &mut r)) / 2.0;
        assert!(
            high > low,
            "huge noise should hurt reconstruction: low {low}, high {high}"
        );
    }

    #[test]
    fn gaussian_decoder_variant_trains() {
        let mut r = rng();
        let data = bimodal(&mut r, 60);
        let cfg = VaeConfig {
            decoder_loss: DecoderLoss::Gaussian,
            epochs: 5,
            ..small_config()
        };
        let (vae, history) = Vae::fit(&mut r, &data, cfg).unwrap();
        assert_eq!(history.len(), 5);
        // Gaussian decoder output is unbounded, but should stay finite.
        let samples = vae.sample(&mut r, 8);
        assert!(samples.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn train_epoch_rejects_wrong_width() {
        let mut r = rng();
        let mut vae = Vae::new(&mut r, 6, small_config()).unwrap();
        let bad = Matrix::zeros(10, 3);
        assert!(vae.train_epoch(&mut r, &bad).is_err());
        assert!(vae.train_epoch(&mut r, &Matrix::zeros(0, 6)).is_err());
    }
}
