//! Label-aware data synthesis (paper §IV-E and §VI).
//!
//! The paper attaches the class label to each training row as a one-hot
//! suffix, trains the generative model on the concatenation, and generates
//! synthetic data "so that the label ratio is the same as the real training
//! dataset".  This module implements that protocol generically over any
//! [`GenerativeModel`]:
//!
//! 1. [`LabelledSynthesizer::prepare`] appends the one-hot labels and
//!    min-max-scales the features into `[0, 1]` and then weights the
//!    feature block by `sqrt(n_classes / n_features)` so the one-hot label
//!    columns keep a comparable share of the total variance (the Bernoulli
//!    decoder still applies — all entries stay in `[0, 1]`).
//! 2. The caller trains any generative model on the prepared matrix.
//! 3. [`LabelledSynthesizer::split`] converts generated rows back into
//!    features (in original units) and labels, and
//!    [`synthesize_labelled`] repeatedly samples until the requested
//!    per-class counts are met (falling back to closest-ratio assignment if
//!    a class is never generated).

use crate::{CoreError, GenerativeModel, Result};
use p3gm_linalg::Matrix;
use p3gm_preprocess::encoding::OneHotEncoder;
use p3gm_preprocess::scaler::MinMaxScaler;
use rand::Rng;

/// Prepares labelled data for a generative model and converts generated
/// rows back into (features, label) pairs.
#[derive(Debug, Clone)]
pub struct LabelledSynthesizer {
    encoder: OneHotEncoder,
    scaler: MinMaxScaler,
    n_features: usize,
    /// Scale applied to the (min-max-scaled) feature block so that its total
    /// variance budget is comparable to the one-hot label block. Without
    /// this, a wide feature matrix drowns the `n_classes` label columns and
    /// the generative model's latent space barely encodes the label,
    /// breaking the feature↔label association of the synthetic data. The
    /// weight depends only on the (public) column counts, not on the data.
    feature_weight: f64,
}

impl LabelledSynthesizer {
    /// Fits the scaler on `features` and records the label encoding.
    ///
    /// Returns the synthesizer and the prepared training matrix
    /// (features min-max-scaled to `[0, 1]` and then multiplied by the
    /// public `sqrt(n_classes / n_features)` feature weight, with the
    /// one-hot label appended).
    pub fn prepare(
        features: &Matrix,
        labels: &[usize],
        n_classes: usize,
    ) -> Result<(Self, Matrix)> {
        if features.rows() != labels.len() {
            return Err(CoreError::InvalidData {
                msg: format!(
                    "{} feature rows but {} labels",
                    features.rows(),
                    labels.len()
                ),
            });
        }
        let encoder = OneHotEncoder::new(n_classes)
            .map_err(|e| CoreError::InvalidConfig { msg: e.to_string() })?;
        let scaler = MinMaxScaler::fit(features)
            .map_err(|e| CoreError::InvalidData { msg: e.to_string() })?;
        let feature_weight = (n_classes as f64 / features.cols().max(1) as f64)
            .sqrt()
            .min(1.0);
        let scaled = scaler
            .transform(features)
            .map_err(|e| CoreError::InvalidData { msg: e.to_string() })?
            .scale(feature_weight);
        let prepared = encoder
            .append_to_rows(&scaled, labels)
            .map_err(|e| CoreError::InvalidData { msg: e.to_string() })?;
        Ok((
            LabelledSynthesizer {
                encoder,
                scaler,
                n_features: features.cols(),
                feature_weight,
            },
            prepared,
        ))
    }

    /// Width of the prepared rows (features + one-hot labels).
    pub fn prepared_width(&self) -> usize {
        self.n_features + self.encoder.n_classes()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.encoder.n_classes()
    }

    /// Serializes the synthesizer into a framed `p3gm-store` buffer
    /// (label encoder, feature scaler, feature geometry and the public
    /// feature weight).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::LABELLED_SYNTHESIZER);
        enc.nested(&self.encoder.to_bytes());
        enc.nested(&self.scaler.to_bytes());
        enc.usize(self.n_features).f64(self.feature_weight);
        enc.finish()
    }

    /// Deserializes a synthesizer from a buffer produced by
    /// [`LabelledSynthesizer::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Self> {
        use p3gm_store::StoreError;
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::LABELLED_SYNTHESIZER)?;
        let encoder = OneHotEncoder::from_bytes(dec.nested()?)?;
        let scaler = MinMaxScaler::from_bytes(dec.nested()?)?;
        let n_features = dec.usize()?;
        let feature_weight = dec.f64()?;
        dec.finish()?;
        if scaler.mins().len() != n_features {
            return Err(StoreError::Invalid {
                msg: format!(
                    "scaler covers {} features, synthesizer claims {n_features}",
                    scaler.mins().len()
                ),
            });
        }
        if !(feature_weight.is_finite() && feature_weight > 0.0 && feature_weight <= 1.0) {
            return Err(StoreError::Invalid {
                msg: format!("feature weight must be in (0, 1], got {feature_weight}"),
            });
        }
        Ok(LabelledSynthesizer {
            encoder,
            scaler,
            n_features,
            feature_weight,
        })
    }

    /// Splits generated rows back into original-unit features and labels.
    pub fn split(&self, generated: &Matrix) -> Result<(Matrix, Vec<usize>)> {
        let (weighted, labels) = self
            .encoder
            .split_rows(generated)
            .map_err(|e| CoreError::InvalidData { msg: e.to_string() })?;
        let scaled = weighted.scale(1.0 / self.feature_weight);
        let features = self
            .scaler
            .inverse_transform(&scaled)
            .map_err(|e| CoreError::InvalidData { msg: e.to_string() })?;
        Ok((features, labels))
    }
}

/// Samples from `model` until (approximately) `target_counts[c]` rows of
/// every class `c` have been collected, or the sampling budget
/// (`8 × total`) is exhausted — in which case the remaining slots are filled
/// with whatever the model produces, re-labelled round-robin to respect the
/// requested ratio (this mirrors how the evaluation protocol always trains
/// the downstream classifier on the requested label distribution).
///
/// Returns `(features, labels)` in original feature units.
pub fn synthesize_labelled<M: GenerativeModel + ?Sized, R: Rng>(
    model: &M,
    synthesizer: &LabelledSynthesizer,
    rng: &mut R,
    target_counts: &[usize],
) -> Result<(Matrix, Vec<usize>)> {
    if target_counts.len() != synthesizer.n_classes() {
        return Err(CoreError::InvalidConfig {
            msg: format!(
                "expected {} class counts, got {}",
                synthesizer.n_classes(),
                target_counts.len()
            ),
        });
    }
    let total: usize = target_counts.iter().sum();
    if total == 0 {
        return Err(CoreError::InvalidConfig {
            msg: "total synthetic sample count must be positive".to_string(),
        });
    }

    let mut remaining = target_counts.to_vec();
    let mut collected_rows: Vec<Vec<f64>> = Vec::with_capacity(total);
    let mut collected_labels: Vec<usize> = Vec::with_capacity(total);
    let mut leftovers: Vec<Vec<f64>> = Vec::new();

    let budget = total.saturating_mul(8).max(32);
    let chunk = total.clamp(16, 512);
    let mut drawn = 0usize;
    while collected_rows.len() < total && drawn < budget {
        let batch = model.sample(rng, chunk.min(budget - drawn));
        drawn += batch.rows();
        let (features, labels) = synthesizer.split(&batch)?;
        for (row, &label) in features.row_iter().zip(labels.iter()) {
            if remaining[label] > 0 {
                remaining[label] -= 1;
                collected_rows.push(row.to_vec());
                collected_labels.push(label);
            } else {
                leftovers.push(row.to_vec());
            }
            if collected_rows.len() == total {
                break;
            }
        }
    }

    // Fill any shortfall from the leftovers (or fresh samples), assigning
    // the still-needed labels round-robin.
    let mut needed: Vec<usize> = Vec::new();
    for (class, &count) in remaining.iter().enumerate() {
        needed.extend(std::iter::repeat_n(class, count));
    }
    let mut leftover_iter = leftovers.into_iter();
    for class in needed {
        let row = match leftover_iter.next() {
            Some(r) => r,
            None => {
                let batch = model.sample(rng, 1);
                let (features, _) = synthesizer.split(&batch)?;
                features.row(0).to_vec()
            }
        };
        collected_rows.push(row);
        collected_labels.push(class);
    }

    let features = Matrix::from_rows(&collected_rows)
        .map_err(|e| CoreError::InvalidData { msg: e.to_string() })?;
    Ok((features, collected_labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3gm_privacy::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(151)
    }

    /// A fake generative model that replays the rows it was given, cycling.
    struct Replay {
        rows: Matrix,
    }

    impl GenerativeModel for Replay {
        fn sample(&self, rng: &mut dyn rand::RngCore, n: usize) -> Matrix {
            let total = self.rows.rows();
            let start = (rng.next_u32() as usize) % total;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| self.rows.row((start + i) % total).to_vec())
                .collect();
            Matrix::from_rows(&rows).unwrap()
        }
    }

    fn toy_data(rng: &mut StdRng, n: usize) -> (Matrix, Vec<usize>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let label = i % 3;
                vec![
                    label as f64 * 10.0 + sampling::normal(rng, 0.0, 0.1),
                    5.0 + sampling::normal(rng, 0.0, 1.0),
                ]
            })
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn prepare_produces_scaled_rows_with_onehot_suffix() {
        let mut r = rng();
        let (x, y) = toy_data(&mut r, 30);
        let (synth, prepared) = LabelledSynthesizer::prepare(&x, &y, 3).unwrap();
        assert_eq!(prepared.shape(), (30, 5));
        assert_eq!(synth.prepared_width(), 5);
        assert_eq!(synth.n_classes(), 3);
        // Feature columns are in [0, 1]; label columns are one-hot.
        for (row, &label) in prepared.row_iter().zip(y.iter()) {
            assert!(row[..2].iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert_eq!(row[2 + label], 1.0);
            assert_eq!(row[2..].iter().sum::<f64>(), 1.0);
        }
    }

    #[test]
    fn prepare_rejects_mismatched_labels() {
        let (x, _) = toy_data(&mut rng(), 10);
        assert!(LabelledSynthesizer::prepare(&x, &[0, 1], 3).is_err());
    }

    #[test]
    fn split_round_trips_prepared_rows() {
        let mut r = rng();
        let (x, y) = toy_data(&mut r, 30);
        let (synth, prepared) = LabelledSynthesizer::prepare(&x, &y, 3).unwrap();
        let (features, labels) = synth.split(&prepared).unwrap();
        assert_eq!(labels, y);
        assert!(features.approx_eq(&x, 1e-9));
    }

    #[test]
    fn byte_round_trip_splits_bit_identically() {
        let mut r = rng();
        let (x, y) = toy_data(&mut r, 30);
        let (synth, prepared) = LabelledSynthesizer::prepare(&x, &y, 3).unwrap();
        let back = LabelledSynthesizer::from_bytes(&synth.to_bytes()).unwrap();
        assert_eq!(back.prepared_width(), synth.prepared_width());
        assert_eq!(back.n_classes(), synth.n_classes());
        let (f1, l1) = synth.split(&prepared).unwrap();
        let (f2, l2) = back.split(&prepared).unwrap();
        assert_eq!(f1.as_slice(), f2.as_slice());
        assert_eq!(l1, l2);
        // Malformed buffers are typed errors.
        let bytes = synth.to_bytes();
        assert!(LabelledSynthesizer::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn synthesize_matches_requested_label_counts() {
        let mut r = rng();
        let (x, y) = toy_data(&mut r, 60);
        let (synth, prepared) = LabelledSynthesizer::prepare(&x, &y, 3).unwrap();
        let model = Replay { rows: prepared };
        let targets = vec![10, 5, 15];
        let (features, labels) = synthesize_labelled(&model, &synth, &mut r, &targets).unwrap();
        assert_eq!(features.rows(), 30);
        assert_eq!(labels.len(), 30);
        for (class, &target) in targets.iter().enumerate() {
            let count = labels.iter().filter(|&&l| l == class).count();
            assert_eq!(count, target, "class {class}");
        }
        // Features are back in original units (first column spans ~0..20).
        let col0 = features.col(0);
        assert!(col0.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 15.0);
    }

    #[test]
    fn synthesize_fills_missing_classes_by_relabelling() {
        let mut r = rng();
        // The replay model only ever produces class-0 rows.
        let (x, y) = toy_data(&mut r, 30);
        let only_class0: Vec<usize> = x
            .row_iter()
            .zip(y.iter())
            .enumerate()
            .filter(|(_, (_, &l))| l == 0)
            .map(|(i, _)| i)
            .collect();
        let x0 = x.select_rows(&only_class0).unwrap();
        let y0: Vec<usize> = vec![0; x0.rows()];
        let (synth, prepared) = LabelledSynthesizer::prepare(&x0, &y0, 3).unwrap();
        let model = Replay { rows: prepared };
        let targets = vec![4, 4, 4];
        let (features, labels) = synthesize_labelled(&model, &synth, &mut r, &targets).unwrap();
        assert_eq!(features.rows(), 12);
        for class in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == class).count(), 4);
        }
    }

    #[test]
    fn synthesize_validates_inputs() {
        let mut r = rng();
        let (x, y) = toy_data(&mut r, 12);
        let (synth, prepared) = LabelledSynthesizer::prepare(&x, &y, 3).unwrap();
        let model = Replay { rows: prepared };
        assert!(synthesize_labelled(&model, &synth, &mut r, &[1, 2]).is_err());
        assert!(synthesize_labelled(&model, &synth, &mut r, &[0, 0, 0]).is_err());
    }
}
