//! Training telemetry: what a (P3)GM fit *did*, as counts and released
//! diagnostics.
//!
//! [`TrainReport`] is filled in by the observed training entry points
//! ([`crate::PhasedGenerativeModel::fit_with_report`] and
//! [`crate::PhasedGenerativeModel::train_epoch_observed`]) and exists purely
//! as post-processing: every number in it is either a deterministic count of
//! events that happened anyway (steps, clipped rows, EM iterations) or a
//! value the DP mechanisms already released (the EM log-likelihood
//! trajectory is computed from the *noised* responsibilities). Nothing here
//! feeds back into training or the (ε, δ) accounting, and nothing here is
//! persisted.
//!
//! Phase wall-times are recorded only when the caller injects a
//! [`TimeSource`]; this crate never reads a clock itself (conform rule D2),
//! so deterministic callers simply pass `None`.

use p3gm_obs::{MetricsRegistry, TimeSource};

/// Counters and diagnostics accumulated over one training run (or a set of
/// epochs). All counts are bit-identical for any `P3GM_THREADS` setting:
/// they are folded in chunk order alongside the numeric results they
/// describe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainReport {
    /// DP-SGD optimizer steps taken (0 for non-private training).
    pub dp_sgd_steps: u64,
    /// Per-example gradients whose L2 norm exceeded the clip norm.
    pub clipped_examples: u64,
    /// Per-example gradients that went through the clipping decision
    /// (the denominator of [`clipped_fraction`](TrainReport::clipped_fraction)).
    pub clip_measured_examples: u64,
    /// (DP-)EM iterations run during the Encoding Phase.
    pub em_iterations: u64,
    /// Per-iteration EM log-likelihood trajectory (a released diagnostic:
    /// computed from the mechanism's own noised outputs, no extra budget).
    pub em_log_likelihood: Vec<f64>,
    /// Decoding-Phase epochs covered by this report.
    pub epochs: u64,
    /// Wall-time per phase in nanoseconds, present only when the caller
    /// injected a [`TimeSource`]. Empty reports are the deterministic norm.
    pub phase_nanos: Vec<(&'static str, u64)>,
}

impl TrainReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of measured per-example gradients that were clipped, or
    /// `None` before any DP-SGD step ran. A fraction pinned near 1.0 means
    /// the clip norm dominates the signal; near 0.0 means clipping is
    /// inactive and the noise is calibrated against slack.
    pub fn clipped_fraction(&self) -> Option<f64> {
        if self.clip_measured_examples == 0 {
            None
        } else {
            Some(self.clipped_examples as f64 / self.clip_measured_examples as f64)
        }
    }

    /// Fold another report into this one (counts add, trajectories append,
    /// phase timings append).
    pub fn merge(&mut self, other: &TrainReport) {
        self.dp_sgd_steps += other.dp_sgd_steps;
        self.clipped_examples += other.clipped_examples;
        self.clip_measured_examples += other.clip_measured_examples;
        self.em_iterations += other.em_iterations;
        self.em_log_likelihood
            .extend_from_slice(&other.em_log_likelihood);
        self.epochs += other.epochs;
        self.phase_nanos.extend_from_slice(&other.phase_nanos);
    }

    /// Record the wall-time of `phase` as measured by `timer` since
    /// `start_nanos`. No-op when no timer is injected.
    pub(crate) fn record_phase(
        &mut self,
        timer: Option<&dyn TimeSource>,
        phase: &'static str,
        start_nanos: Option<u64>,
    ) {
        if let (Some(t), Some(start)) = (timer, start_nanos) {
            self.phase_nanos
                .push((phase, t.now_nanos().saturating_sub(start)));
        }
    }

    /// Export the report into a metrics registry under the
    /// `p3gm_train_*` family names (see the README's metric table).
    pub fn record_to(&self, registry: &MetricsRegistry) {
        registry
            .counter(
                "p3gm_train_dp_sgd_steps_total",
                "DP-SGD optimizer steps taken.",
                &[],
            )
            .add(self.dp_sgd_steps);
        registry
            .counter(
                "p3gm_train_clipped_examples_total",
                "Per-example gradients clipped to the L2 clip norm.",
                &[],
            )
            .add(self.clipped_examples);
        registry
            .counter(
                "p3gm_train_examples_total",
                "Per-example gradients that went through the clipping decision.",
                &[],
            )
            .add(self.clip_measured_examples);
        registry
            .counter(
                "p3gm_train_em_iterations_total",
                "(DP-)EM iterations run during the Encoding Phase.",
                &[],
            )
            .add(self.em_iterations);
        registry
            .counter(
                "p3gm_train_epochs_total",
                "Decoding-Phase epochs trained.",
                &[],
            )
            .add(self.epochs);
        if let Some(ll) = self.em_log_likelihood.last() {
            registry
                .gauge(
                    "p3gm_train_em_log_likelihood",
                    "Final (DP-)EM mean log-likelihood of the Encoding Phase.",
                    &[],
                )
                .set(*ll);
        }
        for (phase, nanos) in &self.phase_nanos {
            registry
                .gauge(
                    "p3gm_train_phase_seconds",
                    "Wall-time of a training phase (injected timer only).",
                    &[("phase", phase)],
                )
                .set(*nanos as f64 * 1e-9);
        }
    }

    /// A compact human-readable summary for examples and CLIs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "train report: {} epoch(s), {} DP-SGD step(s), {} EM iteration(s)\n",
            self.epochs, self.dp_sgd_steps, self.em_iterations
        ));
        match self.clipped_fraction() {
            Some(f) => out.push_str(&format!(
                "  clipped gradients: {}/{} ({:.1}%)\n",
                self.clipped_examples,
                self.clip_measured_examples,
                f * 100.0
            )),
            None => out.push_str("  clipped gradients: n/a (no DP-SGD steps)\n"),
        }
        if let (Some(first), Some(last)) = (
            self.em_log_likelihood.first(),
            self.em_log_likelihood.last(),
        ) {
            out.push_str(&format!(
                "  EM log-likelihood: {first:.4} -> {last:.4} over {} point(s)\n",
                self.em_log_likelihood.len()
            ));
        }
        for (phase, nanos) in &self.phase_nanos {
            out.push_str(&format!("  phase {phase}: {:.3} s\n", *nanos as f64 * 1e-9));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3gm_obs::ManualClock;

    #[test]
    fn clipped_fraction_handles_empty_and_counts() {
        let mut r = TrainReport::new();
        assert_eq!(r.clipped_fraction(), None);
        r.clipped_examples = 3;
        r.clip_measured_examples = 12;
        assert_eq!(r.clipped_fraction(), Some(0.25));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrainReport {
            dp_sgd_steps: 2,
            clipped_examples: 1,
            clip_measured_examples: 4,
            em_iterations: 3,
            em_log_likelihood: vec![-5.0],
            epochs: 1,
            phase_nanos: vec![("encode", 10)],
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.dp_sgd_steps, 4);
        assert_eq!(a.em_log_likelihood, vec![-5.0, -5.0]);
        assert_eq!(a.phase_nanos.len(), 2);
    }

    #[test]
    fn record_to_exports_counters_and_gauges() {
        let report = TrainReport {
            dp_sgd_steps: 7,
            clipped_examples: 5,
            clip_measured_examples: 10,
            em_iterations: 4,
            em_log_likelihood: vec![-9.0, -6.5],
            epochs: 2,
            phase_nanos: vec![("encode", 2_000_000_000)],
        };
        let registry = MetricsRegistry::new();
        report.record_to(&registry);
        let text = registry.render();
        assert!(text.contains("p3gm_train_dp_sgd_steps_total 7"));
        assert!(text.contains("p3gm_train_em_log_likelihood -6.5"));
        assert!(text.contains("p3gm_train_phase_seconds{phase=\"encode\"} 2"));
    }

    #[test]
    fn record_phase_uses_injected_timer_only() {
        let clock = ManualClock::new();
        let start = Some(clock.now_nanos());
        clock.advance(500);
        let mut report = TrainReport::new();
        report.record_phase(Some(&clock), "encode", start);
        report.record_phase(None, "decode", start);
        assert_eq!(report.phase_nanos, vec![("encode", 500)]);
        assert!(report.render().contains("phase encode"));
    }
}
