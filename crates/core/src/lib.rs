//! # p3gm-core
//!
//! The paper's primary contribution: the **Privacy-Preserving Phased
//! Generative Model (P3GM)** and the models it is compared against.
//!
//! The crate provides four generative models sharing one encoder–decoder
//! architecture (two fully-connected layers per side, paper §VI):
//!
//! | Model      | Encoder mean        | Encoder variance | Prior    | Optimizer |
//! |------------|---------------------|------------------|----------|-----------|
//! | VAE        | learned             | learned          | N(0, I)  | Adam      |
//! | DP-VAE     | learned             | learned          | N(0, I)  | DP-SGD    |
//! | PGM        | fixed to PCA `f(x)` | learned          | MoG (EM) | Adam      |
//! | P3GM       | fixed to DP-PCA     | learned          | MoG (DP-EM) | DP-SGD |
//! | P3GM (AE)  | fixed to DP-PCA     | frozen           | MoG (DP-EM) | DP-SGD |
//!
//! * [`config`] — hyper-parameter structs for both families.
//! * [`history`] — per-epoch training statistics (reconstruction loss, KL,
//!   ELBO) used by the Figure 7 learning-efficiency experiments.
//! * [`report`] — [`report::TrainReport`]: what a fit *did* (DP-SGD steps,
//!   clipped-gradient fraction, EM log-likelihood trajectory, optional
//!   injected-timer phase times) as pure post-processing telemetry.
//! * [`vae`] — [`vae::Vae`]: end-to-end VAE with optional DP-SGD (DP-VAE).
//! * [`pgm`] — [`pgm::PhasedGenerativeModel`]: the two-phase model with
//!   exact or private Encoding Phase and plain or DP-SGD Decoding Phase.
//! * [`synthesis`] — the label-aware data-synthesis protocol of §IV-E /
//!   §VI (one-hot labels appended to the training rows, synthetic data
//!   generated with the real label ratio).
//! * [`snapshot`] — [`snapshot::SynthesisSnapshot`]: persist a trained
//!   model (with its privacy stamp) to versioned bytes, load it once, and
//!   serve concurrent seedable synthesis requests — sampling is
//!   post-processing, so serving consumes no additional privacy budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod averaging;
pub mod config;
pub mod history;
pub mod pgm;
pub mod report;
pub mod snapshot;
pub mod synthesis;
pub mod vae;

pub use config::{DecoderLoss, PgmConfig, VaeConfig, VarianceMode};
pub use history::{EpochStats, TrainingHistory};
pub use pgm::PhasedGenerativeModel;
pub use report::TrainReport;
pub use snapshot::{SampleRequest, SynthesisSnapshot};
pub use synthesis::{synthesize_labelled, LabelledSynthesizer};
pub use vae::Vae;

use p3gm_linalg::Matrix;
use rand::Rng;

/// Common interface of every generative model in the workspace: draw
/// synthetic rows in the same feature space the model was trained on.
pub trait GenerativeModel {
    /// Draws `n` synthetic rows.
    fn sample(&self, rng: &mut dyn rand::RngCore, n: usize) -> Matrix;
}

/// Errors produced while configuring or training the generative models.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid hyper-parameter combination.
    InvalidConfig {
        /// Description of the problem.
        msg: String,
    },
    /// Invalid or empty training data.
    InvalidData {
        /// Description of the problem.
        msg: String,
    },
    /// A failure propagated from a substrate crate (PCA, EM, DP accounting).
    Substrate {
        /// Description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig { msg } => write!(f, "invalid configuration: {msg}"),
            CoreError::InvalidData { msg } => write!(f, "invalid data: {msg}"),
            CoreError::Substrate { msg } => write!(f, "substrate failure: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Draws `n` samples from any [`GenerativeModel`] using a concrete RNG —
/// a small helper so callers with a `StdRng` don't need to cast to
/// `dyn RngCore` themselves.
pub fn sample_n<M: GenerativeModel + ?Sized, R: Rng>(model: &M, rng: &mut R, n: usize) -> Matrix {
    model.sample(rng, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(CoreError::InvalidConfig {
            msg: "latent_dim = 0".into()
        }
        .to_string()
        .contains("latent_dim"));
        assert!(CoreError::InvalidData {
            msg: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(CoreError::Substrate { msg: "PCA".into() }
            .to_string()
            .contains("PCA"));
    }
}
