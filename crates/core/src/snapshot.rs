//! Snapshot serving: load a persisted P3GM model once, serve synthesis
//! forever.
//!
//! The paper's deployment story (§IV-E) is that the differentially private
//! training cost is paid **once** and the released model is then sampled
//! from arbitrarily often as post-processing — at zero additional privacy
//! cost. [`SynthesisSnapshot`] is the unit that makes this operational: it
//! bundles the trained [`PhasedGenerativeModel`], the optional
//! [`LabelledSynthesizer`] needed to map generated rows back to
//! original-unit features and labels, and the [`PrivacySpec`] stamp
//! certified at save time, into one versioned byte buffer (see
//! `p3gm-store` for the frame layout). The snapshot file is the unit a
//! serving fleet shards, caches and replicates.
//!
//! Serving is **seedable and deterministic**:
//!
//! * [`SynthesisSnapshot::sample`] walks the exact code path of
//!   [`GenerativeModel::sample`] with a seeded RNG, so `save → load →
//!   sample(seed, n)` is bit-identical to sampling the never-persisted
//!   model with the same seed.
//! * [`SynthesisSnapshot::sample_parallel`] fans one large request out over
//!   the `p3gm-parallel` pool with per-chunk derived seeds; chunk
//!   boundaries depend only on `n`, so the output is bit-identical for
//!   every worker count (though it is a different — equally valid — stream
//!   than the serial path).
//! * [`SynthesisSnapshot::serve`] runs a batch of independent seeded
//!   requests concurrently, each producing exactly what a sequential
//!   [`SynthesisSnapshot::sample`] call with the same seed would.

use crate::pgm::PhasedGenerativeModel;
use crate::synthesis::{synthesize_labelled, LabelledSynthesizer};
use crate::{CoreError, GenerativeModel, Result};
use p3gm_linalg::Matrix;
use p3gm_privacy::rdp::PrivacySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One seedable synthesis request: draw `n` rows from the stream
/// identified by `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRequest {
    /// Seed of the request's sample stream (requests with distinct seeds
    /// produce independent streams; the same seed always reproduces the
    /// same rows).
    pub seed: u64,
    /// Number of rows to synthesize.
    pub n: usize,
}

/// A loaded model snapshot serving concurrent, seedable synthesis
/// requests.
#[derive(Debug, Clone)]
pub struct SynthesisSnapshot {
    model: PhasedGenerativeModel,
    synthesizer: Option<LabelledSynthesizer>,
    stamp: Option<PrivacySpec>,
}

impl SynthesisSnapshot {
    /// Captures a trained model into a snapshot, stamping it with the
    /// (ε, δ)-DP guarantee of its training run (absent for the non-private
    /// PGM).
    pub fn capture(model: PhasedGenerativeModel) -> Self {
        let stamp = model.training_privacy_spec();
        SynthesisSnapshot {
            model,
            synthesizer: None,
            stamp,
        }
    }

    /// Attaches the labelled-synthesis transform so the snapshot can serve
    /// original-unit `(features, labels)` rows, not just model-space rows.
    pub fn with_synthesizer(mut self, synthesizer: LabelledSynthesizer) -> Self {
        self.synthesizer = Some(synthesizer);
        self
    }

    /// The wrapped model.
    pub fn model(&self) -> &PhasedGenerativeModel {
        &self.model
    }

    /// The attached labelled-synthesis transform, if any.
    pub fn synthesizer(&self) -> Option<&LabelledSynthesizer> {
        self.synthesizer.as_ref()
    }

    /// The (ε, δ)-DP guarantee stamped at capture time, if the model was
    /// trained privately.
    pub fn privacy_stamp(&self) -> Option<&PrivacySpec> {
        self.stamp.as_ref()
    }

    /// Serializes the snapshot (model, optional synthesizer, optional
    /// privacy stamp) into one framed `p3gm-store` buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::SYNTHESIS_SNAPSHOT);
        enc.nested(&self.model.to_bytes());
        match &self.synthesizer {
            Some(s) => enc.bool(true).nested(&s.to_bytes()),
            None => enc.bool(false),
        };
        match &self.stamp {
            Some(spec) => enc.bool(true).nested(&spec.to_bytes()),
            None => enc.bool(false),
        };
        enc.finish()
    }

    /// Deserializes a snapshot from a buffer produced by
    /// [`SynthesisSnapshot::to_bytes`]. Malformed buffers (truncated,
    /// bit-flipped, wrong version, inconsistent geometry) return a typed
    /// [`p3gm_store::StoreError`]; this never panics.
    ///
    /// The privacy stamp is the user-facing DP certificate, so the stored
    /// section is not trusted: the guarantee is fully derivable from the
    /// persisted configuration and training-set size, and the loaded
    /// snapshot's [`SynthesisSnapshot::privacy_stamp`] is always the value
    /// **recomputed by this library's accountant**, superseding whatever
    /// the stamp section contains. Editing the stamp bytes therefore
    /// cannot misreport the guarantee, and snapshots written before an
    /// accountant soundness fix (such as this release's floor→ceil moment
    /// rounding) keep loading — with the corrected, current value.
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Self> {
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::SYNTHESIS_SNAPSHOT)?;
        let model = PhasedGenerativeModel::from_bytes(dec.nested()?)?;
        let synthesizer = if dec.bool()? {
            Some(LabelledSynthesizer::from_bytes(dec.nested()?)?)
        } else {
            None
        };
        // The stamp section is decoded (and so frame-validated) for format
        // stability, but its value is superseded below.
        let stored_stamp = if dec.bool()? {
            Some(PrivacySpec::from_bytes(dec.nested()?)?)
        } else {
            None
        };
        dec.finish()?;
        if let Some(s) = &synthesizer {
            if s.prepared_width() != model.data_dim() {
                return Err(p3gm_store::StoreError::Invalid {
                    msg: format!(
                        "synthesizer prepares {}-wide rows, model generates {}",
                        s.prepared_width(),
                        model.data_dim()
                    ),
                });
            }
        }
        let _ = stored_stamp;
        let stamp = model.training_privacy_spec();
        Ok(SynthesisSnapshot {
            model,
            synthesizer,
            stamp,
        })
    }

    /// Draws `n` model-space rows from the stream identified by `seed`.
    ///
    /// This is exactly [`GenerativeModel::sample`] with a
    /// `StdRng::seed_from_u64(seed)` generator, so the output is
    /// bit-identical to sampling the in-memory model the snapshot was
    /// captured from with the same seed — the round-trip guarantee the
    /// persistence layer is tested against.
    pub fn sample(&self, seed: u64, n: usize) -> Matrix {
        // n = 0 is a well-formed request for zero rows: return an empty
        // matrix that still carries the model's output geometry.
        if n == 0 {
            return Matrix::zeros(0, self.model.data_dim());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        self.model.sample(&mut rng, n)
    }

    /// Draws `n` model-space rows with the generation fanned out over the
    /// `p3gm-parallel` pool.
    ///
    /// Rows are split into chunks whose boundaries depend only on `n`;
    /// chunk `c` samples from a `StdRng` seeded with a SplitMix64-style
    /// derivation of `(seed, c)`. The result is therefore bit-identical
    /// for every worker count (and reproducible from `seed` alone), but is
    /// a *different* stream than the serial [`SynthesisSnapshot::sample`]
    /// path with the same seed.
    pub fn sample_parallel(&self, seed: u64, n: usize) -> Matrix {
        let d = self.model.data_dim();
        if n == 0 {
            return Matrix::zeros(0, d);
        }
        let mut out = Matrix::zeros(n, d);
        let rows_per_chunk = p3gm_parallel::default_chunk_len(n);
        p3gm_parallel::par_chunks_mut(
            out.as_mut_slice(),
            rows_per_chunk * d.max(1),
            |chunk_index, out_chunk| {
                let mut rng = StdRng::seed_from_u64(derive_seed(seed, chunk_index as u64));
                for out_row in out_chunk.chunks_mut(d.max(1)) {
                    let z = self.model.prior().sample(&mut rng);
                    out_row.copy_from_slice(&self.model.decode(&z));
                }
            },
        );
        out
    }

    /// Serves a batch of independent seeded requests concurrently on the
    /// `p3gm-parallel` pool, returning the responses in request order.
    ///
    /// Each response is exactly what a sequential
    /// [`SynthesisSnapshot::sample`] call with the request's seed would
    /// produce, regardless of how many requests run at once or how many
    /// worker threads the pool has.
    pub fn serve(&self, requests: &[SampleRequest]) -> Vec<Matrix> {
        // An empty batch (or any n = 0 request inside one) is served as
        // well-formed empty output, not an edge case for the pool.
        if requests.is_empty() {
            return Vec::new();
        }
        p3gm_parallel::par_map_chunks(requests.len(), |i| {
            self.sample(requests[i].seed, requests[i].n)
        })
    }

    /// Serves one labelled-synthesis request: `target_counts[c]` rows of
    /// every class `c`, in original feature units, drawn from the stream
    /// identified by `seed`.
    ///
    /// Requires a synthesizer (attach one with
    /// [`SynthesisSnapshot::with_synthesizer`]).
    pub fn synthesize_labelled(
        &self,
        seed: u64,
        target_counts: &[usize],
    ) -> Result<(Matrix, Vec<usize>)> {
        let synthesizer = self
            .synthesizer
            .as_ref()
            .ok_or_else(|| CoreError::InvalidConfig {
                msg: "snapshot has no labelled synthesizer attached".to_string(),
            })?;
        let mut rng = StdRng::seed_from_u64(seed);
        synthesize_labelled(&self.model, synthesizer, &mut rng, target_counts)
    }
}

/// SplitMix64-style mixing of a base seed and a chunk index into the
/// per-chunk RNG seed of [`SynthesisSnapshot::sample_parallel`].
fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PgmConfig;
    use crate::{DecoderLoss, VarianceMode};
    use p3gm_privacy::sampling;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(202)
    }

    fn toy_labelled(rng: &mut StdRng, n: usize) -> (Matrix, Vec<usize>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..6)
                    .map(|j| {
                        let base = if (j < 3) == hot { 0.85 } else { 0.15 };
                        (base + sampling::normal(rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        let labels = (0..n).map(|i| i % 2).collect();
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn tiny_config(d: usize) -> PgmConfig {
        PgmConfig {
            latent_dim: 3.min(d),
            hidden_dim: 12,
            mog_components: 2,
            epochs: 4,
            batch_size: 16,
            learning_rate: 5e-3,
            clip_norm: 1.0,
            private: true,
            eps_p: 0.5,
            sigma_e: 50.0,
            em_iterations: 3,
            sigma_s: 1.0,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        }
    }

    fn trained_snapshot() -> (SynthesisSnapshot, PhasedGenerativeModel) {
        let mut r = rng();
        let (x, y) = toy_labelled(&mut r, 80);
        let (synth, prepared) = LabelledSynthesizer::prepare(&x, &y, 2).unwrap();
        let (model, _) =
            PhasedGenerativeModel::fit(&mut r, &prepared, tiny_config(prepared.cols())).unwrap();
        let snapshot = SynthesisSnapshot::capture(model.clone()).with_synthesizer(synth);
        (snapshot, model)
    }

    #[test]
    fn save_load_sample_is_bit_identical() {
        let (snapshot, model) = trained_snapshot();
        let bytes = snapshot.to_bytes();
        let loaded = SynthesisSnapshot::from_bytes(&bytes).unwrap();
        // The round-trip guarantee: the reloaded snapshot's seeded sample
        // equals sampling the never-persisted model with the same RNG seed.
        let mut direct_rng = StdRng::seed_from_u64(42);
        let direct = model.sample(&mut direct_rng, 30);
        let served = loaded.sample(42, 30);
        assert_eq!(direct.as_slice(), served.as_slice());
        // The stamp survives and matches the model's own accounting.
        assert_eq!(
            loaded.privacy_stamp().copied(),
            model.training_privacy_spec()
        );
        assert!(loaded.synthesizer().is_some());
    }

    #[test]
    fn serve_matches_sequential_sampling() {
        let (snapshot, _) = trained_snapshot();
        let requests: Vec<SampleRequest> = (0..7)
            .map(|i| SampleRequest {
                seed: 1000 + i,
                n: 5 + i as usize,
            })
            .collect();
        let concurrent = snapshot.serve(&requests);
        assert_eq!(concurrent.len(), requests.len());
        for (req, batch) in requests.iter().zip(concurrent.iter()) {
            let sequential = snapshot.sample(req.seed, req.n);
            assert_eq!(batch.as_slice(), sequential.as_slice(), "seed {}", req.seed);
        }
    }

    #[test]
    fn parallel_sampling_is_thread_count_invariant() {
        let (snapshot, _) = trained_snapshot();
        let reference = p3gm_parallel::with_threads(1, || snapshot.sample_parallel(9, 70));
        for threads in [2, 4] {
            let got = p3gm_parallel::with_threads(threads, || snapshot.sample_parallel(9, 70));
            assert_eq!(got.as_slice(), reference.as_slice(), "{threads} threads");
        }
        assert_eq!(reference.shape(), (70, snapshot.model().data_dim()));
        // Different seeds give different streams.
        let other = snapshot.sample_parallel(10, 70);
        assert_ne!(other.as_slice(), reference.as_slice());
    }

    #[test]
    fn zero_row_requests_yield_empty_matrices_with_model_geometry() {
        let (snapshot, _) = trained_snapshot();
        let d = snapshot.model().data_dim();
        assert!(d > 0);
        // Serial, parallel, and batch paths all return well-formed empty
        // output carrying the model's output geometry.
        assert_eq!(snapshot.sample(5, 0).shape(), (0, d));
        assert_eq!(snapshot.sample_parallel(5, 0).shape(), (0, d));
        assert_eq!(snapshot.serve(&[]), Vec::<Matrix>::new());
        let served = snapshot.serve(&[
            SampleRequest { seed: 1, n: 0 },
            SampleRequest { seed: 2, n: 3 },
            SampleRequest { seed: 3, n: 0 },
        ]);
        assert_eq!(served.len(), 3);
        assert_eq!(served[0].shape(), (0, d));
        assert_eq!(served[1].shape(), (3, d));
        assert_eq!(served[2].shape(), (0, d));
        // A zero-row request does not perturb its neighbors' streams.
        assert_eq!(served[1].as_slice(), snapshot.sample(2, 3).as_slice());
    }

    #[test]
    fn labelled_serving_round_trips_through_the_synthesizer() {
        let (snapshot, _) = trained_snapshot();
        let (features, labels) = snapshot.synthesize_labelled(5, &[6, 4]).unwrap();
        assert_eq!(features.rows(), 10);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 6);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 4);
        // Deterministic per seed.
        let (again, labels_again) = snapshot.synthesize_labelled(5, &[6, 4]).unwrap();
        assert_eq!(features.as_slice(), again.as_slice());
        assert_eq!(labels, labels_again);
        // Without a synthesizer the request is a typed error.
        let bare = SynthesisSnapshot::capture(snapshot.model().clone());
        assert!(bare.synthesize_labelled(5, &[6, 4]).is_err());
    }

    #[test]
    fn loaded_stamp_is_recomputed_superseding_the_stored_section() {
        // The stamp is the user-facing DP certificate and is fully
        // derivable from the persisted configuration, so the loader always
        // recomputes it: a re-framed buffer claiming a smaller ε (or no
        // stamp at all) loads, but reports the honest guarantee.
        let (snapshot, model) = trained_snapshot();
        let honest = model.training_privacy_spec().expect("private model");
        let forged = SynthesisSnapshot {
            model: model.clone(),
            synthesizer: None,
            stamp: Some(p3gm_privacy::rdp::PrivacySpec {
                epsilon: honest.epsilon / 10.0,
                ..honest
            }),
        };
        let loaded = SynthesisSnapshot::from_bytes(&forged.to_bytes()).unwrap();
        assert_eq!(loaded.privacy_stamp(), Some(&honest));
        let stripped = SynthesisSnapshot {
            model,
            synthesizer: None,
            stamp: None,
        };
        let loaded = SynthesisSnapshot::from_bytes(&stripped.to_bytes()).unwrap();
        assert_eq!(loaded.privacy_stamp(), Some(&honest));
        // The honest snapshot round-trips to the same certificate.
        let loaded = SynthesisSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(loaded.privacy_stamp(), Some(&honest));
    }

    #[test]
    fn malformed_snapshot_buffers_are_typed_errors() {
        let (snapshot, _) = trained_snapshot();
        let bytes = snapshot.to_bytes();
        for cut in (0..bytes.len()).step_by(11) {
            assert!(
                SynthesisSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut}"
            );
        }
        let mut corrupted = bytes.clone();
        corrupted[bytes.len() / 3] ^= 0x80;
        assert!(SynthesisSnapshot::from_bytes(&corrupted).is_err());
        // A bare model buffer is not a snapshot buffer.
        assert!(matches!(
            SynthesisSnapshot::from_bytes(&snapshot.model().to_bytes()),
            Err(p3gm_store::StoreError::WrongTag { .. })
        ));
    }
}
