//! Snapshot serving: load a persisted P3GM model once, serve synthesis
//! forever.
//!
//! The paper's deployment story (§IV-E) is that the differentially private
//! training cost is paid **once** and the released model is then sampled
//! from arbitrarily often as post-processing — at zero additional privacy
//! cost. [`SynthesisSnapshot`] is the unit that makes this operational: it
//! bundles the trained [`PhasedGenerativeModel`], the optional
//! [`LabelledSynthesizer`] needed to map generated rows back to
//! original-unit features and labels, and the [`PrivacySpec`] stamp
//! certified at save time, into one versioned byte buffer (see
//! `p3gm-store` for the frame layout). The snapshot file is the unit a
//! serving fleet shards, caches and replicates.
//!
//! Serving is **seedable, deterministic, and streamable**. Every sampling
//! entry point draws from one canonical stream: row `r` of stream `seed`
//! belongs to *seed block* `b = r / `[`SEED_BLOCK_ROWS`], and the rows of
//! block `b` are drawn sequentially from a `StdRng` seeded with a
//! SplitMix64-style derivation of `(seed, b)`. The stream is therefore a
//! pure function of `(seed, row index)` — independent of the request size
//! `n`, of how the rows are chunked for delivery, and of the worker-thread
//! count:
//!
//! * [`SynthesisSnapshot::sample_chunks`] is the chunked iterator API the
//!   other paths consume: it yields the stream as `Matrix` row blocks of a
//!   caller-chosen size, generating each block only when the consumer asks
//!   for it, so peak memory is bounded by the chunk size, not `n`.
//! * [`SynthesisSnapshot::sample`] concatenates the chunks into one
//!   `n`-row matrix; `save → load → sample(seed, n)` is bit-identical to
//!   sampling the in-memory snapshot with the same seed.
//! * [`SynthesisSnapshot::sample_parallel`] fills the same rows with the
//!   seed blocks fanned out over the `p3gm-parallel` pool — bit-identical
//!   to [`SynthesisSnapshot::sample`] for every worker count.
//! * [`SynthesisSnapshot::serve`] runs a batch of independent seeded
//!   requests concurrently, each producing exactly what a sequential
//!   [`SynthesisSnapshot::sample`] call with the same seed would.
//!
//! Because the stream does not depend on `n`, `sample(seed, n1)` is a
//! row-prefix of `sample(seed, n2)` whenever `n1 <= n2` — a paginated
//! client re-requesting a longer prefix sees the rows it already holds.

use crate::config::PgmConfig;
use crate::pgm::PhasedGenerativeModel;
use crate::synthesis::{synthesize_labelled, LabelledSynthesizer};
use crate::{CoreError, Result};
use p3gm_linalg::Matrix;
use p3gm_privacy::rdp::PrivacySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read as _, Seek as _, SeekFrom};
use std::path::Path;

/// Rows per RNG seed block of the canonical sample stream.
///
/// Row `r` is drawn from the block-`r / SEED_BLOCK_ROWS` generator, so any
/// chunking of the stream whose boundaries are multiples of this constant
/// regenerates nothing; other chunk sizes merely re-derive (cheap) prior
/// draws for at most `SEED_BLOCK_ROWS - 1` leading rows per chunk. The
/// value is a constant of the format: changing it changes every stream.
pub const SEED_BLOCK_ROWS: usize = 64;

/// One seedable synthesis request: draw `n` rows from the stream
/// identified by `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRequest {
    /// Seed of the request's sample stream (requests with distinct seeds
    /// produce independent streams; the same seed always reproduces the
    /// same rows).
    pub seed: u64,
    /// Number of rows to synthesize.
    pub n: usize,
}

/// A loaded model snapshot serving concurrent, seedable synthesis
/// requests.
#[derive(Debug, Clone)]
pub struct SynthesisSnapshot {
    model: PhasedGenerativeModel,
    synthesizer: Option<LabelledSynthesizer>,
    stamp: Option<PrivacySpec>,
}

impl SynthesisSnapshot {
    /// Captures a trained model into a snapshot, stamping it with the
    /// (ε, δ)-DP guarantee of its training run (absent for the non-private
    /// PGM).
    pub fn capture(model: PhasedGenerativeModel) -> Self {
        let stamp = model.training_privacy_spec();
        SynthesisSnapshot {
            model,
            synthesizer: None,
            stamp,
        }
    }

    /// Attaches the labelled-synthesis transform so the snapshot can serve
    /// original-unit `(features, labels)` rows, not just model-space rows.
    pub fn with_synthesizer(mut self, synthesizer: LabelledSynthesizer) -> Self {
        self.synthesizer = Some(synthesizer);
        self
    }

    /// The wrapped model.
    pub fn model(&self) -> &PhasedGenerativeModel {
        &self.model
    }

    /// The attached labelled-synthesis transform, if any.
    pub fn synthesizer(&self) -> Option<&LabelledSynthesizer> {
        self.synthesizer.as_ref()
    }

    /// The (ε, δ)-DP guarantee stamped at capture time, if the model was
    /// trained privately.
    pub fn privacy_stamp(&self) -> Option<&PrivacySpec> {
        self.stamp.as_ref()
    }

    /// Serializes the snapshot (model, optional synthesizer, optional
    /// privacy stamp) into one framed `p3gm-store` buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::SYNTHESIS_SNAPSHOT);
        enc.nested(&self.model.to_bytes());
        match &self.synthesizer {
            Some(s) => enc.bool(true).nested(&s.to_bytes()),
            None => enc.bool(false),
        };
        match &self.stamp {
            Some(spec) => enc.bool(true).nested(&spec.to_bytes()),
            None => enc.bool(false),
        };
        enc.finish()
    }

    /// Deserializes a snapshot from a buffer produced by
    /// [`SynthesisSnapshot::to_bytes`]. Malformed buffers (truncated,
    /// bit-flipped, wrong version, inconsistent geometry) return a typed
    /// [`p3gm_store::StoreError`]; this never panics.
    ///
    /// The privacy stamp is the user-facing DP certificate, so the stored
    /// section is not trusted: the guarantee is fully derivable from the
    /// persisted configuration and training-set size, and the loaded
    /// snapshot's [`SynthesisSnapshot::privacy_stamp`] is always the value
    /// **recomputed by this library's accountant**, superseding whatever
    /// the stamp section contains. Editing the stamp bytes therefore
    /// cannot misreport the guarantee, and snapshots written before an
    /// accountant soundness fix (such as this release's floor→ceil moment
    /// rounding) keep loading — with the corrected, current value.
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Self> {
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::SYNTHESIS_SNAPSHOT)?;
        let model = PhasedGenerativeModel::from_bytes(dec.nested()?)?;
        let synthesizer = if dec.bool()? {
            Some(LabelledSynthesizer::from_bytes(dec.nested()?)?)
        } else {
            None
        };
        // The stamp section is decoded (and so frame-validated) for format
        // stability, but its value is superseded below.
        let stored_stamp = if dec.bool()? {
            Some(PrivacySpec::from_bytes(dec.nested()?)?)
        } else {
            None
        };
        dec.finish()?;
        if let Some(s) = &synthesizer {
            if s.prepared_width() != model.data_dim() {
                return Err(p3gm_store::StoreError::Invalid {
                    msg: format!(
                        "synthesizer prepares {}-wide rows, model generates {}",
                        s.prepared_width(),
                        model.data_dim()
                    ),
                });
            }
        }
        let _ = stored_stamp;
        let stamp = model.training_privacy_spec();
        Ok(SynthesisSnapshot {
            model,
            synthesizer,
            stamp,
        })
    }

    /// Draws rows `[start, start + rows)` of the canonical stream
    /// identified by `seed`, without materializing anything before
    /// `start`.
    ///
    /// This is the random-access primitive every sampling path consumes:
    /// the result depends only on `(seed, start, rows)` — requesting the
    /// same row range in any larger or smaller batch yields the same
    /// bytes. A `start` that is not a multiple of [`SEED_BLOCK_ROWS`]
    /// re-derives the prior draws of the partial leading block (decoding —
    /// the expensive step — is never repeated).
    pub fn sample_rows(&self, seed: u64, start: usize, rows: usize) -> Matrix {
        let d = self.model.data_dim();
        let mut out = Matrix::zeros(rows, d);
        self.fill_rows(seed, start, out.as_mut_slice());
        out
    }

    /// Fills `out` (a `rows * data_dim` slice) with stream rows
    /// `[start, start + rows)`.
    fn fill_rows(&self, seed: u64, start: usize, out: &mut [f64]) {
        let d = self.model.data_dim().max(1);
        let rows = out.len() / d;
        let mut row = start;
        let end = start + rows;
        while row < end {
            let block = row / SEED_BLOCK_ROWS;
            let block_start = block * SEED_BLOCK_ROWS;
            let block_end = block_start + SEED_BLOCK_ROWS;
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, block as u64));
            // Burn the prior draws of rows before `row` in this block so
            // an unaligned start continues the exact block stream.
            for _ in block_start..row {
                let _ = self.model.prior().sample(&mut rng);
            }
            for r in row..end.min(block_end) {
                let z = self.model.prior().sample(&mut rng);
                let offset = (r - start) * d;
                out[offset..offset + d].copy_from_slice(&self.model.decode(&z));
            }
            row = block_end;
        }
    }

    /// The chunked iterator over the first `n` rows of stream `seed`:
    /// yields `Matrix` row blocks of `chunk_rows` rows (the last block may
    /// be shorter), generating each block lazily when the consumer asks
    /// for it.
    ///
    /// Concatenating the chunks is bit-identical to
    /// [`SynthesisSnapshot::sample`]`(seed, n)` for **every** chunk size —
    /// the stream is a pure function of the row index, so the chunking is
    /// pure delivery framing. Peak memory is one chunk, not `n` rows,
    /// which is what lets a server stream million-row responses. A
    /// `chunk_rows` of 0 is clamped to 1; multiples of
    /// [`SEED_BLOCK_ROWS`] avoid all re-derivation.
    pub fn sample_chunks(&self, seed: u64, n: usize, chunk_rows: usize) -> SampleChunks<'_> {
        SampleChunks {
            snapshot: self,
            seed,
            n,
            chunk_rows: chunk_rows.max(1),
            next_row: 0,
        }
    }

    /// Draws `n` model-space rows from the stream identified by `seed`.
    ///
    /// Implemented as the one-chunk consumption of
    /// [`SynthesisSnapshot::sample_chunks`], so the output is bit-identical
    /// to any chunked delivery of the same request — and `save → load →
    /// sample(seed, n)` is bit-identical to sampling the in-memory
    /// snapshot with the same seed (the round-trip guarantee the
    /// persistence layer is tested against).
    pub fn sample(&self, seed: u64, n: usize) -> Matrix {
        // n = 0 is a well-formed request for zero rows: return an empty
        // matrix that still carries the model's output geometry.
        match self.sample_chunks(seed, n, n.max(1)).next() {
            Some(rows) => rows,
            None => Matrix::zeros(0, self.model.data_dim()),
        }
    }

    /// Draws `n` model-space rows with the generation fanned out over the
    /// `p3gm-parallel` pool.
    ///
    /// Each parallel task fills exactly one [`SEED_BLOCK_ROWS`]-aligned
    /// block of the canonical stream, so the result is bit-identical to
    /// [`SynthesisSnapshot::sample`]`(seed, n)` for every worker count.
    pub fn sample_parallel(&self, seed: u64, n: usize) -> Matrix {
        let d = self.model.data_dim();
        if n == 0 {
            return Matrix::zeros(0, d);
        }
        let mut out = Matrix::zeros(n, d);
        p3gm_parallel::par_chunks_mut(
            out.as_mut_slice(),
            SEED_BLOCK_ROWS * d.max(1),
            |block, out_chunk| {
                self.fill_rows(seed, block * SEED_BLOCK_ROWS, out_chunk);
            },
        );
        out
    }

    /// Serves a batch of independent seeded requests concurrently on the
    /// `p3gm-parallel` pool, returning the responses in request order.
    ///
    /// Each response is exactly what a sequential
    /// [`SynthesisSnapshot::sample`] call with the request's seed would
    /// produce, regardless of how many requests run at once or how many
    /// worker threads the pool has.
    pub fn serve(&self, requests: &[SampleRequest]) -> Vec<Matrix> {
        // An empty batch (or any n = 0 request inside one) is served as
        // well-formed empty output, not an edge case for the pool.
        if requests.is_empty() {
            return Vec::new();
        }
        p3gm_parallel::par_map_chunks(requests.len(), |i| {
            self.sample(requests[i].seed, requests[i].n)
        })
    }

    /// Serves one labelled-synthesis request: `target_counts[c]` rows of
    /// every class `c`, in original feature units, drawn from the stream
    /// identified by `seed`.
    ///
    /// Requires a synthesizer (attach one with
    /// [`SynthesisSnapshot::with_synthesizer`]).
    pub fn synthesize_labelled(
        &self,
        seed: u64,
        target_counts: &[usize],
    ) -> Result<(Matrix, Vec<usize>)> {
        let synthesizer = self
            .synthesizer
            .as_ref()
            .ok_or_else(|| CoreError::InvalidConfig {
                msg: "snapshot has no labelled synthesizer attached".to_string(),
            })?;
        let mut rng = StdRng::seed_from_u64(seed);
        synthesize_labelled(&self.model, synthesizer, &mut rng, target_counts)
    }
}

/// The metadata of a persisted snapshot, decoded from the **leading
/// frames** of the buffer without touching any weight payload.
///
/// A `SynthesisSnapshot` buffer opens with the model's configuration and
/// dataset geometry (see `PhasedGenerativeModel::to_bytes` — the weight
/// buffers come after), and the (ε, δ) stamp is recomputed from the
/// configuration anyway ([`PgmConfig::privacy_spec`]), so everything a
/// registry listing or a `GET /models` response needs is available from
/// a few hundred leading bytes:
///
/// * [`SnapshotHeader::peek`] reads it from an in-memory buffer (or any
///   prefix long enough to cover the leading frames),
/// * [`SnapshotHeader::peek_file`] reads it from a file with two bounded
///   reads and one seek — O(1) I/O per snapshot regardless of weight
///   size, which is what lets a registry scan thousands of tenant
///   snapshots without decoding a single weight payload.
///
/// The peek path deliberately skips the trailing CRC (reading it would
/// mean reading the whole file): a header can therefore look healthy
/// while the weight payload is corrupt. The full, checksummed
/// [`SynthesisSnapshot::from_bytes`] decode remains the integrity
/// authority and runs on first model use; the peeked fields themselves
/// are semantically validated (config ranges, finite floats, geometry)
/// exactly as the full decode validates them.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotHeader {
    /// The persisted training configuration (hyper-parameters and DP
    /// knobs; the stamp below is recomputed from it).
    pub config: PgmConfig,
    /// Dimensionality of the generated rows.
    pub data_dim: usize,
    /// Decoding-Phase epochs the model had trained when saved.
    pub trained_epochs: usize,
    /// Number of training rows (the accountant's `n`).
    pub n_train: usize,
    /// Number of classes of the attached labelled synthesizer, `None`
    /// when the snapshot has no synthesizer.
    pub n_classes: Option<usize>,
    /// The (ε, δ)-DP stamp **recomputed** from the persisted
    /// configuration — the same accountant run the full decode reports,
    /// never a stored value.
    pub stamp: Option<PrivacySpec>,
    /// Total byte length of the framed snapshot buffer this header was
    /// peeked from (what the outer frame claims; [`Self::peek_file`]
    /// verifies the file length matches it).
    pub framed_len: u64,
}

impl SnapshotHeader {
    /// Decodes the header from a snapshot buffer (or any prefix of one
    /// that covers the leading frames and the synthesizer section).
    /// Never panics on untrusted bytes; every failure is a typed
    /// [`p3gm_store::StoreError`].
    pub fn peek(bytes: &[u8]) -> p3gm_store::Result<SnapshotHeader> {
        let (mut header, synth_off) = Self::peek_leading(bytes)?;
        if bytes.len() < synth_off {
            return Err(p3gm_store::StoreError::Truncated {
                needed: synth_off,
                available: bytes.len(),
            });
        }
        header.n_classes = peek_synth_classes(&bytes[synth_off..])?;
        Ok(header)
    }

    /// Decodes the header from a snapshot file without reading the
    /// weight payload: one bounded read of the file's head (config +
    /// geometry), one seek past the model frame, and one bounded read of
    /// the synthesizer section. Also verifies that the file's byte
    /// length matches what the outer frame claims, so a truncated or
    /// concatenated upload is caught at scan time. I/O failures are
    /// reported as [`p3gm_store::StoreError::Invalid`].
    pub fn peek_file(path: &Path) -> p3gm_store::Result<SnapshotHeader> {
        // Enough for the outer header, the model frame header, the
        // configuration and the geometry fields, with generous slack for
        // format growth; tiny snapshots fit entirely.
        const PREFIX_READ: u64 = 4096;
        // Flag byte + nested length + the one-hot encoder's framed
        // buffer: the synthesizer section's leading fields.
        const TAIL_READ: u64 = 256;
        let io_err = |e: std::io::Error| p3gm_store::StoreError::Invalid {
            msg: format!("read failed: {e}"),
        };
        let mut file = std::fs::File::open(path).map_err(io_err)?;
        let file_len = file.metadata().map_err(io_err)?.len();
        let mut prefix = Vec::with_capacity(PREFIX_READ.min(file_len) as usize);
        std::io::Read::take(&mut file, PREFIX_READ)
            .read_to_end(&mut prefix)
            .map_err(io_err)?;
        let (mut header, synth_off) = Self::peek_leading(&prefix)?;
        if file_len < header.framed_len {
            return Err(p3gm_store::StoreError::Truncated {
                needed: header.framed_len as usize,
                available: file_len as usize,
            });
        }
        if file_len > header.framed_len {
            return Err(p3gm_store::StoreError::TrailingBytes {
                count: (file_len - header.framed_len) as usize,
            });
        }
        header.n_classes = if (prefix.len() as u64) == file_len {
            // The whole file fit in the head read: parse in place.
            if prefix.len() < synth_off {
                return Err(p3gm_store::StoreError::Truncated {
                    needed: synth_off,
                    available: prefix.len(),
                });
            }
            peek_synth_classes(&prefix[synth_off..])?
        } else {
            file.seek(SeekFrom::Start(synth_off as u64))
                .map_err(io_err)?;
            let mut tail = Vec::with_capacity(TAIL_READ as usize);
            std::io::Read::take(&mut file, TAIL_READ)
                .read_to_end(&mut tail)
                .map_err(io_err)?;
            peek_synth_classes(&tail)?
        };
        Ok(header)
    }

    /// Approximate resident (decoded, in-RAM) footprint of this model in
    /// bytes, estimated from the header geometry alone: the projection
    /// matrix, the `k`-component mixture prior (means, covariances and
    /// cached factorizations), and the two `data → hidden → latent` /
    /// `latent → hidden → data` MLPs, all as `f64`s, plus allocator
    /// slack. A deliberate *estimate* — the registry uses it to meter an
    /// LRU budget, where being within a small constant factor is enough.
    pub fn approx_resident_bytes(&self) -> u64 {
        let d = self.data_dim as u64;
        let l = self.config.latent_dim as u64;
        let h = self.config.hidden_dim as u64;
        let k = self.config.mog_components as u64;
        let projection = d.saturating_mul(l).saturating_add(d).saturating_add(l);
        let prior = k.saturating_mul(
            l.saturating_mul(l)
                .saturating_mul(2)
                .saturating_add(l)
                .saturating_add(4),
        );
        let mlp_in = d
            .saturating_mul(h)
            .saturating_add(h.saturating_mul(l))
            .saturating_add(h)
            .saturating_add(l);
        let mlp_out = l
            .saturating_mul(h)
            .saturating_add(h.saturating_mul(d))
            .saturating_add(h)
            .saturating_add(d);
        let params = projection
            .saturating_add(prior)
            .saturating_add(mlp_in)
            .saturating_add(mlp_out);
        // 8 bytes per f64, ×1.25 for Vec/cache overhead, + a fixed floor.
        params.saturating_mul(10).saturating_add(4096)
    }

    /// Parses the outer frame and the model's leading payload fields
    /// (config + geometry), returning the partially-filled header (no
    /// `n_classes` yet) and the byte offset of the synthesizer flag.
    fn peek_leading(bytes: &[u8]) -> p3gm_store::Result<(SnapshotHeader, usize)> {
        use p3gm_store::StoreError;
        let outer = p3gm_store::peek_frame(bytes)?;
        if outer.tag != p3gm_store::tags::SYNTHESIS_SNAPSHOT {
            return Err(StoreError::WrongTag {
                expected: p3gm_store::tags::SYNTHESIS_SNAPSHOT,
                found: outer.tag,
            });
        }
        let framed_len = outer.framed_len().ok_or_else(|| StoreError::Invalid {
            msg: "claimed payload length overflows".to_string(),
        })? as u64;
        let model_off = p3gm_store::HEADER_LEN + 8;
        let model_len: usize = read_u64_at(bytes, p3gm_store::HEADER_LEN)?
            .try_into()
            .map_err(|_| StoreError::Invalid {
                msg: "nested model length does not fit in usize".to_string(),
            })?;
        if bytes.len() < model_off {
            return Err(StoreError::Truncated {
                needed: model_off,
                available: bytes.len(),
            });
        }
        let mut dec =
            p3gm_store::Decoder::over_prefix(&bytes[model_off..], p3gm_store::tags::PGM_MODEL)?;
        let config = PgmConfig::decode_from(&mut dec)?;
        let data_dim = dec.usize()?;
        let input_scale = dec.f64()?;
        let trained_epochs = dec.usize()?;
        let n_train = dec.usize()?;
        // The same semantic gates the full decode applies to these
        // fields, so header-vs-full-decode verdicts agree on them.
        config
            .validate(n_train, data_dim)
            .map_err(|e| StoreError::Invalid { msg: e.to_string() })?;
        if !(input_scale.is_finite() && input_scale > 0.0) {
            return Err(StoreError::Invalid {
                msg: format!("input scale must be positive and finite, got {input_scale}"),
            });
        }
        let stamp = config.privacy_spec(n_train);
        let synth_off = model_off
            .checked_add(model_len)
            .ok_or_else(|| StoreError::Invalid {
                msg: "nested model length overflows".to_string(),
            })?;
        Ok((
            SnapshotHeader {
                config,
                data_dim,
                trained_epochs,
                n_train,
                n_classes: None,
                stamp,
                framed_len,
            },
            synth_off,
        ))
    }
}

/// Reads a little-endian `u64` at `off`, typed-erroring on a short
/// buffer.
fn read_u64_at(bytes: &[u8], off: usize) -> p3gm_store::Result<u64> {
    let end = off
        .checked_add(8)
        .ok_or_else(|| p3gm_store::StoreError::Invalid {
            msg: "offset overflows".to_string(),
        })?;
    if bytes.len() < end {
        return Err(p3gm_store::StoreError::Truncated {
            needed: end,
            available: bytes.len(),
        });
    }
    Ok(u64::from_le_bytes(
        bytes[off..end].try_into().expect("8 bytes"),
    ))
}

/// Parses the synthesizer section (starting at its presence flag):
/// `None` for a bare snapshot, otherwise the class count read from the
/// synthesizer's leading one-hot-encoder frame (a tiny, fully
/// CRC-checked decode).
fn peek_synth_classes(bytes: &[u8]) -> p3gm_store::Result<Option<usize>> {
    use p3gm_store::StoreError;
    let flag = *bytes.first().ok_or(StoreError::Truncated {
        needed: 1,
        available: 0,
    })?;
    match flag {
        0 => Ok(None),
        1 => {
            let synth_off = 1 + 8;
            let _synth_len = read_u64_at(bytes, 1)?;
            if bytes.len() < synth_off {
                return Err(StoreError::Truncated {
                    needed: synth_off,
                    available: bytes.len(),
                });
            }
            let mut dec = p3gm_store::Decoder::over_prefix(
                &bytes[synth_off..],
                p3gm_store::tags::LABELLED_SYNTHESIZER,
            )?;
            let encoder = p3gm_preprocess::encoding::OneHotEncoder::from_bytes(dec.nested()?)?;
            Ok(Some(encoder.n_classes()))
        }
        other => Err(StoreError::Invalid {
            msg: format!("invalid synthesizer flag byte {other}"),
        }),
    }
}

/// The lazy chunk iterator returned by
/// [`SynthesisSnapshot::sample_chunks`]: each `next()` materializes the
/// next `chunk_rows`-row block of the canonical stream.
#[derive(Debug)]
pub struct SampleChunks<'a> {
    snapshot: &'a SynthesisSnapshot,
    seed: u64,
    n: usize,
    chunk_rows: usize,
    next_row: usize,
}

impl SampleChunks<'_> {
    /// The stream row index the next yielded chunk starts at.
    pub fn next_row(&self) -> usize {
        self.next_row
    }
}

impl Iterator for SampleChunks<'_> {
    type Item = Matrix;

    fn next(&mut self) -> Option<Matrix> {
        if self.next_row >= self.n {
            return None;
        }
        let rows = self.chunk_rows.min(self.n - self.next_row);
        let chunk = self.snapshot.sample_rows(self.seed, self.next_row, rows);
        self.next_row += rows;
        Some(chunk)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.n - self.next_row).div_ceil(self.chunk_rows);
        (left, Some(left))
    }
}

impl ExactSizeIterator for SampleChunks<'_> {}

/// SplitMix64-style mixing of a base seed and a seed-block index into the
/// per-block RNG seed of the canonical sample stream.
fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PgmConfig;
    use crate::{DecoderLoss, VarianceMode};
    use p3gm_privacy::sampling;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(202)
    }

    fn toy_labelled(rng: &mut StdRng, n: usize) -> (Matrix, Vec<usize>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..6)
                    .map(|j| {
                        let base = if (j < 3) == hot { 0.85 } else { 0.15 };
                        (base + sampling::normal(rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        let labels = (0..n).map(|i| i % 2).collect();
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn tiny_config(d: usize) -> PgmConfig {
        PgmConfig {
            latent_dim: 3.min(d),
            hidden_dim: 12,
            mog_components: 2,
            epochs: 4,
            batch_size: 16,
            learning_rate: 5e-3,
            clip_norm: 1.0,
            private: true,
            eps_p: 0.5,
            sigma_e: 50.0,
            em_iterations: 3,
            sigma_s: 1.0,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        }
    }

    fn trained_snapshot() -> (SynthesisSnapshot, PhasedGenerativeModel) {
        let mut r = rng();
        let (x, y) = toy_labelled(&mut r, 80);
        let (synth, prepared) = LabelledSynthesizer::prepare(&x, &y, 2).unwrap();
        let (model, _) =
            PhasedGenerativeModel::fit(&mut r, &prepared, tiny_config(prepared.cols())).unwrap();
        let snapshot = SynthesisSnapshot::capture(model.clone()).with_synthesizer(synth);
        (snapshot, model)
    }

    #[test]
    fn save_load_sample_is_bit_identical() {
        let (snapshot, model) = trained_snapshot();
        let bytes = snapshot.to_bytes();
        let loaded = SynthesisSnapshot::from_bytes(&bytes).unwrap();
        // The round-trip guarantee: the reloaded snapshot's seeded sample
        // equals the never-persisted snapshot's stream with the same seed.
        let direct = snapshot.sample(42, 30);
        let served = loaded.sample(42, 30);
        assert_eq!(direct.as_slice(), served.as_slice());
        // The stamp survives and matches the model's own accounting.
        assert_eq!(
            loaded.privacy_stamp().copied(),
            model.training_privacy_spec()
        );
        assert!(loaded.synthesizer().is_some());
    }

    #[test]
    fn chunked_sampling_is_invariant_to_chunk_size() {
        let (snapshot, _) = trained_snapshot();
        let d = snapshot.model().data_dim();
        let n = 150; // spans multiple seed blocks with a partial tail
        let reference = snapshot.sample(33, n);
        assert_eq!(reference.shape(), (n, d));
        for chunk_rows in [1, 3, 17, SEED_BLOCK_ROWS, 100, n, n + 50] {
            let mut rebuilt: Vec<f64> = Vec::with_capacity(n * d);
            let mut chunks = 0;
            for chunk in snapshot.sample_chunks(33, n, chunk_rows) {
                assert!(chunk.rows() <= chunk_rows.max(1));
                assert_eq!(chunk.cols(), d);
                rebuilt.extend_from_slice(chunk.as_slice());
                chunks += 1;
            }
            assert_eq!(chunks, n.div_ceil(chunk_rows.max(1)));
            assert_eq!(
                rebuilt.as_slice(),
                reference.as_slice(),
                "chunk_rows {chunk_rows}"
            );
        }
        // chunk_rows = 0 is clamped, not a panic or an empty stream.
        let clamped: usize = snapshot.sample_chunks(33, 5, 0).map(|c| c.rows()).sum();
        assert_eq!(clamped, 5);
        // Random access matches the stream at unaligned offsets too.
        let mid = snapshot.sample_rows(33, 70, 25);
        assert_eq!(
            mid.as_slice(),
            &reference.as_slice()[70 * d..95 * d],
            "sample_rows must agree with the stream at unaligned starts"
        );
    }

    #[test]
    fn sampling_is_prefix_stable_in_n() {
        // The stream does not depend on the request size: a shorter
        // request is a row-prefix of a longer one.
        let (snapshot, _) = trained_snapshot();
        let d = snapshot.model().data_dim();
        let long = snapshot.sample(7, 200);
        for n in [1, 63, 64, 65, 130] {
            let short = snapshot.sample(7, n);
            assert_eq!(short.as_slice(), &long.as_slice()[..n * d], "n {n}");
        }
    }

    #[test]
    fn serial_and_parallel_sampling_are_bit_identical() {
        let (snapshot, _) = trained_snapshot();
        for n in [1, 64, 150] {
            let serial = snapshot.sample(11, n);
            let parallel = snapshot.sample_parallel(11, n);
            assert_eq!(serial.as_slice(), parallel.as_slice(), "n {n}");
        }
    }

    #[test]
    fn serve_matches_sequential_sampling() {
        let (snapshot, _) = trained_snapshot();
        let requests: Vec<SampleRequest> = (0..7)
            .map(|i| SampleRequest {
                seed: 1000 + i,
                n: 5 + i as usize,
            })
            .collect();
        let concurrent = snapshot.serve(&requests);
        assert_eq!(concurrent.len(), requests.len());
        for (req, batch) in requests.iter().zip(concurrent.iter()) {
            let sequential = snapshot.sample(req.seed, req.n);
            assert_eq!(batch.as_slice(), sequential.as_slice(), "seed {}", req.seed);
        }
    }

    #[test]
    fn parallel_sampling_is_thread_count_invariant() {
        let (snapshot, _) = trained_snapshot();
        let reference = p3gm_parallel::with_threads(1, || snapshot.sample_parallel(9, 70));
        for threads in [2, 4] {
            let got = p3gm_parallel::with_threads(threads, || snapshot.sample_parallel(9, 70));
            assert_eq!(got.as_slice(), reference.as_slice(), "{threads} threads");
        }
        assert_eq!(reference.shape(), (70, snapshot.model().data_dim()));
        // Different seeds give different streams.
        let other = snapshot.sample_parallel(10, 70);
        assert_ne!(other.as_slice(), reference.as_slice());
    }

    #[test]
    fn zero_row_requests_yield_empty_matrices_with_model_geometry() {
        let (snapshot, _) = trained_snapshot();
        let d = snapshot.model().data_dim();
        assert!(d > 0);
        // Serial, parallel, and batch paths all return well-formed empty
        // output carrying the model's output geometry.
        assert_eq!(snapshot.sample(5, 0).shape(), (0, d));
        assert_eq!(snapshot.sample_parallel(5, 0).shape(), (0, d));
        assert_eq!(snapshot.serve(&[]), Vec::<Matrix>::new());
        let served = snapshot.serve(&[
            SampleRequest { seed: 1, n: 0 },
            SampleRequest { seed: 2, n: 3 },
            SampleRequest { seed: 3, n: 0 },
        ]);
        assert_eq!(served.len(), 3);
        assert_eq!(served[0].shape(), (0, d));
        assert_eq!(served[1].shape(), (3, d));
        assert_eq!(served[2].shape(), (0, d));
        // A zero-row request does not perturb its neighbors' streams.
        assert_eq!(served[1].as_slice(), snapshot.sample(2, 3).as_slice());
    }

    #[test]
    fn labelled_serving_round_trips_through_the_synthesizer() {
        let (snapshot, _) = trained_snapshot();
        let (features, labels) = snapshot.synthesize_labelled(5, &[6, 4]).unwrap();
        assert_eq!(features.rows(), 10);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 6);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 4);
        // Deterministic per seed.
        let (again, labels_again) = snapshot.synthesize_labelled(5, &[6, 4]).unwrap();
        assert_eq!(features.as_slice(), again.as_slice());
        assert_eq!(labels, labels_again);
        // Without a synthesizer the request is a typed error.
        let bare = SynthesisSnapshot::capture(snapshot.model().clone());
        assert!(bare.synthesize_labelled(5, &[6, 4]).is_err());
    }

    #[test]
    fn loaded_stamp_is_recomputed_superseding_the_stored_section() {
        // The stamp is the user-facing DP certificate and is fully
        // derivable from the persisted configuration, so the loader always
        // recomputes it: a re-framed buffer claiming a smaller ε (or no
        // stamp at all) loads, but reports the honest guarantee.
        let (snapshot, model) = trained_snapshot();
        let honest = model.training_privacy_spec().expect("private model");
        let forged = SynthesisSnapshot {
            model: model.clone(),
            synthesizer: None,
            stamp: Some(p3gm_privacy::rdp::PrivacySpec {
                epsilon: honest.epsilon / 10.0,
                ..honest
            }),
        };
        let loaded = SynthesisSnapshot::from_bytes(&forged.to_bytes()).unwrap();
        assert_eq!(loaded.privacy_stamp(), Some(&honest));
        let stripped = SynthesisSnapshot {
            model,
            synthesizer: None,
            stamp: None,
        };
        let loaded = SynthesisSnapshot::from_bytes(&stripped.to_bytes()).unwrap();
        assert_eq!(loaded.privacy_stamp(), Some(&honest));
        // The honest snapshot round-trips to the same certificate.
        let loaded = SynthesisSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(loaded.privacy_stamp(), Some(&honest));
    }

    #[test]
    fn header_peek_agrees_with_full_decode() {
        let (snapshot, model) = trained_snapshot();
        let bytes = snapshot.to_bytes();
        let header = SnapshotHeader::peek(&bytes).unwrap();
        let full = SynthesisSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(header.config, *full.model().config());
        assert_eq!(header.data_dim, full.model().data_dim());
        assert_eq!(header.trained_epochs, full.model().trained_epochs());
        assert_eq!(header.n_classes, full.synthesizer().map(|s| s.n_classes()));
        assert_eq!(header.stamp.as_ref(), full.privacy_stamp());
        assert_eq!(header.framed_len, bytes.len() as u64);
        assert!(header.approx_resident_bytes() > 4096);

        // A bare snapshot (no synthesizer) peeks n_classes = None.
        let bare = SynthesisSnapshot::capture(model);
        let bare_header = SnapshotHeader::peek(&bare.to_bytes()).unwrap();
        assert_eq!(bare_header.n_classes, None);
        assert_eq!(bare_header.config, header.config);

        // Every prefix either peeks identically or fails typed — never
        // a panic, never a divergent value.
        for cut in (0..bytes.len()).step_by(13) {
            if let Ok(peeked) = SnapshotHeader::peek(&bytes[..cut]) {
                assert_eq!(peeked, header, "prefix {cut}");
            }
        }
    }

    #[test]
    fn header_peek_file_matches_in_memory_peek_and_checks_length() {
        let (snapshot, _) = trained_snapshot();
        let bytes = snapshot.to_bytes();
        let dir = std::env::temp_dir().join(format!("p3gm_peek_file_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("m.snapshot");
        std::fs::write(&path, &bytes).unwrap();
        let from_file = SnapshotHeader::peek_file(&path).unwrap();
        assert_eq!(from_file, SnapshotHeader::peek(&bytes).unwrap());

        // A truncated file is caught by the length check alone.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            SnapshotHeader::peek_file(&path),
            Err(p3gm_store::StoreError::Truncated { .. })
        ));
        // Appended junk likewise.
        let mut padded = bytes.clone();
        padded.extend_from_slice(b"xx");
        std::fs::write(&path, &padded).unwrap();
        assert!(matches!(
            SnapshotHeader::peek_file(&path),
            Err(p3gm_store::StoreError::TrailingBytes { count: 2 })
        ));
        // A missing file is a typed error, not a panic.
        assert!(SnapshotHeader::peek_file(&dir.join("absent.snapshot")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_peek_skips_weight_corruption_but_full_decode_catches_it() {
        // The design trade-off, stated as a test: a bit flip in the
        // weight payload leaves the header peek untouched (it never
        // reads those bytes) while the checksummed full decode rejects
        // the buffer. The registry relies on exactly this split — cheap
        // listing off headers, integrity enforced at first load.
        let (snapshot, _) = trained_snapshot();
        let bytes = snapshot.to_bytes();
        let header = SnapshotHeader::peek(&bytes).unwrap();
        let mut corrupt = bytes.clone();
        let mid = bytes.len() / 2; // deep inside the weight payload
        corrupt[mid] ^= 0x01;
        assert_eq!(SnapshotHeader::peek(&corrupt).unwrap(), header);
        assert!(SynthesisSnapshot::from_bytes(&corrupt).is_err());
    }

    #[test]
    fn malformed_snapshot_buffers_are_typed_errors() {
        let (snapshot, _) = trained_snapshot();
        let bytes = snapshot.to_bytes();
        for cut in (0..bytes.len()).step_by(11) {
            assert!(
                SynthesisSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut}"
            );
        }
        let mut corrupted = bytes.clone();
        corrupted[bytes.len() / 3] ^= 0x80;
        assert!(SynthesisSnapshot::from_bytes(&corrupted).is_err());
        // A bare model buffer is not a snapshot buffer.
        assert!(matches!(
            SynthesisSnapshot::from_bytes(&snapshot.model().to_bytes()),
            Err(p3gm_store::StoreError::WrongTag { .. })
        ));
    }
}
