//! Hyper-parameter configuration for the generative models.

use crate::{CoreError, Result};

/// How the decoder scores reconstructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderLoss {
    /// Bernoulli likelihood with logits — appropriate for data normalized to
    /// `[0, 1]` (images, min-max-scaled tabular data). This is what the
    /// reference implementation uses.
    Bernoulli,
    /// Gaussian likelihood with fixed unit variance (sum-of-squares
    /// reconstruction error) — appropriate for standardized continuous data.
    Gaussian,
}

/// How the encoder variance is handled in the Decoding Phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarianceMode {
    /// Train σ_φ(x) with the decoder (the full P3GM of paper Eq. (10)).
    Learned,
    /// Freeze log σ²_φ(x) at the given constant (paper Eq. (11)); with a very
    /// negative value this is the autoencoder-like P3GM(AE) of Figure 7.
    Fixed(f64),
}

/// Configuration of the phased generative model (PGM / P3GM / P3GM(AE)).
#[derive(Debug, Clone, PartialEq)]
pub struct PgmConfig {
    /// Latent dimensionality `d'` (the PCA output dimension).
    pub latent_dim: usize,
    /// Hidden width of the encoder/decoder MLPs (the paper uses 1000; the
    /// evaluation harness scales this down).
    pub hidden_dim: usize,
    /// Number of mixture components `d_m` of the MoG prior.
    pub mog_components: usize,
    /// Training epochs of the Decoding Phase.
    pub epochs: usize,
    /// Mini-batch (lot) size `B`.
    pub batch_size: usize,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f64,
    /// Per-example gradient clipping norm `C`.
    pub clip_norm: f64,
    /// Whether the model is trained under differential privacy (P3GM) or not
    /// (PGM). When `false`, `eps_p`, `sigma_e` and `sigma_s` are ignored.
    pub private: bool,
    /// DP-PCA budget ε_p (paper default 0.1).
    pub eps_p: f64,
    /// DP-EM noise multiplier σ_e.
    pub sigma_e: f64,
    /// DP-EM iterations T_e (paper default 20).
    pub em_iterations: usize,
    /// DP-SGD noise multiplier σ_s.
    pub sigma_s: f64,
    /// Target δ of the overall (ε, δ)-DP guarantee.
    pub delta: f64,
    /// How the encoder variance is treated.
    pub variance_mode: VarianceMode,
    /// Reconstruction likelihood.
    pub decoder_loss: DecoderLoss,
}

impl Default for PgmConfig {
    fn default() -> Self {
        PgmConfig {
            latent_dim: 10,
            hidden_dim: 100,
            mog_components: 3,
            epochs: 10,
            batch_size: 64,
            learning_rate: 1e-3,
            clip_norm: 1.0,
            private: true,
            eps_p: 0.1,
            sigma_e: 100.0,
            em_iterations: 20,
            sigma_s: 1.42,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        }
    }
}

impl PgmConfig {
    /// A non-private PGM configuration with the same architecture.
    pub fn non_private(mut self) -> Self {
        self.private = false;
        self
    }

    /// The P3GM(AE) variant: encoder variance frozen (σ ≈ 0).
    pub fn autoencoder_variant(mut self) -> Self {
        self.variance_mode = VarianceMode::Fixed(-20.0);
        self
    }

    /// Validates the configuration against a dataset of `n` rows and `d`
    /// features.
    pub fn validate(&self, n: usize, d: usize) -> Result<()> {
        if self.latent_dim == 0 || self.latent_dim > d {
            return Err(CoreError::InvalidConfig {
                msg: format!("latent_dim must be in 1..={d}, got {}", self.latent_dim),
            });
        }
        if self.hidden_dim == 0 {
            return Err(CoreError::InvalidConfig {
                msg: "hidden_dim must be positive".to_string(),
            });
        }
        if self.mog_components == 0 || self.mog_components > n {
            return Err(CoreError::InvalidConfig {
                msg: format!(
                    "mog_components must be in 1..={n}, got {}",
                    self.mog_components
                ),
            });
        }
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(CoreError::InvalidConfig {
                msg: "epochs and batch_size must be positive".to_string(),
            });
        }
        if self.learning_rate <= 0.0 || self.clip_norm <= 0.0 {
            return Err(CoreError::InvalidConfig {
                msg: "learning_rate and clip_norm must be positive".to_string(),
            });
        }
        if self.private {
            if self.eps_p <= 0.0 || self.sigma_e <= 0.0 || self.sigma_s <= 0.0 {
                return Err(CoreError::InvalidConfig {
                    msg: "private training requires positive eps_p, sigma_e and sigma_s"
                        .to_string(),
                });
            }
            if !(0.0..1.0).contains(&self.delta) || self.delta == 0.0 {
                return Err(CoreError::InvalidConfig {
                    msg: format!("delta must be in (0,1), got {}", self.delta),
                });
            }
            if self.em_iterations == 0 {
                return Err(CoreError::InvalidConfig {
                    msg: "private training requires at least one DP-EM iteration".to_string(),
                });
            }
        }
        if n < 2 * self.batch_size.min(n).max(1) && n < 8 {
            return Err(CoreError::InvalidData {
                msg: format!("{n} rows are not enough to train"),
            });
        }
        Ok(())
    }

    /// Number of DP-SGD steps `T_s` the Decoding Phase will take on a
    /// dataset of `n` rows.
    pub fn sgd_steps(&self, n: usize) -> usize {
        let steps_per_epoch = n.div_ceil(self.batch_size.max(1)).max(1);
        steps_per_epoch * self.epochs
    }

    /// Sampling probability `q = B/N` used by the privacy accountant.
    pub fn sampling_probability(&self, n: usize) -> f64 {
        (self.batch_size as f64 / n.max(1) as f64).min(1.0)
    }
}

/// Configuration of the (DP-)VAE baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct VaeConfig {
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Hidden width of the encoder/decoder MLPs.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Per-example clipping norm (only used when `sigma_s > 0`).
    pub clip_norm: f64,
    /// DP-SGD noise multiplier; `0.0` means non-private end-to-end training
    /// (plain VAE), positive values give DP-VAE.
    pub sigma_s: f64,
    /// Target δ for the DP guarantee of DP-VAE.
    pub delta: f64,
    /// Reconstruction likelihood.
    pub decoder_loss: DecoderLoss,
}

impl Default for VaeConfig {
    fn default() -> Self {
        VaeConfig {
            latent_dim: 10,
            hidden_dim: 100,
            epochs: 10,
            batch_size: 64,
            learning_rate: 1e-2,
            clip_norm: 1.0,
            sigma_s: 0.0,
            delta: 1e-5,
            decoder_loss: DecoderLoss::Bernoulli,
        }
    }
}

impl VaeConfig {
    /// Returns `true` when the configuration trains with DP-SGD.
    pub fn is_private(&self) -> bool {
        self.sigma_s > 0.0
    }

    /// Validates the configuration against a dataset of `n` rows and `d`
    /// features.
    pub fn validate(&self, n: usize, d: usize) -> Result<()> {
        if self.latent_dim == 0 || self.latent_dim > d {
            return Err(CoreError::InvalidConfig {
                msg: format!("latent_dim must be in 1..={d}, got {}", self.latent_dim),
            });
        }
        if self.hidden_dim == 0 || self.epochs == 0 || self.batch_size == 0 {
            return Err(CoreError::InvalidConfig {
                msg: "hidden_dim, epochs and batch_size must be positive".to_string(),
            });
        }
        if self.learning_rate <= 0.0 || self.clip_norm <= 0.0 || self.sigma_s < 0.0 {
            return Err(CoreError::InvalidConfig {
                msg: "learning_rate and clip_norm must be positive, sigma_s non-negative"
                    .to_string(),
            });
        }
        if n < 8 {
            return Err(CoreError::InvalidData {
                msg: format!("{n} rows are not enough to train"),
            });
        }
        Ok(())
    }

    /// Number of SGD steps taken on `n` rows.
    pub fn sgd_steps(&self, n: usize) -> usize {
        n.div_ceil(self.batch_size.max(1)).max(1) * self.epochs
    }

    /// Sampling probability `q = B/N`.
    pub fn sampling_probability(&self, n: usize) -> f64 {
        (self.batch_size as f64 / n.max(1) as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pgm_config_is_valid() {
        let cfg = PgmConfig::default();
        assert!(cfg.validate(1000, 64).is_ok());
        assert!(cfg.private);
    }

    #[test]
    fn variant_constructors() {
        let cfg = PgmConfig::default().non_private();
        assert!(!cfg.private);
        let ae = PgmConfig::default().autoencoder_variant();
        assert!(matches!(ae.variance_mode, VarianceMode::Fixed(v) if v < -10.0));
    }

    #[test]
    fn pgm_validation_rejects_bad_configs() {
        let base = PgmConfig::default();
        assert!(PgmConfig {
            latent_dim: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            latent_dim: 30,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            hidden_dim: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            mog_components: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            epochs: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            learning_rate: 0.0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            sigma_s: 0.0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            delta: 0.0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            em_iterations: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        // Non-private config does not care about the privacy fields.
        assert!(PgmConfig {
            sigma_s: 0.0,
            ..base.clone().non_private()
        }
        .validate(100, 20)
        .is_ok());
        assert!(base.validate(2, 20).is_err());
    }

    #[test]
    fn sgd_steps_and_sampling_probability() {
        let cfg = PgmConfig {
            epochs: 5,
            batch_size: 32,
            ..Default::default()
        };
        assert_eq!(cfg.sgd_steps(320), 50);
        assert_eq!(cfg.sgd_steps(321), 55);
        assert!((cfg.sampling_probability(320) - 0.1).abs() < 1e-12);
        assert_eq!(cfg.sampling_probability(10), 1.0);
    }

    #[test]
    fn vae_config_validation() {
        let cfg = VaeConfig::default();
        assert!(cfg.validate(100, 20).is_ok());
        assert!(!cfg.is_private());
        let dp = VaeConfig {
            sigma_s: 1.5,
            ..cfg.clone()
        };
        assert!(dp.is_private());
        assert!(VaeConfig {
            latent_dim: 0,
            ..cfg.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(VaeConfig {
            latent_dim: 40,
            ..cfg.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(VaeConfig {
            epochs: 0,
            ..cfg.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(VaeConfig {
            sigma_s: -1.0,
            ..cfg.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(cfg.validate(2, 20).is_err());
        assert_eq!(cfg.sgd_steps(640), 100);
    }
}
