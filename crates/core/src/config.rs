//! Hyper-parameter configuration for the generative models.

use crate::{CoreError, Result};

/// How the decoder scores reconstructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderLoss {
    /// Bernoulli likelihood with logits — appropriate for data normalized to
    /// `[0, 1]` (images, min-max-scaled tabular data). This is what the
    /// reference implementation uses.
    Bernoulli,
    /// Gaussian likelihood with fixed unit variance (sum-of-squares
    /// reconstruction error) — appropriate for standardized continuous data.
    Gaussian,
}

/// How the encoder variance is handled in the Decoding Phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarianceMode {
    /// Train σ_φ(x) with the decoder (the full P3GM of paper Eq. (10)).
    Learned,
    /// Freeze log σ²_φ(x) at the given constant (paper Eq. (11)); with a very
    /// negative value this is the autoencoder-like P3GM(AE) of Figure 7.
    Fixed(f64),
}

/// Configuration of the phased generative model (PGM / P3GM / P3GM(AE)).
#[derive(Debug, Clone, PartialEq)]
pub struct PgmConfig {
    /// Latent dimensionality `d'` (the PCA output dimension).
    pub latent_dim: usize,
    /// Hidden width of the encoder/decoder MLPs (the paper uses 1000; the
    /// evaluation harness scales this down).
    pub hidden_dim: usize,
    /// Number of mixture components `d_m` of the MoG prior.
    pub mog_components: usize,
    /// Training epochs of the Decoding Phase.
    pub epochs: usize,
    /// Mini-batch (lot) size `B`.
    pub batch_size: usize,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f64,
    /// Per-example gradient clipping norm `C`.
    pub clip_norm: f64,
    /// Whether the model is trained under differential privacy (P3GM) or not
    /// (PGM). When `false`, `eps_p`, `sigma_e` and `sigma_s` are ignored.
    pub private: bool,
    /// DP-PCA budget ε_p (paper default 0.1).
    pub eps_p: f64,
    /// DP-EM noise multiplier σ_e.
    pub sigma_e: f64,
    /// DP-EM iterations T_e (paper default 20).
    pub em_iterations: usize,
    /// DP-SGD noise multiplier σ_s.
    pub sigma_s: f64,
    /// Target δ of the overall (ε, δ)-DP guarantee.
    pub delta: f64,
    /// How the encoder variance is treated.
    pub variance_mode: VarianceMode,
    /// Reconstruction likelihood.
    pub decoder_loss: DecoderLoss,
}

impl Default for PgmConfig {
    fn default() -> Self {
        PgmConfig {
            latent_dim: 10,
            hidden_dim: 100,
            mog_components: 3,
            epochs: 10,
            batch_size: 64,
            learning_rate: 1e-3,
            clip_norm: 1.0,
            private: true,
            eps_p: 0.1,
            sigma_e: 100.0,
            em_iterations: 20,
            sigma_s: 1.42,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        }
    }
}

impl PgmConfig {
    /// A non-private PGM configuration with the same architecture.
    pub fn non_private(mut self) -> Self {
        self.private = false;
        self
    }

    /// The P3GM(AE) variant: encoder variance frozen (σ ≈ 0).
    pub fn autoencoder_variant(mut self) -> Self {
        self.variance_mode = VarianceMode::Fixed(-20.0);
        self
    }

    /// Validates the configuration against a dataset of `n` rows and `d`
    /// features.
    pub fn validate(&self, n: usize, d: usize) -> Result<()> {
        if self.latent_dim == 0 || self.latent_dim > d {
            return Err(CoreError::InvalidConfig {
                msg: format!("latent_dim must be in 1..={d}, got {}", self.latent_dim),
            });
        }
        if self.hidden_dim == 0 {
            return Err(CoreError::InvalidConfig {
                msg: "hidden_dim must be positive".to_string(),
            });
        }
        if self.mog_components == 0 || self.mog_components > n {
            return Err(CoreError::InvalidConfig {
                msg: format!(
                    "mog_components must be in 1..={n}, got {}",
                    self.mog_components
                ),
            });
        }
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(CoreError::InvalidConfig {
                msg: "epochs and batch_size must be positive".to_string(),
            });
        }
        if self.learning_rate <= 0.0 || self.clip_norm <= 0.0 {
            return Err(CoreError::InvalidConfig {
                msg: "learning_rate and clip_norm must be positive".to_string(),
            });
        }
        if self.private {
            if self.eps_p <= 0.0 || self.sigma_e <= 0.0 || self.sigma_s <= 0.0 {
                return Err(CoreError::InvalidConfig {
                    msg: "private training requires positive eps_p, sigma_e and sigma_s"
                        .to_string(),
                });
            }
            if !(0.0..1.0).contains(&self.delta) || self.delta == 0.0 {
                return Err(CoreError::InvalidConfig {
                    msg: format!("delta must be in (0,1), got {}", self.delta),
                });
            }
            if self.em_iterations == 0 {
                return Err(CoreError::InvalidConfig {
                    msg: "private training requires at least one DP-EM iteration".to_string(),
                });
            }
        }
        if n < 2 * self.batch_size.min(n).max(1) && n < 8 {
            return Err(CoreError::InvalidData {
                msg: format!("{n} rows are not enough to train"),
            });
        }
        Ok(())
    }

    /// Writes the configuration into a snapshot payload. The field order is
    /// part of the `p3gm-store` wire format — append, never reorder.
    pub(crate) fn encode_into(&self, enc: &mut p3gm_store::Encoder) {
        enc.usize(self.latent_dim)
            .usize(self.hidden_dim)
            .usize(self.mog_components)
            .usize(self.epochs)
            .usize(self.batch_size)
            .f64(self.learning_rate)
            .f64(self.clip_norm)
            .bool(self.private)
            .f64(self.eps_p)
            .f64(self.sigma_e)
            .usize(self.em_iterations)
            .f64(self.sigma_s)
            .f64(self.delta);
        match self.variance_mode {
            VarianceMode::Learned => enc.u8(0).f64(0.0),
            VarianceMode::Fixed(v) => enc.u8(1).f64(v),
        };
        enc.u8(match self.decoder_loss {
            DecoderLoss::Bernoulli => 0,
            DecoderLoss::Gaussian => 1,
        });
    }

    /// Reads a configuration written by [`PgmConfig::encode_into`].
    pub(crate) fn decode_from(dec: &mut p3gm_store::Decoder) -> p3gm_store::Result<Self> {
        let latent_dim = dec.usize()?;
        let hidden_dim = dec.usize()?;
        let mog_components = dec.usize()?;
        let epochs = dec.usize()?;
        let batch_size = dec.usize()?;
        let learning_rate = dec.f64()?;
        let clip_norm = dec.f64()?;
        let private = dec.bool()?;
        let eps_p = dec.f64()?;
        let sigma_e = dec.f64()?;
        let em_iterations = dec.usize()?;
        let sigma_s = dec.f64()?;
        let delta = dec.f64()?;
        let variance_mode = match (dec.u8()?, dec.f64()?) {
            (0, _) => VarianceMode::Learned,
            (1, v) => VarianceMode::Fixed(v),
            (code, _) => {
                return Err(p3gm_store::StoreError::Invalid {
                    msg: format!("unknown variance-mode code {code}"),
                })
            }
        };
        let decoder_loss = match dec.u8()? {
            0 => DecoderLoss::Bernoulli,
            1 => DecoderLoss::Gaussian,
            code => {
                return Err(p3gm_store::StoreError::Invalid {
                    msg: format!("unknown decoder-loss code {code}"),
                })
            }
        };
        // NaN passes every `<= 0.0` range check in `validate()` (all NaN
        // comparisons are false), so finiteness must be enforced here or a
        // crafted buffer would decode into a model that silently computes
        // NaN.
        let mut floats = vec![learning_rate, clip_norm, eps_p, sigma_e, sigma_s, delta];
        if let VarianceMode::Fixed(v) = variance_mode {
            floats.push(v);
        }
        if floats.iter().any(|v| !v.is_finite()) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: "configuration floats must be finite".to_string(),
            });
        }
        Ok(PgmConfig {
            latent_dim,
            hidden_dim,
            mog_components,
            epochs,
            batch_size,
            learning_rate,
            clip_norm,
            private,
            eps_p,
            sigma_e,
            em_iterations,
            sigma_s,
            delta,
            variance_mode,
            decoder_loss,
        })
    }

    /// Number of DP-SGD steps `T_s` the Decoding Phase will take on a
    /// dataset of `n` rows.
    pub fn sgd_steps(&self, n: usize) -> usize {
        let steps_per_epoch = n.div_ceil(self.batch_size.max(1)).max(1);
        steps_per_epoch * self.epochs
    }

    /// Sampling probability `q = B/N` used by the privacy accountant.
    pub fn sampling_probability(&self, n: usize) -> f64 {
        (self.batch_size as f64 / n.max(1) as f64).min(1.0)
    }

    /// The (ε, δ)-DP guarantee of running this configuration on `n`
    /// training rows (paper Theorem 4), or `None` for a non-private
    /// configuration.
    ///
    /// The guarantee is a pure function of the configuration and `n` —
    /// no trained weights are involved — which is what lets a snapshot
    /// *header* peek recompute the honest stamp without decoding any
    /// weight payload. `PhasedGenerativeModel::privacy_spec` delegates
    /// here, so the header-reported and full-decode-reported stamps are
    /// the same accountant run by construction.
    pub fn privacy_spec(&self, n: usize) -> Option<p3gm_privacy::rdp::PrivacySpec> {
        if !self.private {
            return None;
        }
        p3gm_privacy::rdp::RdpAccountant::p3gm_total(
            self.eps_p,
            self.em_iterations,
            self.sigma_e,
            self.mog_components,
            self.sgd_steps(n),
            self.sampling_probability(n),
            self.sigma_s,
            self.delta,
        )
        .ok()
    }
}

/// Configuration of the (DP-)VAE baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct VaeConfig {
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Hidden width of the encoder/decoder MLPs.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Per-example clipping norm (only used when `sigma_s > 0`).
    pub clip_norm: f64,
    /// DP-SGD noise multiplier; `0.0` means non-private end-to-end training
    /// (plain VAE), positive values give DP-VAE.
    pub sigma_s: f64,
    /// Target δ for the DP guarantee of DP-VAE.
    pub delta: f64,
    /// Reconstruction likelihood.
    pub decoder_loss: DecoderLoss,
}

impl Default for VaeConfig {
    fn default() -> Self {
        VaeConfig {
            latent_dim: 10,
            hidden_dim: 100,
            epochs: 10,
            batch_size: 64,
            learning_rate: 1e-2,
            clip_norm: 1.0,
            sigma_s: 0.0,
            delta: 1e-5,
            decoder_loss: DecoderLoss::Bernoulli,
        }
    }
}

impl VaeConfig {
    /// Returns `true` when the configuration trains with DP-SGD.
    pub fn is_private(&self) -> bool {
        self.sigma_s > 0.0
    }

    /// Validates the configuration against a dataset of `n` rows and `d`
    /// features.
    pub fn validate(&self, n: usize, d: usize) -> Result<()> {
        if self.latent_dim == 0 || self.latent_dim > d {
            return Err(CoreError::InvalidConfig {
                msg: format!("latent_dim must be in 1..={d}, got {}", self.latent_dim),
            });
        }
        if self.hidden_dim == 0 || self.epochs == 0 || self.batch_size == 0 {
            return Err(CoreError::InvalidConfig {
                msg: "hidden_dim, epochs and batch_size must be positive".to_string(),
            });
        }
        if self.learning_rate <= 0.0 || self.clip_norm <= 0.0 || self.sigma_s < 0.0 {
            return Err(CoreError::InvalidConfig {
                msg: "learning_rate and clip_norm must be positive, sigma_s non-negative"
                    .to_string(),
            });
        }
        if n < 8 {
            return Err(CoreError::InvalidData {
                msg: format!("{n} rows are not enough to train"),
            });
        }
        Ok(())
    }

    /// Number of SGD steps taken on `n` rows.
    pub fn sgd_steps(&self, n: usize) -> usize {
        n.div_ceil(self.batch_size.max(1)).max(1) * self.epochs
    }

    /// Sampling probability `q = B/N`.
    pub fn sampling_probability(&self, n: usize) -> f64 {
        (self.batch_size as f64 / n.max(1) as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pgm_config_is_valid() {
        let cfg = PgmConfig::default();
        assert!(cfg.validate(1000, 64).is_ok());
        assert!(cfg.private);
    }

    #[test]
    fn variant_constructors() {
        let cfg = PgmConfig::default().non_private();
        assert!(!cfg.private);
        let ae = PgmConfig::default().autoencoder_variant();
        assert!(matches!(ae.variance_mode, VarianceMode::Fixed(v) if v < -10.0));
    }

    #[test]
    fn pgm_validation_rejects_bad_configs() {
        let base = PgmConfig::default();
        assert!(PgmConfig {
            latent_dim: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            latent_dim: 30,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            hidden_dim: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            mog_components: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            epochs: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            learning_rate: 0.0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            sigma_s: 0.0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            delta: 0.0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(PgmConfig {
            em_iterations: 0,
            ..base.clone()
        }
        .validate(100, 20)
        .is_err());
        // Non-private config does not care about the privacy fields.
        assert!(PgmConfig {
            sigma_s: 0.0,
            ..base.clone().non_private()
        }
        .validate(100, 20)
        .is_ok());
        assert!(base.validate(2, 20).is_err());
    }

    #[test]
    fn decode_rejects_non_finite_floats() {
        // Round trip works for a sane config...
        let good = PgmConfig::default().autoencoder_variant();
        let mut enc = p3gm_store::Encoder::new(99);
        good.encode_into(&mut enc);
        let bytes = enc.finish();
        let mut dec = p3gm_store::Decoder::new(&bytes, 99).unwrap();
        assert_eq!(PgmConfig::decode_from(&mut dec).unwrap(), good);
        // ...but NaN fields (which pass validate()'s range checks because
        // NaN comparisons are false) are rejected at decode time.
        for bad in [
            PgmConfig {
                learning_rate: f64::NAN,
                ..PgmConfig::default()
            },
            PgmConfig {
                eps_p: f64::INFINITY,
                ..PgmConfig::default()
            },
            PgmConfig {
                variance_mode: VarianceMode::Fixed(f64::NAN),
                ..PgmConfig::default()
            },
        ] {
            let mut enc = p3gm_store::Encoder::new(99);
            bad.encode_into(&mut enc);
            let bytes = enc.finish();
            let mut dec = p3gm_store::Decoder::new(&bytes, 99).unwrap();
            assert!(matches!(
                PgmConfig::decode_from(&mut dec),
                Err(p3gm_store::StoreError::Invalid { .. })
            ));
        }
    }

    #[test]
    fn sgd_steps_and_sampling_probability() {
        let cfg = PgmConfig {
            epochs: 5,
            batch_size: 32,
            ..Default::default()
        };
        assert_eq!(cfg.sgd_steps(320), 50);
        assert_eq!(cfg.sgd_steps(321), 55);
        assert!((cfg.sampling_probability(320) - 0.1).abs() < 1e-12);
        assert_eq!(cfg.sampling_probability(10), 1.0);
    }

    #[test]
    fn vae_config_validation() {
        let cfg = VaeConfig::default();
        assert!(cfg.validate(100, 20).is_ok());
        assert!(!cfg.is_private());
        let dp = VaeConfig {
            sigma_s: 1.5,
            ..cfg.clone()
        };
        assert!(dp.is_private());
        assert!(VaeConfig {
            latent_dim: 0,
            ..cfg.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(VaeConfig {
            latent_dim: 40,
            ..cfg.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(VaeConfig {
            epochs: 0,
            ..cfg.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(VaeConfig {
            sigma_s: -1.0,
            ..cfg.clone()
        }
        .validate(100, 20)
        .is_err());
        assert!(cfg.validate(2, 20).is_err());
        assert_eq!(cfg.sgd_steps(640), 100);
    }
}
