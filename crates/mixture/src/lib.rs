//! # p3gm-mixture
//!
//! Gaussian mixture models and clustering for the P3GM reproduction.
//!
//! P3GM's Encoding Phase fits a mixture of Gaussians `r_λ(z)` to the
//! PCA-projected data with a differentially private EM algorithm (DP-EM,
//! Park et al.), and its Decoding Phase evaluates the KL divergence between
//! the encoder's diagonal Gaussian and that mixture (via the Hershey–Olsen
//! approximation).  The DP-GM baseline additionally needs (private) k-means.
//! This crate provides all of it:
//!
//! * [`gmm`] — the [`gmm::Gmm`] model: densities, responsibilities,
//!   sampling, and the KL terms used in the ELBO.
//! * [`em`] — maximum-likelihood EM fitting.
//! * [`dpem`] — DP-EM: EM whose M-step statistics are released through the
//!   Gaussian mechanism (paper §II-D).
//! * [`kmeans`] — Lloyd's k-means with k-means++ seeding, plus a
//!   differentially private variant used by the DP-GM baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dpem;
pub mod em;
pub mod gmm;
pub mod kmeans;

pub use dpem::{DpEmConfig, DpEmResult};
pub use em::{EmConfig, EmResult};
pub use gmm::Gmm;
// NOTE: the `kmeans` *function* is intentionally not re-exported at the
// crate root — it would collide with the `kmeans` module in rustdoc's
// output paths. Call it as `kmeans::kmeans`.
pub use kmeans::{dp_kmeans, KMeansConfig, KMeansResult};

/// Errors produced by mixture-model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum MixtureError {
    /// Invalid hyper-parameter (zero components, non-positive noise, …).
    InvalidParameter {
        /// Description of the problem.
        msg: String,
    },
    /// The input data was empty or inconsistent.
    InvalidData {
        /// Description of the problem.
        msg: String,
    },
    /// A numerical failure (e.g. covariance factorization) that could not be
    /// repaired by regularization.
    Numerical {
        /// Description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for MixtureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MixtureError::InvalidParameter { msg } => write!(f, "invalid parameter: {msg}"),
            MixtureError::InvalidData { msg } => write!(f, "invalid data: {msg}"),
            MixtureError::Numerical { msg } => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for MixtureError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MixtureError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(MixtureError::InvalidParameter {
            msg: "k = 0".into()
        }
        .to_string()
        .contains("k = 0"));
        assert!(MixtureError::InvalidData {
            msg: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(MixtureError::Numerical {
            msg: "singular".into()
        }
        .to_string()
        .contains("singular"));
    }
}
