//! Maximum-likelihood EM fitting of a Gaussian mixture.
//!
//! This is the non-private estimator; [`crate::dpem`] wraps the same E/M
//! structure with the Gaussian mechanism on the M-step statistics.

use crate::gmm::Gmm;
use crate::kmeans::{kmeans, KMeansConfig};
use crate::{MixtureError, Result};
use p3gm_linalg::{vector, Matrix};
use rand::Rng;

/// Responsibility-weighted row sums: returns the `k x d` matrix whose row
/// `c` is `Σ_i resp[i][c] · data.row(i)` (the numerator of the M-step mean
/// update), accumulated over parallel row chunks with an in-order fold so
/// the result is bit-identical for every thread count.
pub(crate) fn weighted_mean_sums(data: &Matrix, resp: &Matrix) -> Matrix {
    let k = resp.cols();
    let d = data.cols();
    p3gm_parallel::par_map_reduce(
        data.rows(),
        p3gm_parallel::default_chunk_len(data.rows()),
        |range| {
            let mut partial = Matrix::zeros(k, d);
            for i in range {
                let row = data.row(i);
                for (c, &r) in resp.row(i).iter().enumerate() {
                    vector::axpy(r, row, partial.row_mut(c));
                }
            }
            partial
        },
        |mut a, b| {
            a.axpy(1.0, &b).expect("partial shapes match");
            a
        },
    )
    .unwrap_or_else(|| Matrix::zeros(k, d))
}

/// Responsibility-weighted scatter sums: element `c` of the returned list
/// is `Σ_i resp[i][c] · (x_i − µ_c)(x_i − µ_c)ᵀ` (the numerator of the
/// M-step covariance update). Accumulated like [`weighted_mean_sums`]:
/// parallel row chunks, deterministic in-order fold.
pub(crate) fn weighted_scatter_sums(data: &Matrix, resp: &Matrix, means: &Matrix) -> Vec<Matrix> {
    let k = resp.cols();
    let d = data.cols();
    p3gm_parallel::par_map_reduce(
        data.rows(),
        p3gm_parallel::default_chunk_len(data.rows()),
        |range| {
            let mut partials = vec![Matrix::zeros(d, d); k];
            for i in range {
                let row = data.row(i);
                for (c, &w) in resp.row(i).iter().enumerate() {
                    let diff = vector::sub(row, means.row(c));
                    let partial = &mut partials[c];
                    for (a, &da) in diff.iter().enumerate() {
                        let scaled = da * w;
                        vector::axpy(scaled, &diff, partial.row_mut(a));
                    }
                }
            }
            partials
        },
        |mut a, b| {
            for (pa, pb) in a.iter_mut().zip(b.iter()) {
                pa.axpy(1.0, pb).expect("partial shapes match");
            }
            a
        },
    )
    .unwrap_or_else(|| vec![Matrix::zeros(d, d); k])
}

/// Configuration for EM fitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Number of mixture components `K`.
    pub n_components: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the mean log-likelihood improves by less than this.
    pub tolerance: f64,
    /// Diagonal regularization added to every covariance update.
    pub covariance_regularization: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            n_components: 3,
            max_iters: 100,
            tolerance: 1e-5,
            covariance_regularization: 1e-6,
        }
    }
}

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// The fitted mixture model.
    pub model: Gmm,
    /// Mean log-likelihood after each iteration.
    pub log_likelihood_trace: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the tolerance-based stopping criterion fired.
    pub converged: bool,
}

/// Fits a Gaussian mixture to the rows of `data` with EM, initializing the
/// means with k-means.
pub fn fit<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, config: &EmConfig) -> Result<EmResult> {
    validate(data, config)?;
    let k = config.n_components;
    let n = data.rows();

    // Initialization: k-means centroids, per-cluster covariances, uniform-ish weights.
    let km = kmeans(
        rng,
        data,
        &KMeansConfig {
            k,
            max_iters: 20,
            tolerance: 1e-4,
        },
    )?;
    let (mut weights, mut means, mut covariances) =
        initial_parameters(data, &km.assignments, k, config.covariance_regularization);

    let mut model =
        Gmm::new(weights.clone(), means.clone(), covariances.clone()).map_err(upgrade_numerical)?;
    let mut trace: Vec<f64> = Vec::with_capacity(config.max_iters);
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // E-step: responsibilities for every row (n x k, parallel).
        let resp = model.responsibilities_batch(data);

        // M-step, accumulated over parallel row chunks with deterministic
        // in-order folds.
        let nk: Vec<f64> = resp.column_sums().iter().map(|&s| s.max(1e-10)).collect();
        let mean_sums = weighted_mean_sums(data, &resp);
        for c in 0..k {
            weights[c] = nk[c] / n as f64;
            let mean = means.row_mut(c);
            mean.copy_from_slice(mean_sums.row(c));
            vector::scale(1.0 / nk[c], mean);
        }
        let scatter = weighted_scatter_sums(data, &resp, &means);
        for (c, sum) in scatter.into_iter().enumerate() {
            let mut cov = sum.scale(1.0 / nk[c]);
            cov.add_diagonal(config.covariance_regularization);
            covariances[c] = cov;
        }

        model = Gmm::new(weights.clone(), means.clone(), covariances.clone())
            .map_err(upgrade_numerical)?;
        let ll = model.mean_log_likelihood(data);
        if let Some(&prev) = trace.last() {
            if (ll - prev).abs() < config.tolerance {
                trace.push(ll);
                converged = true;
                break;
            }
        }
        trace.push(ll);
    }

    Ok(EmResult {
        model,
        log_likelihood_trace: trace,
        iterations,
        converged,
    })
}

/// Per-cluster initial parameters from a hard assignment: weights, a
/// `k x d` mean matrix and per-cluster covariances.
pub(crate) fn initial_parameters(
    data: &Matrix,
    assignments: &[usize],
    k: usize,
    regularization: f64,
) -> (Vec<f64>, Matrix, Vec<Matrix>) {
    let d = data.cols();
    let n = data.rows();
    let mut counts = vec![0.0; k];
    let mut means = Matrix::zeros(k, d);
    for (row, &a) in data.row_iter().zip(assignments.iter()) {
        counts[a] += 1.0;
        vector::axpy(1.0, row, means.row_mut(a));
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0.0 {
            vector::scale(1.0 / count, means.row_mut(c));
        }
    }
    let mut covariances = vec![Matrix::identity(d); k];
    for c in 0..k {
        if counts[c] < 2.0 {
            continue;
        }
        let mut cov = Matrix::zeros(d, d);
        for (row, &a) in data.row_iter().zip(assignments.iter()) {
            if a != c {
                continue;
            }
            let diff = vector::sub(row, means.row(c));
            for (i, &di) in diff.iter().enumerate() {
                vector::axpy(di, &diff, cov.row_mut(i));
            }
        }
        let mut cov = cov.scale(1.0 / counts[c]);
        cov.add_diagonal(regularization.max(1e-9));
        covariances[c] = cov;
    }
    let weights: Vec<f64> = counts.iter().map(|&c| (c / n as f64).max(1e-6)).collect();
    (weights, means, covariances)
}

pub(crate) fn validate(data: &Matrix, config: &EmConfig) -> Result<()> {
    if config.n_components == 0 {
        return Err(MixtureError::InvalidParameter {
            msg: "n_components must be positive".to_string(),
        });
    }
    if data.rows() == 0 || data.cols() == 0 {
        return Err(MixtureError::InvalidData {
            msg: "empty data".to_string(),
        });
    }
    if data.rows() < config.n_components {
        return Err(MixtureError::InvalidData {
            msg: format!(
                "{} rows cannot support {} components",
                data.rows(),
                config.n_components
            ),
        });
    }
    Ok(())
}

fn upgrade_numerical(e: MixtureError) -> MixtureError {
    match e {
        MixtureError::Numerical { msg } => MixtureError::Numerical { msg },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    fn two_blob_data(rng: &mut StdRng, per: usize) -> Matrix {
        let true_model = Gmm::isotropic(
            vec![0.5, 0.5],
            Matrix::from_rows(&[vec![-3.0, 0.0], vec![3.0, 1.0]]).unwrap(),
            0.5,
        )
        .unwrap();
        true_model.sample_n(rng, per * 2)
    }

    #[test]
    fn recovers_two_well_separated_components() {
        let mut r = rng();
        let data = two_blob_data(&mut r, 200);
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut means = res.model.means().to_rows();
        means.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!((means[0][0] + 3.0).abs() < 0.3, "{:?}", means[0]);
        assert!((means[1][0] - 3.0).abs() < 0.3, "{:?}", means[1]);
        assert!((res.model.weights()[0] - 0.5).abs() < 0.1);
        // Covariance close to 0.5 I.
        let cov = &res.model.covariances()[0];
        assert!((cov.get(0, 0) - 0.5).abs() < 0.2);
    }

    #[test]
    fn log_likelihood_is_monotonically_non_decreasing() {
        let mut r = rng();
        let data = two_blob_data(&mut r, 100);
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 2,
                max_iters: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let trace = &res.log_likelihood_trace;
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "likelihood decreased: {w:?}");
        }
    }

    #[test]
    fn converges_and_reports_it() {
        let mut r = rng();
        let data = two_blob_data(&mut r, 150);
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 2,
                max_iters: 200,
                tolerance: 1e-6,
                covariance_regularization: 1e-6,
            },
        )
        .unwrap();
        assert!(res.converged, "EM did not converge in 200 iterations");
        assert!(res.iterations < 200);
    }

    #[test]
    fn single_component_recovers_mean_and_covariance() {
        let mut r = rng();
        let truth = Gmm::new(
            vec![1.0],
            Matrix::from_rows(&[vec![1.0, -2.0]]).unwrap(),
            vec![Matrix::from_rows(&[vec![2.0, 0.5], vec![0.5, 1.0]]).unwrap()],
        )
        .unwrap();
        let data = truth.sample_n(&mut r, 2000);
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let mean = res.model.mean(0);
        assert!((mean[0] - 1.0).abs() < 0.1);
        assert!((mean[1] + 2.0).abs() < 0.1);
        let cov = &res.model.covariances()[0];
        assert!((cov.get(0, 0) - 2.0).abs() < 0.25);
        assert!((cov.get(0, 1) - 0.5).abs() < 0.15);
    }

    #[test]
    fn fitted_model_has_higher_likelihood_than_initialization() {
        let mut r = rng();
        let data = two_blob_data(&mut r, 100);
        let single = Gmm::isotropic(
            vec![1.0],
            Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap(),
            10.0,
        )
        .unwrap();
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.model.mean_log_likelihood(&data) > single.mean_log_likelihood(&data));
    }

    #[test]
    fn validation_errors() {
        let mut r = rng();
        let data = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
        assert!(fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(fit(&mut r, &Matrix::zeros(0, 2), &EmConfig::default()).is_err());
    }
}
