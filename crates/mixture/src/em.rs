//! Maximum-likelihood EM fitting of a Gaussian mixture.
//!
//! This is the non-private estimator; [`crate::dpem`] wraps the same E/M
//! structure with the Gaussian mechanism on the M-step statistics.

use crate::gmm::Gmm;
use crate::kmeans::{kmeans, KMeansConfig};
use crate::{MixtureError, Result};
use p3gm_linalg::{vector, Matrix};
use rand::Rng;

/// Configuration for EM fitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Number of mixture components `K`.
    pub n_components: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the mean log-likelihood improves by less than this.
    pub tolerance: f64,
    /// Diagonal regularization added to every covariance update.
    pub covariance_regularization: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            n_components: 3,
            max_iters: 100,
            tolerance: 1e-5,
            covariance_regularization: 1e-6,
        }
    }
}

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// The fitted mixture model.
    pub model: Gmm,
    /// Mean log-likelihood after each iteration.
    pub log_likelihood_trace: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the tolerance-based stopping criterion fired.
    pub converged: bool,
}

/// Fits a Gaussian mixture to the rows of `data` with EM, initializing the
/// means with k-means.
pub fn fit<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, config: &EmConfig) -> Result<EmResult> {
    validate(data, config)?;
    let k = config.n_components;
    let d = data.cols();
    let n = data.rows();

    // Initialization: k-means centroids, per-cluster covariances, uniform-ish weights.
    let km = kmeans(
        rng,
        data,
        &KMeansConfig {
            k,
            max_iters: 20,
            tolerance: 1e-4,
        },
    )?;
    let (mut weights, mut means, mut covariances) =
        initial_parameters(data, &km.assignments, k, config.covariance_regularization);

    let mut model =
        Gmm::new(weights.clone(), means.clone(), covariances.clone()).map_err(upgrade_numerical)?;
    let mut trace: Vec<f64> = Vec::with_capacity(config.max_iters);
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // E-step: responsibilities for every row.
        let resp: Vec<Vec<f64>> = data
            .row_iter()
            .map(|row| model.responsibilities(row))
            .collect();

        // M-step.
        let nk: Vec<f64> = (0..k)
            .map(|c| resp.iter().map(|r| r[c]).sum::<f64>().max(1e-10))
            .collect();
        for c in 0..k {
            weights[c] = nk[c] / n as f64;
            let mut mean = vec![0.0; d];
            for (row, r) in data.row_iter().zip(resp.iter()) {
                vector::axpy(r[c], row, &mut mean);
            }
            vector::scale(1.0 / nk[c], &mut mean);
            means[c] = mean;

            let mut cov = Matrix::zeros(d, d);
            for (row, r) in data.row_iter().zip(resp.iter()) {
                let diff = vector::sub(row, &means[c]);
                let w = r[c];
                for i in 0..d {
                    let di = diff[i] * w;
                    for (j, &dj) in diff.iter().enumerate() {
                        let v = cov.get(i, j) + di * dj;
                        cov.set(i, j, v);
                    }
                }
            }
            let mut cov = cov.scale(1.0 / nk[c]);
            cov.add_diagonal(config.covariance_regularization);
            covariances[c] = cov;
        }

        model = Gmm::new(weights.clone(), means.clone(), covariances.clone())
            .map_err(upgrade_numerical)?;
        let ll = model.mean_log_likelihood(data);
        if let Some(&prev) = trace.last() {
            if (ll - prev).abs() < config.tolerance {
                trace.push(ll);
                converged = true;
                break;
            }
        }
        trace.push(ll);
    }

    Ok(EmResult {
        model,
        log_likelihood_trace: trace,
        iterations,
        converged,
    })
}

/// Per-cluster initial parameters from a hard assignment.
pub(crate) fn initial_parameters(
    data: &Matrix,
    assignments: &[usize],
    k: usize,
    regularization: f64,
) -> (Vec<f64>, Vec<Vec<f64>>, Vec<Matrix>) {
    let d = data.cols();
    let n = data.rows();
    let mut counts = vec![0.0; k];
    let mut means = vec![vec![0.0; d]; k];
    for (row, &a) in data.row_iter().zip(assignments.iter()) {
        counts[a] += 1.0;
        vector::axpy(1.0, row, &mut means[a]);
    }
    for c in 0..k {
        if counts[c] > 0.0 {
            vector::scale(1.0 / counts[c], &mut means[c]);
        }
    }
    let mut covariances = vec![Matrix::identity(d); k];
    for c in 0..k {
        if counts[c] < 2.0 {
            continue;
        }
        let mut cov = Matrix::zeros(d, d);
        for (row, &a) in data.row_iter().zip(assignments.iter()) {
            if a != c {
                continue;
            }
            let diff = vector::sub(row, &means[c]);
            for i in 0..d {
                for j in 0..d {
                    let v = cov.get(i, j) + diff[i] * diff[j];
                    cov.set(i, j, v);
                }
            }
        }
        let mut cov = cov.scale(1.0 / counts[c]);
        cov.add_diagonal(regularization.max(1e-9));
        covariances[c] = cov;
    }
    let weights: Vec<f64> = counts.iter().map(|&c| (c / n as f64).max(1e-6)).collect();
    (weights, means, covariances)
}

pub(crate) fn validate(data: &Matrix, config: &EmConfig) -> Result<()> {
    if config.n_components == 0 {
        return Err(MixtureError::InvalidParameter {
            msg: "n_components must be positive".to_string(),
        });
    }
    if data.rows() == 0 || data.cols() == 0 {
        return Err(MixtureError::InvalidData {
            msg: "empty data".to_string(),
        });
    }
    if data.rows() < config.n_components {
        return Err(MixtureError::InvalidData {
            msg: format!(
                "{} rows cannot support {} components",
                data.rows(),
                config.n_components
            ),
        });
    }
    Ok(())
}

fn upgrade_numerical(e: MixtureError) -> MixtureError {
    match e {
        MixtureError::Numerical { msg } => MixtureError::Numerical { msg },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    fn two_blob_data(rng: &mut StdRng, per: usize) -> Matrix {
        let true_model =
            Gmm::isotropic(vec![0.5, 0.5], vec![vec![-3.0, 0.0], vec![3.0, 1.0]], 0.5).unwrap();
        true_model.sample_n(rng, per * 2)
    }

    #[test]
    fn recovers_two_well_separated_components() {
        let mut r = rng();
        let data = two_blob_data(&mut r, 200);
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut means: Vec<Vec<f64>> = res.model.means().to_vec();
        means.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!((means[0][0] + 3.0).abs() < 0.3, "{:?}", means[0]);
        assert!((means[1][0] - 3.0).abs() < 0.3, "{:?}", means[1]);
        assert!((res.model.weights()[0] - 0.5).abs() < 0.1);
        // Covariance close to 0.5 I.
        let cov = &res.model.covariances()[0];
        assert!((cov.get(0, 0) - 0.5).abs() < 0.2);
    }

    #[test]
    fn log_likelihood_is_monotonically_non_decreasing() {
        let mut r = rng();
        let data = two_blob_data(&mut r, 100);
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 2,
                max_iters: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let trace = &res.log_likelihood_trace;
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "likelihood decreased: {w:?}");
        }
    }

    #[test]
    fn converges_and_reports_it() {
        let mut r = rng();
        let data = two_blob_data(&mut r, 150);
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 2,
                max_iters: 200,
                tolerance: 1e-6,
                covariance_regularization: 1e-6,
            },
        )
        .unwrap();
        assert!(res.converged, "EM did not converge in 200 iterations");
        assert!(res.iterations < 200);
    }

    #[test]
    fn single_component_recovers_mean_and_covariance() {
        let mut r = rng();
        let truth = Gmm::new(
            vec![1.0],
            vec![vec![1.0, -2.0]],
            vec![Matrix::from_rows(&[vec![2.0, 0.5], vec![0.5, 1.0]]).unwrap()],
        )
        .unwrap();
        let data = truth.sample_n(&mut r, 2000);
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let mean = &res.model.means()[0];
        assert!((mean[0] - 1.0).abs() < 0.1);
        assert!((mean[1] + 2.0).abs() < 0.1);
        let cov = &res.model.covariances()[0];
        assert!((cov.get(0, 0) - 2.0).abs() < 0.25);
        assert!((cov.get(0, 1) - 0.5).abs() < 0.15);
    }

    #[test]
    fn fitted_model_has_higher_likelihood_than_initialization() {
        let mut r = rng();
        let data = two_blob_data(&mut r, 100);
        let single = Gmm::isotropic(vec![1.0], vec![vec![0.0, 0.0]], 10.0).unwrap();
        let res = fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.model.mean_log_likelihood(&data) > single.mean_log_likelihood(&data));
    }

    #[test]
    fn validation_errors() {
        let mut r = rng();
        let data = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
        assert!(fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(fit(
            &mut r,
            &data,
            &EmConfig {
                n_components: 5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(fit(&mut r, &Matrix::zeros(0, 2), &EmConfig::default()).is_err());
    }
}
