//! Gaussian mixture model: densities, responsibilities, sampling, and the
//! KL-divergence terms used by P3GM's ELBO.

use crate::{MixtureError, Result};
use p3gm_linalg::{vector, Cholesky, Matrix};
use p3gm_privacy::sampling;
use rand::Rng;

/// A mixture of full-covariance Gaussians over `R^d`.
///
/// Invariants maintained by the constructors: weights are non-negative and
/// sum to 1, the means form a `k x d` matrix (one component per row), every
/// covariance is `d x d` symmetric positive definite (a small jitter is
/// applied when necessary).
#[derive(Debug, Clone)]
pub struct Gmm {
    weights: Vec<f64>,
    /// Component means, one per row (`k x d`).
    means: Matrix,
    covariances: Vec<Matrix>,
    /// Cached Cholesky factors of the covariances.
    factors: Vec<Cholesky>,
    /// Cached inverses of the covariances (used by the KL gradients).
    inverses: Vec<Matrix>,
    /// Cached log-determinants.
    log_dets: Vec<f64>,
    /// Cached whitening operators: the inverse Cholesky factors `L_k⁻¹`
    /// stacked vertically into one `(k·d) x d` matrix, so the batched
    /// E-step computes every row's Mahalanobis terms with a single
    /// `data · stacked_whitenᵀ` product.
    stacked_whiten: Matrix,
    /// Cached whitened means: row `k` is `L_k⁻¹ μ_k`.
    whitened_means: Matrix,
    /// Cached `ln w_k` (weights clamped away from zero as in
    /// [`Gmm::log_density`]).
    log_weights: Vec<f64>,
    /// Cached Gaussian normalization constants
    /// `-0.5 (d ln 2π + ln det Σ_k)`.
    log_norm_consts: Vec<f64>,
}

impl Gmm {
    /// Builds a mixture from weights, a `k x d` mean matrix (one component
    /// mean per row) and covariances.
    ///
    /// Weights are re-normalized to sum to one; covariances that are not
    /// positive definite are repaired with increasing diagonal jitter.
    pub fn new(weights: Vec<f64>, means: Matrix, covariances: Vec<Matrix>) -> Result<Self> {
        let k = weights.len();
        if k == 0 || means.rows() != k || covariances.len() != k {
            return Err(MixtureError::InvalidParameter {
                msg: format!(
                    "component count mismatch: {} weights, {} means, {} covariances",
                    k,
                    means.rows(),
                    covariances.len()
                ),
            });
        }
        let d = means.cols();
        if d == 0 {
            return Err(MixtureError::InvalidParameter {
                msg: "zero-dimensional mixture".to_string(),
            });
        }
        if covariances.iter().any(|c| c.shape() != (d, d)) {
            return Err(MixtureError::InvalidParameter {
                msg: "inconsistent component dimensions".to_string(),
            });
        }
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return Err(MixtureError::InvalidParameter {
                msg: "weights must have positive total mass".to_string(),
            });
        }
        let weights: Vec<f64> = weights.iter().map(|w| w.max(0.0) / total).collect();

        let caches = build_caches(&weights, &means, &covariances)?;
        Ok(Gmm::from_parts(weights, means, covariances, caches))
    }

    /// Assembles a mixture from validated parameters and freshly built
    /// caches.
    fn from_parts(
        weights: Vec<f64>,
        means: Matrix,
        covariances: Vec<Matrix>,
        c: GmmCaches,
    ) -> Self {
        Gmm {
            weights,
            means,
            covariances,
            factors: c.factors,
            inverses: c.inverses,
            log_dets: c.log_dets,
            stacked_whiten: c.stacked_whiten,
            whitened_means: c.whitened_means,
            log_weights: c.log_weights,
            log_norm_consts: c.log_norm_consts,
        }
    }

    /// Builds an isotropic mixture (`σ² I` covariances) — a convenient
    /// constructor for tests and for the DP-GM baseline's latent prior.
    /// `means` holds one component mean per row.
    pub fn isotropic(weights: Vec<f64>, means: Matrix, variance: f64) -> Result<Self> {
        if variance <= 0.0 {
            return Err(MixtureError::InvalidParameter {
                msg: format!("variance must be positive, got {variance}"),
            });
        }
        let d = means.cols();
        let covs = (0..means.rows())
            .map(|_| Matrix::identity(d).scale(variance))
            .collect();
        Self::new(weights, means, covs)
    }

    /// Number of mixture components.
    pub fn n_components(&self) -> usize {
        self.weights.len()
    }

    /// Data dimensionality.
    pub fn dim(&self) -> usize {
        self.means.cols()
    }

    /// Mixture weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means as a `k x d` matrix (one component per row).
    pub fn means(&self) -> &Matrix {
        &self.means
    }

    /// The mean of component `k`.
    pub fn mean(&self, k: usize) -> &[f64] {
        self.means.row(k)
    }

    /// Component covariance matrices.
    pub fn covariances(&self) -> &[Matrix] {
        &self.covariances
    }

    /// Log-density of `x` under component `k` (a multivariate normal).
    pub fn component_log_density(&self, k: usize, x: &[f64]) -> f64 {
        let d = self.dim() as f64;
        let diff = vector::sub(x, self.means.row(k));
        let maha = self.factors[k]
            .quadratic_form(&diff)
            .expect("dimension checked at construction");
        -0.5 * (d * (2.0 * std::f64::consts::PI).ln() + self.log_dets[k] + maha)
    }

    /// Log-density of `x` under the mixture.
    pub fn log_density(&self, x: &[f64]) -> f64 {
        let logs: Vec<f64> = (0..self.n_components())
            .map(|k| self.weights[k].max(1e-300).ln() + self.component_log_density(k, x))
            .collect();
        vector::log_sum_exp(&logs)
    }

    /// Average log-likelihood of a set of rows, computed over
    /// [`Gmm::log_densities_batch`] and accumulated with the deterministic
    /// chunked reduction (bit-identical for every thread count).
    pub fn mean_log_likelihood(&self, data: &Matrix) -> f64 {
        if data.rows() == 0 {
            return 0.0;
        }
        let logs = self.log_densities_batch(data);
        let chunk_len = p3gm_parallel::default_chunk_len(data.rows());
        let total = p3gm_parallel::par_map_reduce(
            data.rows(),
            chunk_len,
            |range| range.map(|i| vector::log_sum_exp(logs.row(i))).sum::<f64>(),
            |a, b| a + b,
        )
        .unwrap_or(0.0);
        total / data.rows() as f64
    }

    /// Log of the **weighted** component densities for a whole batch: entry
    /// `(i, k)` of the returned `n x k` matrix is
    /// `ln(w_k · N(data.row(i); μ_k, Σ_k))`.
    ///
    /// This is the batched E-step kernel. Instead of one triangular solve
    /// per (row, component), the Mahalanobis terms come from a single
    /// `data · stacked_whitenᵀ` product against the cached stacked `L_k⁻¹`
    /// factors — `‖L_k⁻¹ x − L_k⁻¹ μ_k‖²` with the whitened means also
    /// cached — followed by one branch-free lane-folded pass per row. Both
    /// stages parallelize over row chunks with fixed reduction order, so
    /// the result is bit-identical for every thread count.
    pub fn log_densities_batch(&self, data: &Matrix) -> Matrix {
        let k = self.n_components();
        let d = self.dim();
        let whitened = data
            .matmul_transposed(&self.stacked_whiten)
            .expect("dimension checked at construction");
        let mut out = Matrix::zeros(data.rows(), k);
        let rows_per_chunk = p3gm_parallel::default_chunk_len(data.rows());
        p3gm_parallel::par_chunks_mut(
            out.as_mut_slice(),
            rows_per_chunk * k,
            |chunk_index, out_chunk| {
                let base = chunk_index * rows_per_chunk;
                for (local, out_row) in out_chunk.chunks_mut(k).enumerate() {
                    let w_row = whitened.row(base + local);
                    for (c, o) in out_row.iter_mut().enumerate() {
                        let maha = vector::squared_distance_lanes(
                            &w_row[c * d..(c + 1) * d],
                            self.whitened_means.row(c),
                        );
                        *o = self.log_weights[c] + self.log_norm_consts[c] - 0.5 * maha;
                    }
                }
            },
        );
        out
    }

    /// Posterior responsibilities `p(component | x)`.
    pub fn responsibilities(&self, x: &[f64]) -> Vec<f64> {
        let logs: Vec<f64> = (0..self.n_components())
            .map(|k| self.weights[k].max(1e-300).ln() + self.component_log_density(k, x))
            .collect();
        vector::softmax(&logs)
    }

    /// Posterior responsibilities for a whole batch: row `i` of the
    /// returned `n x k` matrix is `p(component | data.row(i))`.
    ///
    /// This is the (DP-)EM E-step kernel: the `n x k` weighted log
    /// densities come from the batched [`Gmm::log_densities_batch`] matrix
    /// kernel, then each row is exp-normalized in place (the same
    /// `log_sum_exp` fold as [`vector::softmax`], with no per-row
    /// allocations). Rows are processed independently on parallel row
    /// chunks, so the result is bit-identical for every thread count.
    pub fn responsibilities_batch(&self, data: &Matrix) -> Matrix {
        let k = self.n_components();
        let mut resp = self.log_densities_batch(data);
        let rows_per_chunk = p3gm_parallel::default_chunk_len(data.rows());
        p3gm_parallel::par_chunks_mut(resp.as_mut_slice(), rows_per_chunk * k, |_, resp_chunk| {
            for resp_row in resp_chunk.chunks_mut(k) {
                let lse = vector::log_sum_exp(resp_row);
                for v in resp_row.iter_mut() {
                    *v = (*v - lse).exp();
                }
            }
        });
        resp
    }

    /// Draws one sample from the mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let k = sampling::categorical(rng, &self.weights);
        sampling::multivariate_normal(rng, self.means.row(k), &self.factors[k])
    }

    /// Draws one sample from a specific component.
    pub fn sample_component<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<f64> {
        sampling::multivariate_normal(rng, self.means.row(k), &self.factors[k])
    }

    /// Draws `n` samples from the mixture as rows of a matrix.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Matrix {
        let mut out = Matrix::zeros(n, self.dim());
        for i in 0..n {
            out.row_mut(i).copy_from_slice(&self.sample(rng));
        }
        out
    }

    /// KL divergence `KL( N(mu, diag(exp(logvar))) || component k )` with
    /// gradients with respect to `mu` and `logvar`.
    ///
    /// For a diagonal Gaussian `q` and a full-covariance component
    /// `N(m_k, Σ_k)`:
    ///
    /// ```text
    /// KL = ½ [ tr(Σ_k⁻¹ diag(v)) + (m_k − µ)ᵀ Σ_k⁻¹ (m_k − µ) − d
    ///          + log det Σ_k − Σ_i log v_i ]
    /// ∂KL/∂µ      = Σ_k⁻¹ (µ − m_k)
    /// ∂KL/∂logvar_i = ½ ( (Σ_k⁻¹)_{ii} v_i − 1 )
    /// ```
    pub fn kl_diag_to_component(
        &self,
        k: usize,
        mu: &[f64],
        logvar: &[f64],
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let d = self.dim();
        debug_assert_eq!(mu.len(), d);
        debug_assert_eq!(logvar.len(), d);
        let inv = &self.inverses[k];
        let var: Vec<f64> = logvar.iter().map(|l| l.exp()).collect();

        let mut trace = 0.0;
        for (i, &v) in var.iter().enumerate() {
            trace += inv.get(i, i) * v;
        }
        let diff = vector::sub(mu, self.means.row(k));
        let inv_diff = inv.matvec(&diff).expect("dimension checked");
        let maha = vector::dot(&diff, &inv_diff);
        let sum_logvar: f64 = logvar.iter().sum();
        let value = 0.5 * (trace + maha - d as f64 + self.log_dets[k] - sum_logvar);

        let grad_mu = inv_diff;
        let grad_logvar: Vec<f64> = (0..d)
            .map(|i| 0.5 * (inv.get(i, i) * var[i] - 1.0))
            .collect();
        (value, grad_mu, grad_logvar)
    }

    /// Serializes the mixture into a framed `p3gm-store` buffer (weights,
    /// mean matrix, covariance matrices; bit-exact round trip).
    ///
    /// The Cholesky factors, inverses and log-determinants are *not*
    /// persisted: [`Gmm::from_bytes`] rebuilds them deterministically from
    /// the covariance bits, so the reconstructed caches match the originals
    /// exactly and sampling from the reloaded mixture is bit-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::GMM);
        enc.f64_slice(&self.weights);
        enc.nested(&self.means.to_bytes());
        enc.usize(self.covariances.len());
        for cov in &self.covariances {
            enc.nested(&cov.to_bytes());
        }
        enc.finish()
    }

    /// Deserializes a mixture from a buffer produced by [`Gmm::to_bytes`].
    ///
    /// The stored weights are kept bit-for-bit (they were normalized at
    /// construction time; re-normalizing here could flip their last bits
    /// and break sample-stream reproducibility), but are still validated:
    /// they must be finite, non-negative and sum to 1 within `1e-6`.
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Gmm> {
        use p3gm_store::StoreError;
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::GMM)?;
        let weights = dec.f64_vec()?;
        let means = Matrix::from_bytes(dec.nested()?)?;
        let n_covs = dec.usize()?;
        // Each nested covariance occupies at least its 8-byte length prefix
        // plus the minimal frame; bounding the claimed count by the bytes
        // actually present keeps a crafted buffer from triggering a huge
        // up-front allocation.
        let min_nested = 8 + p3gm_store::HEADER_LEN + p3gm_store::CHECKSUM_LEN;
        if n_covs > dec.remaining() / min_nested {
            return Err(StoreError::Truncated {
                needed: n_covs.saturating_mul(min_nested),
                available: dec.remaining(),
            });
        }
        let mut covariances = Vec::with_capacity(n_covs);
        for _ in 0..n_covs {
            covariances.push(Matrix::from_bytes(dec.nested()?)?);
        }
        dec.finish()?;

        let k = weights.len();
        let d = means.cols();
        if k == 0 || means.rows() != k || covariances.len() != k || d == 0 {
            return Err(StoreError::Invalid {
                msg: format!(
                    "mixture shape mismatch: {k} weights, {} means, {} covariances",
                    means.rows(),
                    covariances.len()
                ),
            });
        }
        if covariances.iter().any(|c| c.shape() != (d, d)) {
            return Err(StoreError::Invalid {
                msg: "inconsistent component dimensions".to_string(),
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(StoreError::Invalid {
                msg: "weights must be finite and non-negative".to_string(),
            });
        }
        if means.as_slice().iter().any(|v| !v.is_finite())
            || covariances
                .iter()
                .any(|c| c.as_slice().iter().any(|v| !v.is_finite()))
        {
            return Err(StoreError::Invalid {
                msg: "means and covariances must be finite".to_string(),
            });
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(StoreError::Invalid {
                msg: format!("weights sum to {total}, expected 1"),
            });
        }
        let caches = build_caches(&weights, &means, &covariances)
            .map_err(|e| StoreError::Invalid { msg: e.to_string() })?;
        Ok(Gmm::from_parts(weights, means, covariances, caches))
    }

    /// Variational (Hershey–Olsen) approximation of
    /// `KL( N(mu, diag(exp(logvar))) || mixture )`, with gradients.
    ///
    /// For a single-Gaussian `q` the approximation reduces to
    /// `−log Σ_k π_k exp(−KL(q || component_k))`; the gradient is the
    /// softmin-weighted combination of the per-component gradients.
    pub fn kl_diag_to_mixture(&self, mu: &[f64], logvar: &[f64]) -> (f64, Vec<f64>, Vec<f64>) {
        let k = self.n_components();
        let d = self.dim();
        let mut kls = Vec::with_capacity(k);
        let mut grads_mu = Vec::with_capacity(k);
        let mut grads_logvar = Vec::with_capacity(k);
        for j in 0..k {
            let (v, gm, gl) = self.kl_diag_to_component(j, mu, logvar);
            kls.push(v);
            grads_mu.push(gm);
            grads_logvar.push(gl);
        }
        // log Σ_k π_k exp(−KL_k), computed stably.
        let logs: Vec<f64> = (0..k)
            .map(|j| self.weights[j].max(1e-300).ln() - kls[j])
            .collect();
        let lse = vector::log_sum_exp(&logs);
        let value = -lse;
        // Softmin weights w_j = π_j exp(−KL_j) / Σ …
        let w: Vec<f64> = logs.iter().map(|&l| (l - lse).exp()).collect();
        let mut grad_mu = vec![0.0; d];
        let mut grad_logvar = vec![0.0; d];
        for j in 0..k {
            vector::axpy(w[j], &grads_mu[j], &mut grad_mu);
            vector::axpy(w[j], &grads_logvar[j], &mut grad_logvar);
        }
        (value, grad_mu, grad_logvar)
    }
}

/// Everything a [`Gmm`] caches besides its defining parameters.
struct GmmCaches {
    factors: Vec<Cholesky>,
    inverses: Vec<Matrix>,
    log_dets: Vec<f64>,
    stacked_whiten: Matrix,
    whitened_means: Matrix,
    log_weights: Vec<f64>,
    log_norm_consts: Vec<f64>,
}

/// Builds the per-component caches: Cholesky factors, inverses,
/// log-determinants, and the batched-E-step operators (stacked `L_k⁻¹`
/// whitening matrix, whitened means `L_k⁻¹ μ_k`, log weights, Gaussian
/// normalization constants). Deterministic: identical parameter bits always
/// yield identical caches (which is what makes persisted mixtures sample —
/// and batch-evaluate — bit-identically after a reload).
fn build_caches(weights: &[f64], means: &Matrix, covariances: &[Matrix]) -> Result<GmmCaches> {
    let k = covariances.len();
    let d = means.cols();
    let mut factors = Vec::with_capacity(k);
    let mut inverses = Vec::with_capacity(k);
    let mut log_dets = Vec::with_capacity(k);
    let mut stacked_whiten = Matrix::zeros(k * d, d);
    let mut whitened_means = Matrix::zeros(k, d);
    for (c, cov) in covariances.iter().enumerate() {
        let chol =
            Cholesky::new_with_jitter(cov, 1e-6, 12).map_err(|e| MixtureError::Numerical {
                msg: format!("covariance not positive definite: {e}"),
            })?;
        let inv = chol.inverse().map_err(|e| MixtureError::Numerical {
            msg: format!("covariance inversion failed: {e}"),
        })?;
        let whiten = chol.inverse_lower();
        for r in 0..d {
            stacked_whiten
                .row_mut(c * d + r)
                .copy_from_slice(whiten.row(r));
        }
        whitened_means.row_mut(c).copy_from_slice(
            &whiten
                .matvec(means.row(c))
                .expect("dimensions checked at construction"),
        );
        log_dets.push(chol.log_determinant());
        inverses.push(inv);
        factors.push(chol);
    }
    let log_weights = weights.iter().map(|w| w.max(1e-300).ln()).collect();
    let half_d_ln_2pi = 0.5 * d as f64 * (2.0 * std::f64::consts::PI).ln();
    let log_norm_consts = log_dets
        .iter()
        .map(|ld| -(half_d_ln_2pi + 0.5 * ld))
        .collect();
    Ok(GmmCaches {
        factors,
        inverses,
        log_dets,
        stacked_whiten,
        whitened_means,
        log_weights,
        log_norm_consts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13)
    }

    fn means_of(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    fn two_component_gmm() -> Gmm {
        Gmm::new(
            vec![0.3, 0.7],
            means_of(&[vec![-2.0, 0.0], vec![2.0, 1.0]]),
            vec![
                Matrix::from_rows(&[vec![1.0, 0.2], vec![0.2, 0.5]]).unwrap(),
                Matrix::from_rows(&[vec![0.5, 0.0], vec![0.0, 1.5]]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Gmm::new(vec![], Matrix::zeros(0, 0), vec![]).is_err());
        assert!(Gmm::new(vec![1.0], means_of(&[vec![0.0]]), vec![]).is_err());
        assert!(Gmm::new(
            vec![1.0],
            means_of(&[vec![0.0, 0.0]]),
            vec![Matrix::identity(3)]
        )
        .is_err());
        assert!(Gmm::new(vec![0.0], means_of(&[vec![0.0]]), vec![Matrix::identity(1)]).is_err());
        assert!(Gmm::isotropic(vec![1.0], means_of(&[vec![0.0]]), 0.0).is_err());
    }

    #[test]
    fn weights_are_normalized() {
        let gmm = Gmm::isotropic(vec![2.0, 6.0], means_of(&[vec![0.0], vec![1.0]]), 1.0).unwrap();
        assert!((gmm.weights()[0] - 0.25).abs() < 1e-12);
        assert!((gmm.weights()[1] - 0.75).abs() < 1e-12);
        assert_eq!(gmm.n_components(), 2);
        assert_eq!(gmm.dim(), 1);
    }

    #[test]
    fn single_gaussian_density_matches_closed_form() {
        let gmm = Gmm::isotropic(vec![1.0], means_of(&[vec![0.0, 0.0]]), 1.0).unwrap();
        // Standard normal at origin: log p = -log(2π).
        let expected = -(2.0 * std::f64::consts::PI).ln();
        assert!((gmm.log_density(&[0.0, 0.0]) - expected).abs() < 1e-10);
        // At (1, 0): subtract 1/2.
        assert!((gmm.log_density(&[1.0, 0.0]) - (expected - 0.5)).abs() < 1e-10);
    }

    #[test]
    fn responsibilities_sum_to_one_and_favor_nearest() {
        let gmm = two_component_gmm();
        let r = gmm.responsibilities(&[2.0, 1.0]);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(r[1] > 0.9);
        let r = gmm.responsibilities(&[-2.0, 0.0]);
        assert!(r[0] > 0.9);
    }

    #[test]
    fn sampling_recovers_component_means() {
        let mut r = rng();
        let gmm = two_component_gmm();
        let samples = gmm.sample_n(&mut r, 8000);
        // Split by nearest mean and check the empirical means/mixing weight.
        let mut count1 = 0usize;
        let mut sum0 = vec![0.0; 2];
        let mut sum1 = vec![0.0; 2];
        for row in samples.row_iter() {
            if vector::distance(row, &[2.0, 1.0]) < vector::distance(row, &[-2.0, 0.0]) {
                count1 += 1;
                vector::axpy(1.0, row, &mut sum1);
            } else {
                vector::axpy(1.0, row, &mut sum0);
            }
        }
        let frac1 = count1 as f64 / 8000.0;
        assert!((frac1 - 0.7).abs() < 0.05, "weight {frac1}");
        assert!((sum1[0] / count1 as f64 - 2.0).abs() < 0.1);
        assert!((sum0[0] / (8000 - count1) as f64 + 2.0).abs() < 0.1);
    }

    #[test]
    fn mean_log_likelihood_prefers_generating_model() {
        let mut r = rng();
        let gmm = two_component_gmm();
        let data = gmm.sample_n(&mut r, 500);
        let wrong = Gmm::isotropic(vec![1.0], means_of(&[vec![10.0, 10.0]]), 1.0).unwrap();
        assert!(gmm.mean_log_likelihood(&data) > wrong.mean_log_likelihood(&data));
        assert_eq!(wrong.mean_log_likelihood(&Matrix::zeros(0, 2)), 0.0);
    }

    #[test]
    fn kl_to_component_zero_when_equal() {
        // Component 0: isotropic unit variance at origin; q identical.
        let gmm = Gmm::isotropic(vec![1.0], means_of(&[vec![0.0, 0.0]]), 1.0).unwrap();
        let (v, gm, gl) = gmm.kl_diag_to_component(0, &[0.0, 0.0], &[0.0, 0.0]);
        assert!(v.abs() < 1e-10);
        assert!(gm.iter().all(|g| g.abs() < 1e-10));
        assert!(gl.iter().all(|g| g.abs() < 1e-10));
    }

    #[test]
    fn kl_to_component_matches_diagonal_formula() {
        // Against the diagonal-vs-diagonal closed form in p3gm-nn::loss.
        let gmm = Gmm::new(
            vec![1.0],
            means_of(&[vec![1.0, -0.5]]),
            vec![Matrix::from_diagonal(&[2.0, 0.7])],
        )
        .unwrap();
        let mu = [0.3, 0.4];
        let logvar = [0.1, -0.3];
        let (v, gm, gl) = gmm.kl_diag_to_component(0, &mu, &logvar);
        let (v2, gm2, gl2) =
            p3gm_nn::loss::kl_diag_gaussians(&mu, &logvar, &[1.0, -0.5], &[2.0, 0.7]);
        assert!((v - v2).abs() < 1e-9);
        for i in 0..2 {
            assert!((gm[i] - gm2[i]).abs() < 1e-9);
            assert!((gl[i] - gl2[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn kl_to_component_gradients_match_finite_differences() {
        let gmm = two_component_gmm();
        let mu = [0.5, -0.2];
        let logvar = [-0.4, 0.3];
        let (_, gm, gl) = gmm.kl_diag_to_component(1, &mu, &logvar);
        let h = 1e-6;
        for i in 0..2 {
            let mut mp = mu;
            mp[i] += h;
            let mut mm = mu;
            mm[i] -= h;
            let numeric = (gmm.kl_diag_to_component(1, &mp, &logvar).0
                - gmm.kl_diag_to_component(1, &mm, &logvar).0)
                / (2.0 * h);
            assert!((gm[i] - numeric).abs() < 1e-5, "mu[{i}]");
            let mut lp = logvar;
            lp[i] += h;
            let mut lm = logvar;
            lm[i] -= h;
            let numeric = (gmm.kl_diag_to_component(1, &mu, &lp).0
                - gmm.kl_diag_to_component(1, &mu, &lm).0)
                / (2.0 * h);
            assert!((gl[i] - numeric).abs() < 1e-5, "logvar[{i}]");
        }
    }

    #[test]
    fn kl_to_mixture_reduces_to_single_component() {
        let gmm = Gmm::isotropic(vec![1.0], means_of(&[vec![1.0, 2.0]]), 0.5).unwrap();
        let mu = [0.2, 0.9];
        let logvar = [-0.1, 0.4];
        let (single, gm_s, gl_s) = gmm.kl_diag_to_component(0, &mu, &logvar);
        let (mix, gm_m, gl_m) = gmm.kl_diag_to_mixture(&mu, &logvar);
        assert!((single - mix).abs() < 1e-10);
        for i in 0..2 {
            assert!((gm_s[i] - gm_m[i]).abs() < 1e-10);
            assert!((gl_s[i] - gl_m[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn kl_to_mixture_gradients_match_finite_differences() {
        let gmm = two_component_gmm();
        let mu = [0.5, -0.2];
        let logvar = [-0.4, 0.3];
        let (_, gm, gl) = gmm.kl_diag_to_mixture(&mu, &logvar);
        let h = 1e-6;
        for i in 0..2 {
            let mut mp = mu;
            mp[i] += h;
            let mut mm = mu;
            mm[i] -= h;
            let numeric = (gmm.kl_diag_to_mixture(&mp, &logvar).0
                - gmm.kl_diag_to_mixture(&mm, &logvar).0)
                / (2.0 * h);
            assert!((gm[i] - numeric).abs() < 1e-5, "mu[{i}]");
            let mut lp = logvar;
            lp[i] += h;
            let mut lm = logvar;
            lm[i] -= h;
            let numeric = (gmm.kl_diag_to_mixture(&mu, &lp).0 - gmm.kl_diag_to_mixture(&mu, &lm).0)
                / (2.0 * h);
            assert!((gl[i] - numeric).abs() < 1e-5, "logvar[{i}]");
        }
    }

    #[test]
    fn kl_to_mixture_smaller_near_a_component() {
        let gmm = two_component_gmm();
        let (near, _, _) = gmm.kl_diag_to_mixture(&[2.0, 1.0], &[-1.0, -1.0]);
        let (far, _, _) = gmm.kl_diag_to_mixture(&[10.0, 10.0], &[-1.0, -1.0]);
        assert!(near < far);
    }

    #[test]
    fn byte_round_trip_samples_bit_identically() {
        let gmm = two_component_gmm();
        let back = Gmm::from_bytes(&gmm.to_bytes()).unwrap();
        assert_eq!(back.weights(), gmm.weights());
        assert_eq!(back.means().as_slice(), gmm.means().as_slice());
        for (a, b) in back.covariances().iter().zip(gmm.covariances().iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // The rebuilt caches reproduce the exact sample stream.
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..50 {
            assert_eq!(gmm.sample(&mut r1), back.sample(&mut r2));
        }
        // And densities match bitwise too.
        assert_eq!(
            gmm.log_density(&[0.3, -0.4]).to_bits(),
            back.log_density(&[0.3, -0.4]).to_bits()
        );
    }

    #[test]
    fn from_bytes_rejects_malformed_buffers() {
        let gmm = two_component_gmm();
        let bytes = gmm.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Gmm::from_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        let mut corrupted = bytes.clone();
        corrupted[bytes.len() / 3] ^= 0x20;
        assert!(Gmm::from_bytes(&corrupted).is_err());
        // Unnormalized weights are rejected even inside a valid frame.
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::GMM);
        enc.f64_slice(&[2.0, 6.0]);
        enc.nested(&gmm.means().to_bytes());
        enc.usize(2);
        for cov in gmm.covariances() {
            enc.nested(&cov.to_bytes());
        }
        assert!(matches!(
            Gmm::from_bytes(&enc.finish()),
            Err(p3gm_store::StoreError::Invalid { .. })
        ));
        // Non-finite means are rejected: they would make every sample NaN.
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::GMM);
        enc.f64_slice(gmm.weights());
        enc.nested(&Matrix::filled(2, 2, f64::NAN).to_bytes());
        enc.usize(2);
        for cov in gmm.covariances() {
            enc.nested(&cov.to_bytes());
        }
        assert!(matches!(
            Gmm::from_bytes(&enc.finish()),
            Err(p3gm_store::StoreError::Invalid { .. })
        ));
    }

    #[test]
    fn indefinite_covariance_is_repaired() {
        // A covariance that is slightly indefinite (as DP-EM noise can
        // produce) should be accepted thanks to the jittered factorization.
        let cov = Matrix::from_rows(&[vec![1.0, 1.0005], vec![1.0005, 1.0]]).unwrap();
        let gmm = Gmm::new(vec![1.0], means_of(&[vec![0.0, 0.0]]), vec![cov]);
        assert!(gmm.is_ok());
    }
}
