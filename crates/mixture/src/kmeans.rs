//! k-means clustering: Lloyd's algorithm with k-means++ seeding, plus a
//! differentially private variant (noisy counts and sums) used by the DP-GM
//! baseline's partitioning step.

use crate::{MixtureError, Result};
use p3gm_linalg::{vector, Matrix};
use p3gm_privacy::sampling;
use rand::Rng;

/// Configuration of a k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when no centroid moves more than this (L2).
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 50,
            tolerance: 1e-6,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids as a `k x d` matrix, one centroid per row.
    pub centroids: Matrix,
    /// Assignment of every input row to a cluster index.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Runs (non-private) k-means with k-means++ initialization.
pub fn kmeans<R: Rng + ?Sized>(
    rng: &mut R,
    data: &Matrix,
    config: &KMeansConfig,
) -> Result<KMeansResult> {
    validate(data, config)?;
    let mut centroids = kmeans_plus_plus_init(rng, data, config.k);
    let mut assignments = vec![0usize; data.rows()];
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        assign(data, &centroids, &mut assignments);
        let (sums, counts) = cluster_sums(data, &assignments, config.k);
        let mut max_shift: f64 = 0.0;
        for (c, &count) in counts.iter().enumerate() {
            if count == 0.0 {
                continue; // keep the old centroid for empty clusters
            }
            let new: Vec<f64> = sums.row(c).iter().map(|s| s / count).collect();
            let centroid = centroids.row_mut(c);
            max_shift = max_shift.max(vector::distance(centroid, &new));
            centroid.copy_from_slice(&new);
        }
        if max_shift < config.tolerance {
            break;
        }
    }
    assign(data, &centroids, &mut assignments);
    let inertia = compute_inertia(data, &centroids, &assignments);
    Ok(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// Runs differentially private k-means.
///
/// Each Lloyd iteration releases, per cluster, a noisy count (Laplace,
/// sensitivity 1) and a noisy coordinate sum (Laplace, sensitivity `radius`
/// per coordinate under the assumption that rows are clipped to
/// `‖x‖_∞ ≤ radius`).  With `iters` iterations the whole run satisfies
/// ε-DP where each iteration gets `epsilon / iters`, split evenly between
/// counts and sums.  This is the standard DPLloyd construction used by the
/// DP-GM baseline's partitioning step.
pub fn dp_kmeans<R: Rng + ?Sized>(
    rng: &mut R,
    data: &Matrix,
    config: &KMeansConfig,
    epsilon: f64,
    radius: f64,
) -> Result<KMeansResult> {
    validate(data, config)?;
    if epsilon <= 0.0 || radius <= 0.0 {
        return Err(MixtureError::InvalidParameter {
            msg: format!("dp_kmeans requires positive epsilon and radius, got {epsilon}, {radius}"),
        });
    }
    let iters = config.max_iters.max(1);
    let eps_per_iter = epsilon / iters as f64;
    let eps_counts = eps_per_iter / 2.0;
    let eps_sums = eps_per_iter / 2.0;
    let d = data.cols();

    // Initialize centroids privately: random points in the data bounding box
    // would be data-dependent, so use random points in [-radius, radius]^d
    // (data independent, costs no budget).
    let mut centroids = Matrix::from_fn(config.k, d, |_, _| rng.gen_range(-radius..radius));
    let mut assignments = vec![0usize; data.rows()];

    for _ in 0..iters {
        assign(data, &centroids, &mut assignments);
        let (sums, counts) = cluster_sums(data, &assignments, config.k);
        for (c, &count) in counts.iter().enumerate() {
            // Noisy count: sensitivity 1.
            let noisy_count = (count + sampling::laplace(rng, 1.0 / eps_counts)).max(1.0);
            // Noisy sums: L1 sensitivity of the per-coordinate sum is radius.
            for (dst, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c).iter()) {
                let noisy = s + sampling::laplace(rng, d as f64 * radius / eps_sums);
                *dst = (noisy / noisy_count).clamp(-radius, radius);
            }
        }
    }
    assign(data, &centroids, &mut assignments);
    let inertia = compute_inertia(data, &centroids, &assignments);
    Ok(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations: iters,
    })
}

fn validate(data: &Matrix, config: &KMeansConfig) -> Result<()> {
    if config.k == 0 {
        return Err(MixtureError::InvalidParameter {
            msg: "k must be positive".to_string(),
        });
    }
    if data.rows() == 0 || data.cols() == 0 {
        return Err(MixtureError::InvalidData {
            msg: "empty data".to_string(),
        });
    }
    if data.rows() < config.k {
        return Err(MixtureError::InvalidData {
            msg: format!("{} rows cannot form {} clusters", data.rows(), config.k),
        });
    }
    Ok(())
}

/// k-means++ seeding: the first centroid is uniform, each subsequent one is
/// drawn with probability proportional to the squared distance to the
/// nearest already-chosen centroid. Returns a `k x d` centroid matrix.
fn kmeans_plus_plus_init<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, k: usize) -> Matrix {
    let n = data.rows();
    let d = data.cols();
    let first = rng.gen_range(0..n);
    let mut centroids = Matrix::zeros(k, d);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut chosen = 1;
    let mut dist2: Vec<f64> = data
        .row_iter()
        .map(|row| vector::squared_distance(row, centroids.row(0)))
        .collect();
    while chosen < k {
        let idx = sampling::categorical(rng, &dist2);
        centroids.row_mut(chosen).copy_from_slice(data.row(idx));
        let newest = centroids.row(chosen).to_vec();
        chosen += 1;
        for (d2, row) in dist2.iter_mut().zip(data.row_iter()) {
            let nd = vector::squared_distance(row, &newest);
            if nd < *d2 {
                *d2 = nd;
            }
        }
    }
    centroids
}

/// Nearest-centroid assignment, parallelized over row chunks of the
/// assignment buffer (each row is independent, so the result is
/// bit-identical for every thread count).
fn assign(data: &Matrix, centroids: &Matrix, assignments: &mut [usize]) {
    let rows_per_chunk = p3gm_parallel::default_chunk_len(assignments.len());
    p3gm_parallel::par_chunks_mut(assignments, rows_per_chunk, |chunk_index, chunk| {
        let base = chunk_index * rows_per_chunk;
        for (local, a) in chunk.iter_mut().enumerate() {
            let row = data.row(base + local);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.row_iter().enumerate() {
                let d = vector::squared_distance(row, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *a = best;
        }
    });
}

/// Per-cluster coordinate sums (`k x d`) and member counts, accumulated
/// over parallel row chunks with a deterministic in-order fold.
fn cluster_sums(data: &Matrix, assignments: &[usize], k: usize) -> (Matrix, Vec<f64>) {
    let d = data.cols();
    p3gm_parallel::par_map_reduce(
        data.rows(),
        p3gm_parallel::default_chunk_len(data.rows()),
        |range| {
            let mut sums = Matrix::zeros(k, d);
            let mut counts = vec![0.0; k];
            for i in range {
                let a = assignments[i];
                vector::axpy(1.0, data.row(i), sums.row_mut(a));
                counts[a] += 1.0;
            }
            (sums, counts)
        },
        |(mut sums_a, mut counts_a), (sums_b, counts_b)| {
            sums_a.axpy(1.0, &sums_b).expect("partial shapes match");
            for (a, &b) in counts_a.iter_mut().zip(counts_b.iter()) {
                *a += b;
            }
            (sums_a, counts_a)
        },
    )
    .unwrap_or_else(|| (Matrix::zeros(k, d), vec![0.0; k]))
}

fn compute_inertia(data: &Matrix, centroids: &Matrix, assignments: &[usize]) -> f64 {
    p3gm_parallel::par_map_reduce(
        data.rows(),
        p3gm_parallel::default_chunk_len(data.rows()),
        |range| {
            range
                .map(|i| vector::squared_distance(data.row(i), centroids.row(assignments[i])))
                .sum::<f64>()
        },
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    /// Three well-separated blobs in 2-D.
    fn blobs(rng: &mut StdRng, per_cluster: usize) -> (Matrix, Vec<Vec<f64>>) {
        let centers = vec![vec![-5.0, 0.0], vec![5.0, 0.0], vec![0.0, 8.0]];
        let mut rows = Vec::new();
        for c in &centers {
            for _ in 0..per_cluster {
                rows.push(vec![
                    c[0] + sampling::normal(rng, 0.0, 0.3),
                    c[1] + sampling::normal(rng, 0.0, 0.3),
                ]);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), centers)
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let mut r = rng();
        let (data, centers) = blobs(&mut r, 60);
        let res = kmeans(
            &mut r,
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // Every true center has a recovered centroid within 0.5.
        for c in &centers {
            let nearest = res
                .centroids
                .row_iter()
                .map(|f| vector::distance(f, c))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.5, "center {c:?} not recovered ({nearest})");
        }
        // Inertia is small relative to the cluster spread.
        assert!(res.inertia / (data.rows() as f64) < 0.5);
        assert!(res.iterations >= 1);
        assert_eq!(res.assignments.len(), data.rows());
    }

    #[test]
    fn single_cluster_is_the_mean() {
        let mut r = rng();
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 2.0], vec![4.0, 4.0]]).unwrap();
        let res = kmeans(
            &mut r,
            &data,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((res.centroids.get(0, 0) - 2.0).abs() < 1e-9);
        assert!((res.centroids.get(0, 1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        let mut r = rng();
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(kmeans(
            &mut r,
            &data,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(
            &mut r,
            &data,
            &KMeansConfig {
                k: 5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(&mut r, &Matrix::zeros(0, 2), &KMeansConfig::default()).is_err());
        assert!(dp_kmeans(
            &mut r,
            &data,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            0.0,
            1.0
        )
        .is_err());
        assert!(dp_kmeans(
            &mut r,
            &data,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            1.0,
            0.0
        )
        .is_err());
    }

    #[test]
    fn dp_kmeans_with_large_budget_close_to_nonprivate() {
        let mut r = rng();
        let (data, centers) = blobs(&mut r, 80);
        // Scale data into [-1, 1]-ish radius 10 box (already is).
        let res = dp_kmeans(
            &mut r,
            &data,
            &KMeansConfig {
                k: 3,
                max_iters: 8,
                tolerance: 1e-6,
            },
            1000.0, // effectively non-private
            10.0,
        )
        .unwrap();
        for c in &centers {
            let nearest = res
                .centroids
                .row_iter()
                .map(|f| vector::distance(f, c))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1.0, "center {c:?} not recovered ({nearest})");
        }
    }

    #[test]
    fn dp_kmeans_noise_degrades_with_small_budget() {
        let mut r = rng();
        let (data, _) = blobs(&mut r, 80);
        let cfg = KMeansConfig {
            k: 3,
            max_iters: 5,
            tolerance: 1e-6,
        };
        let tight = dp_kmeans(&mut r, &data, &cfg, 0.05, 10.0).unwrap();
        let loose = dp_kmeans(&mut r, &data, &cfg, 1000.0, 10.0).unwrap();
        assert!(
            tight.inertia > loose.inertia,
            "tight {} vs loose {}",
            tight.inertia,
            loose.inertia
        );
        // Centroids stay inside the clipping box.
        for c in tight.centroids.row_iter() {
            assert!(c.iter().all(|&x| x.abs() <= 10.0 + 1e-9));
        }
    }

    #[test]
    fn kmeans_plus_plus_produces_distinct_centroids_on_separated_data() {
        let mut r = rng();
        let (data, _) = blobs(&mut r, 30);
        let centroids = kmeans_plus_plus_init(&mut r, &data, 3);
        assert_eq!(centroids.shape(), (3, 2));
        // With well separated blobs, k-means++ should pick three points that
        // are far apart with overwhelming probability.
        let d01 = vector::distance(centroids.row(0), centroids.row(1));
        let d02 = vector::distance(centroids.row(0), centroids.row(2));
        let d12 = vector::distance(centroids.row(1), centroids.row(2));
        assert!(d01 > 1.0 && d02 > 1.0 && d12 > 1.0, "{d01} {d02} {d12}");
    }

    #[test]
    fn assignment_and_sums_bit_identical_across_thread_counts() {
        let mut r = rng();
        let (data, _) = blobs(&mut r, 50);
        let centroids = kmeans_plus_plus_init(&mut r, &data, 3);
        let reference = p3gm_parallel::with_threads(1, || {
            let mut assignments = vec![0usize; data.rows()];
            assign(&data, &centroids, &mut assignments);
            let sums = cluster_sums(&data, &assignments, 3);
            (assignments, sums)
        });
        for threads in [2, 4] {
            let (assignments, (sums, counts)) = p3gm_parallel::with_threads(threads, || {
                let mut assignments = vec![0usize; data.rows()];
                assign(&data, &centroids, &mut assignments);
                let sums = cluster_sums(&data, &assignments, 3);
                (assignments, sums)
            });
            assert_eq!(assignments, reference.0);
            assert_eq!(sums.as_slice(), reference.1 .0.as_slice());
            assert_eq!(counts, reference.1 .1);
        }
    }
}
