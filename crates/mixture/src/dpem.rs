//! DP-EM: differentially private expectation-maximization for a mixture of
//! Gaussians (Park et al., used by P3GM's Encoding Phase, paper §II-D).
//!
//! Each M-step releases `2K + 1` quantities — the weight vector, the `K`
//! means and the `K` covariance matrices — through the Gaussian mechanism.
//! Following the paper, the per-release sensitivity is bounded by clipping
//! every data row to the unit L2 ball, which makes each normalized statistic
//! change by at most `≈ 2/N` when one record changes; the noise added to a
//! statistic is `N(0, (σ_e · Δ)²)` where `σ_e` is the *noise multiplier*
//! that enters the moments bound of paper Eq. (3) and `Δ` the sensitivity.
//!
//! The privacy cost of a run with `T_e` iterations is accounted by
//! `p3gm_privacy::RdpAccountant::add_dp_em(T_e, σ_e, K)`.

use crate::em::{
    initial_parameters, validate, weighted_mean_sums, weighted_scatter_sums, EmConfig,
};
use crate::gmm::Gmm;
use crate::kmeans::{kmeans, KMeansConfig};
use crate::{MixtureError, Result};
use p3gm_linalg::{vector, Matrix};
use p3gm_privacy::sampling;
use rand::Rng;

/// Configuration of a DP-EM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpEmConfig {
    /// Number of mixture components `K`.
    pub n_components: usize,
    /// Number of (noisy) EM iterations `T_e`. Every iteration consumes
    /// privacy budget, so this is fixed in advance rather than driven by a
    /// convergence test.
    pub iterations: usize,
    /// Noise multiplier `σ_e` of paper Eq. (3).
    pub sigma_e: f64,
    /// Diagonal regularization added to every covariance update.
    pub covariance_regularization: f64,
    /// Rows are clipped to this L2 norm before fitting (the sensitivity
    /// bound assumes it). The paper clips to 1.
    pub clip_norm: f64,
}

impl Default for DpEmConfig {
    fn default() -> Self {
        DpEmConfig {
            n_components: 3,
            iterations: 20,
            sigma_e: 100.0,
            covariance_regularization: 1e-4,
            clip_norm: 1.0,
        }
    }
}

/// Result of a DP-EM run.
#[derive(Debug, Clone)]
pub struct DpEmResult {
    /// The fitted (privatized) mixture model.
    pub model: Gmm,
    /// Mean log-likelihood of the clipped data after each iteration
    /// (computed for diagnostics; itself a post-processing of the private
    /// model, so it costs no extra budget).
    pub log_likelihood_trace: Vec<f64>,
    /// The number of iterations performed (equals the configured value).
    pub iterations: usize,
}

/// Fits a Gaussian mixture under differential privacy.
///
/// `data` rows are clipped to `config.clip_norm` before fitting. The
/// initialization uses **non-private k-means on clipped data**; in the P3GM
/// pipeline the input to DP-EM is the output of DP-PCA (already private), and
/// the initialization budget is accounted for by the caller via the DP-EM
/// iterations themselves in the paper's analysis — we keep the same
/// structure and note it here.
pub fn fit<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, config: &DpEmConfig) -> Result<DpEmResult> {
    let em_cfg = EmConfig {
        n_components: config.n_components,
        max_iters: config.iterations,
        tolerance: 0.0,
        covariance_regularization: config.covariance_regularization,
    };
    validate(data, &em_cfg)?;
    if config.sigma_e <= 0.0 || config.clip_norm <= 0.0 {
        return Err(MixtureError::InvalidParameter {
            msg: format!(
                "sigma_e and clip_norm must be positive, got {} and {}",
                config.sigma_e, config.clip_norm
            ),
        });
    }
    if config.iterations == 0 {
        return Err(MixtureError::InvalidParameter {
            msg: "DP-EM needs at least one iteration".to_string(),
        });
    }

    let k = config.n_components;
    let d = data.cols();
    let n = data.rows();

    // Clip rows to the unit (clip_norm) ball so the sensitivity bound holds.
    let clipped = clip_rows(data, config.clip_norm);

    // Sensitivity of the normalized statistics when one record changes:
    // each mean / covariance entry / weight is an average of N bounded
    // contributions, so replacing one record moves it by at most ~2*c/N
    // (c = clip_norm, and c^2 for second moments with c <= 1 -> still <= 2c/N
    // in the regimes used here). We use the conservative bound 2*c/N.
    let sensitivity = 2.0 * config.clip_norm / n as f64;
    let noise_std = config.sigma_e * sensitivity;

    // Initialization from k-means on the clipped data.
    let km = kmeans(
        rng,
        &clipped,
        &KMeansConfig {
            k,
            max_iters: 20,
            tolerance: 1e-4,
        },
    )?;
    let (mut weights, mut means, mut covariances) = initial_parameters(
        &clipped,
        &km.assignments,
        k,
        config.covariance_regularization,
    );

    let mut model = Gmm::new(weights.clone(), means.clone(), covariances.clone()).map_err(keep)?;
    let mut trace = Vec::with_capacity(config.iterations);

    for _ in 0..config.iterations {
        // E-step (no privacy cost: responsibilities are internal). Batched
        // and parallel; bit-identical for every thread count.
        let resp = model.responsibilities_batch(&clipped);

        // M-step with Gaussian-mechanism noise on each released statistic.
        // The clean statistics are accumulated with the deterministic
        // chunked reduction; noise is drawn serially from the caller's rng
        // afterwards, so the rng consumption order is thread-independent.
        let nk: Vec<f64> = resp.column_sums().iter().map(|&s| s.max(1e-10)).collect();

        // Weights (one release).
        for c in 0..k {
            weights[c] = (nk[c] / n as f64 + sampling::normal(rng, 0.0, noise_std)).max(1e-4);
        }

        // Means (one release per component).
        let mean_sums = weighted_mean_sums(&clipped, &resp);
        for (c, &nkc) in nk.iter().enumerate() {
            let mean = means.row_mut(c);
            mean.copy_from_slice(mean_sums.row(c));
            vector::scale(1.0 / nkc, mean);
            for m in mean.iter_mut() {
                *m += sampling::normal(rng, 0.0, noise_std);
            }
        }

        // Covariances (one release per component), around the *noisy* means
        // just released.
        let scatter = weighted_scatter_sums(&clipped, &resp, &means);
        for (c, sum) in scatter.into_iter().enumerate() {
            let mut cov = sum.scale(1.0 / nk[c]);
            for i in 0..d {
                for j in i..d {
                    let noise = sampling::normal(rng, 0.0, noise_std);
                    let v = cov.get(i, j) + noise;
                    cov.set(i, j, v);
                    cov.set(j, i, v);
                }
            }
            cov.add_diagonal(config.covariance_regularization);
            covariances[c] = cov;
        }

        model = Gmm::new(weights.clone(), means.clone(), covariances.clone()).map_err(keep)?;
        trace.push(model.mean_log_likelihood(&clipped));
    }

    Ok(DpEmResult {
        model,
        log_likelihood_trace: trace,
        iterations: config.iterations,
    })
}

/// Returns a copy of `data` with every row clipped to L2 norm `clip_norm`.
pub fn clip_rows(data: &Matrix, clip_norm: f64) -> Matrix {
    let mut out = data.clone();
    for i in 0..out.rows() {
        vector::clip_norm(out.row_mut(i), clip_norm);
    }
    out
}

fn keep(e: MixtureError) -> MixtureError {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    /// Two separated blobs inside the unit ball.
    fn unit_ball_blobs(rng: &mut StdRng, per: usize) -> Matrix {
        let truth = Gmm::isotropic(
            vec![0.5, 0.5],
            Matrix::from_rows(&[vec![-0.5, 0.0], vec![0.5, 0.2]]).unwrap(),
            0.01,
        )
        .unwrap();
        truth.sample_n(rng, per * 2)
    }

    #[test]
    fn clip_rows_limits_norms() {
        let data = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.1, 0.1]]).unwrap();
        let clipped = clip_rows(&data, 1.0);
        assert!((vector::norm2(clipped.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(clipped.row(1), &[0.1, 0.1]);
    }

    #[test]
    fn with_negligible_noise_recovers_components() {
        let mut r = rng();
        let data = unit_ball_blobs(&mut r, 400);
        let res = fit(
            &mut r,
            &data,
            &DpEmConfig {
                n_components: 2,
                iterations: 15,
                sigma_e: 1e-6, // effectively non-private
                covariance_regularization: 1e-6,
                clip_norm: 1.0,
            },
        )
        .unwrap();
        let mut means = res.model.means().to_rows();
        means.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!((means[0][0] + 0.5).abs() < 0.1, "{:?}", means[0]);
        assert!((means[1][0] - 0.5).abs() < 0.1, "{:?}", means[1]);
        assert_eq!(res.iterations, 15);
        assert_eq!(res.log_likelihood_trace.len(), 15);
    }

    #[test]
    fn realistic_noise_still_yields_usable_model() {
        let mut r = rng();
        let data = unit_ball_blobs(&mut r, 500);
        // sigma_e = 100 with N = 1000 → noise std = 100 * 2/1000 = 0.2,
        // comparable to the component separation; the model should still
        // beat a single wide Gaussian in likelihood.
        let res = fit(
            &mut r,
            &data,
            &DpEmConfig {
                n_components: 2,
                iterations: 10,
                sigma_e: 100.0,
                covariance_regularization: 1e-3,
                clip_norm: 1.0,
            },
        )
        .unwrap();
        let baseline = Gmm::isotropic(
            vec![1.0],
            Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap(),
            1.0,
        )
        .unwrap();
        let clipped = clip_rows(&data, 1.0);
        assert!(
            res.model.mean_log_likelihood(&clipped) > baseline.mean_log_likelihood(&clipped),
            "noisy model should still beat a unit Gaussian"
        );
    }

    #[test]
    fn more_noise_means_worse_fit() {
        let mut r = rng();
        let data = unit_ball_blobs(&mut r, 500);
        let fit_with = |r: &mut StdRng, sigma_e: f64| {
            fit(
                r,
                &data,
                &DpEmConfig {
                    n_components: 2,
                    iterations: 10,
                    sigma_e,
                    covariance_regularization: 1e-3,
                    clip_norm: 1.0,
                },
            )
            .unwrap()
        };
        let clipped = clip_rows(&data, 1.0);
        // Average over a few runs to smooth randomness.
        let mut clean = 0.0;
        let mut noisy = 0.0;
        for _ in 0..3 {
            clean += fit_with(&mut r, 1e-6).model.mean_log_likelihood(&clipped);
            noisy += fit_with(&mut r, 2000.0).model.mean_log_likelihood(&clipped);
        }
        assert!(
            clean > noisy,
            "clean ll {clean} should exceed heavily-noised ll {noisy}"
        );
    }

    #[test]
    fn weights_remain_a_distribution() {
        let mut r = rng();
        let data = unit_ball_blobs(&mut r, 200);
        let res = fit(
            &mut r,
            &data,
            &DpEmConfig {
                n_components: 3,
                iterations: 5,
                sigma_e: 500.0,
                covariance_regularization: 1e-3,
                clip_norm: 1.0,
            },
        )
        .unwrap();
        let w = res.model.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn validation_errors() {
        let mut r = rng();
        let data = unit_ball_blobs(&mut r, 50);
        assert!(fit(
            &mut r,
            &data,
            &DpEmConfig {
                sigma_e: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(fit(
            &mut r,
            &data,
            &DpEmConfig {
                iterations: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(fit(
            &mut r,
            &data,
            &DpEmConfig {
                clip_norm: -1.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(fit(
            &mut r,
            &data,
            &DpEmConfig {
                n_components: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(fit(&mut r, &Matrix::zeros(0, 2), &DpEmConfig::default()).is_err());
    }
}
