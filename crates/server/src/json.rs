//! Minimal hand-rolled JSON value module: parse and serialize, no
//! dependencies.
//!
//! The workspace builds offline with no serde, so the HTTP request layer
//! carries its own JSON support, held to the same hardening discipline as
//! the `p3gm-store` decoder: **parsing never panics on untrusted input**
//! — every malformed document is a typed [`JsonError`] with the byte
//! offset of the problem. The parser is strict JSON (RFC 8259) plus two
//! deliberate extra rejections that keep request handling deterministic
//! and unambiguous: duplicate object keys are errors, and numbers that
//! overflow `f64` (e.g. `1e999`) are errors instead of silently becoming
//! infinity.
//!
//! Serialization ([`Json`]'s `Display`) is compact and deterministic:
//! object members print in insertion order, numbers print through Rust's
//! shortest-round-trip `f64` formatting, and there is no whitespace — the
//! same value always serializes to the same bytes, which is what lets the
//! server promise byte-identical response bodies for identical requests.

use std::fmt;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Deep enough for any real
/// request body, shallow enough that recursion cannot exhaust the stack
/// on crafted input.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Objects preserve insertion order (members are a `Vec`, not a map) so
/// serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Always finite: the parser rejects overflowing literals
    /// and the serializer prints non-finite values as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order, with unique keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object value. Returns `None` for missing keys
    /// and for non-object values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number that
    /// `f64` represents exactly (at most 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= 9_007_199_254_740_992.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members.as_slice()),
            _ => None,
        }
    }
}

/// A typed JSON parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was detected.
    pub pos: usize,
    /// Description of the problem.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document. The entire input must be a single value
/// surrounded by nothing but whitespace; anything else is a typed
/// [`JsonError`] — never a panic.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, literal: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal(b"null", Json::Null),
            Some(b't') => self.expect_literal(b"true", Json::Bool(true)),
            Some(b'f') => self.expect_literal(b"false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string object key"));
            }
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape consumed its digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(_) => {
                    // Copy one full UTF-8 scalar (the input is a &str, so
                    // multi-byte sequences are guaranteed well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `u` itself already
    /// consumed), handling UTF-16 surrogate pairs. Leaves `pos` after the
    /// last consumed digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            Err(self.err("unpaired surrogate in \\u escape"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.err("unpaired surrogate in \\u escape"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one `0`, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !v.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(v))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    value.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"seed": 7, "n": 3, "labels": [2, 1], "format": "csv"}"#).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("format").and_then(Json::as_str), Some("csv"));
        assert_eq!(
            v.get("labels").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndA\u{e9}\u{1F600}");
        // Serialize then reparse: identical value.
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn serialization_is_deterministic_and_compact() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Num(1.5)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":1.5,"a":[null,false]}"#);
        // Insertion order is preserved, so the same construction always
        // yields the same bytes.
        assert_eq!(v.to_string(), v.to_string());
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-308, 123_456_789.123_456, -2.5e17] {
            let text = Json::Num(v).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn as_u64_requires_exact_nonnegative_integers() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "",
            "  ",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "tru",
            "nul",
            "01",
            "1.",
            "1e",
            "+1",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"ctrl \u{0001}\"",
            "\"\\ud800\"",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "1e999",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn error_display_mentions_position() {
        let e = parse("[1, oops]").unwrap_err();
        assert!(e.to_string().contains("byte"));
        assert!(e.pos > 0);
    }
}
