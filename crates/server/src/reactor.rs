//! Event-driven reactor core: one nonblocking I/O thread multiplexing
//! every accepted socket over `poll(2)`, with synthesis work handed to a
//! small executor pool.
//!
//! ## Architecture
//!
//! ```text
//!             ┌──────────── reactor thread ────────────┐
//!   accept ──▶│ slab of connections                    │
//!             │   Idle ── POLLIN ──▶ Reading ──▶ parse │
//!             │   parse ok ──▶ Working (job queued) ───┼──▶ executor pool
//!             │   Blocked write ◀── Done::Blocked ─────┼──◀ (route + write)
//!             │   WritePending ── POLLOUT ──▶ resume ──┼──▶ executor pool
//!             │   deadlines: read / idle / write ──▶ ✂ │
//!             └────────────────────────────────────────┘
//! ```
//!
//! The reactor thread owns every socket's *readiness*: it accepts,
//! parses (cheap, bounded by `Limits`), expires deadlines, and closes.
//! Executors own the expensive part — routing a parsed request through
//! the registry/ledger and writing the response. A response write that
//! hits `WouldBlock` is returned to the reactor as a `Done::Blocked`
//! carrying the resumable [`ResponseWriter`], the socket joins the poll
//! set for `POLLOUT`, and the executor moves on: a slow reader costs a
//! slab slot, never a thread.
//!
//! Every observable contract of the thread-per-connection core survives
//! unchanged: byte-identical responses (the same `route()` and the
//! head/chunk framing shared with `Response::write_to`), request-read
//! and keep-alive deadlines (typed 408 via the same
//! `HttpError::Io(TimedOut)` the blocking reader produces), silent close
//! on clean EOF between requests, `max_requests_per_connection`,
//! exactly-once ledger charging (charging still happens inside
//! `route()`, before any byte is written), and graceful shutdown that
//! drains in-flight work but retires idle connections immediately.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{
    HttpError, Limits, Method, Request, RequestReader, ResponseWriter, Version, WriteProgress,
};
use crate::metrics::InFlightGuard;
use crate::sys::{poll_fds, PollFd, WakeHandle, Waker, POLLIN, POLLOUT};
use crate::{error_response, route, route_label, ConnConfig, Service};
use p3gm_obs::time::unix_millis;
use p3gm_obs::TimeSource;

/// Synthetic poll-set id for the waker pipe.
const WAKER_ID: u64 = u64::MAX;
/// Synthetic poll-set id for the listener.
const LISTENER_ID: u64 = u64::MAX - 1;
/// How long a rejected connection may dribble its remaining request
/// bytes before the socket is dropped (mirrors the thread core's
/// bounded post-error drain).
const DRAIN_WINDOW: Duration = Duration::from_millis(200);
/// Byte budget for that drain — a client still uploading megabytes
/// after a 4xx is cut off rather than serviced.
const DRAIN_BYTES: usize = 256 * 1024;
/// Back-off before re-arming `accept` after a transient accept error
/// (e.g. EMFILE): keeps the loop from spinning while still recovering.
const ACCEPT_RETRY: Duration = Duration::from_millis(10);

/// A `TcpStream` shared between the reactor (reads, polls, closes) and
/// executors (writes), with a running count of bytes read so the
/// reactor can distinguish "clean EOF while idle" (silent close) from
/// "bytes arrived, then EOF" (400) — the same distinction the blocking
/// core gets from its `peek`.
#[derive(Clone)]
pub(crate) struct SharedStream {
    stream: Arc<TcpStream>,
    read_bytes: Arc<AtomicU64>,
}

impl Read for SharedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = (&*self.stream).read(buf)?;
        self.read_bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Write for SharedStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        (&*self.stream).write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        (&*self.stream).flush()
    }
}

/// Work handed to the executor pool.
enum Job {
    /// A fully parsed request: route it and write the response.
    Request(RequestJob),
    /// A previously blocked response write whose socket went writable.
    Resume { conn_id: u64, write: WriteInFlight },
}

struct RequestJob {
    conn_id: u64,
    request: Request,
    keep: bool,
    reused: bool,
    parsed_at: Instant,
    stream: SharedStream,
}

/// A response mid-write: everything needed to resume after `POLLOUT`.
struct WriteInFlight {
    writer: ResponseWriter,
    stream: SharedStream,
    keep: bool,
    /// Error responses shut down the write half and drain a bounded
    /// amount of the client's remaining upload before closing.
    drain_after: bool,
    guard: Option<InFlightGuard>,
    log: Option<LogEntry>,
}

/// Access-log fields captured when the response was computed, emitted
/// once the write finishes (success path only — parse errors log
/// immediately from the reactor, as the blocking core does).
struct LogEntry {
    method: Method,
    target: String,
    status: u16,
    dur_us: u64,
}

/// Executor → reactor notifications.
enum Done {
    Finished {
        conn_id: u64,
        keep: bool,
        write_ok: bool,
        drain_after: bool,
    },
    Blocked {
        conn_id: u64,
        write: WriteInFlight,
    },
}

/// One executor: pull a job, run it, report back, wake the reactor.
/// The `Mutex<Receiver>` serializes job *pickup* only — execution
/// overlaps freely across the pool.
fn executor_loop(
    service: &Service,
    jobs: &Mutex<Receiver<Job>>,
    done: &Sender<Done>,
    wake: &WakeHandle,
) {
    loop {
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let outcome = match job {
            Job::Request(req) => run_request(service, req),
            Job::Resume { conn_id, write } => advance_write(service, conn_id, write),
        };
        if done.send(outcome).is_err() {
            return;
        }
        wake.wake();
    }
}

/// Route one parsed request and start writing its response.
fn run_request(service: &Service, job: RequestJob) -> Done {
    let RequestJob {
        conn_id,
        request,
        keep,
        reused,
        parsed_at,
        stream,
    } = job;
    let guard = service.metrics.as_ref().map(|m| m.begin_request(reused));
    let mut response = route(service, &request);
    if request.version == Version::Http10 {
        response = response.into_buffered();
    }
    let seconds = parsed_at.elapsed().as_secs_f64();
    let status = response.status;
    let label = route_label(&request);
    if let Some(metrics) = service.metrics.as_ref() {
        metrics.observe_request(label, status, seconds);
        metrics.instrument_stream(&mut response, metrics.clock.now_nanos());
    }
    let log = service.access_log.as_ref().map(|_| LogEntry {
        method: request.method,
        target: request.target,
        status,
        dur_us: (seconds * 1e6) as u64,
    });
    let write = WriteInFlight {
        writer: ResponseWriter::new(response, keep),
        stream,
        keep,
        drain_after: false,
        guard,
        log,
    };
    advance_write(service, conn_id, write)
}

/// Push bytes until the response completes, the socket blocks, or the
/// write fails.
fn advance_write(service: &Service, conn_id: u64, mut write: WriteInFlight) -> Done {
    let result = {
        let mut stream = write.stream.clone();
        write.writer.write_some(&mut stream)
    };
    match result {
        Ok(WriteProgress::Complete) => finish_write(service, conn_id, write, true),
        Ok(WriteProgress::Blocked) => Done::Blocked { conn_id, write },
        Err(_) => finish_write(service, conn_id, write, false),
    }
}

/// Terminal bookkeeping for a write: release the in-flight gauge, emit
/// the access-log line (same format as the blocking core).
fn finish_write(service: &Service, conn_id: u64, mut write: WriteInFlight, write_ok: bool) -> Done {
    drop(write.guard.take());
    if let (Some(entry), Some(log)) = (write.log.take(), service.access_log.as_ref()) {
        let keep = write.keep && write_ok;
        log.log(&format!(
            "t={} method={} target={} status={} keep={} dur_us={}",
            unix_millis(),
            entry.method,
            entry.target,
            entry.status,
            keep,
            entry.dur_us
        ));
    }
    Done::Finished {
        conn_id,
        keep: write.keep,
        write_ok,
        drain_after: write.drain_after,
    }
}

/// Per-connection reactor state.
enum State {
    /// Between requests: waiting for the first byte (keep-alive clock).
    Idle,
    /// Partway through a request head/body (request-read clock).
    Reading,
    /// Owned by an executor; not in the poll set.
    Working,
    /// A blocked response write parked until `POLLOUT`. The `Option` is
    /// taken when the write is handed back to an executor.
    WritePending(Option<WriteInFlight>),
    /// Post-error: swallowing the client's remaining upload bytes.
    Draining { budget: usize },
}

struct Conn {
    stream: Arc<TcpStream>,
    reader: RequestReader<SharedStream>,
    served: usize,
    state: State,
    deadline: Option<Instant>,
    bytes_in: Arc<AtomicU64>,
    /// `bytes_in` snapshot at the moment the connection last went
    /// `Idle`; EOF with no bytes past the marker is a silent close.
    read_marker: u64,
}

impl Conn {
    fn shared(&self) -> SharedStream {
        SharedStream {
            stream: Arc::clone(&self.stream),
            read_bytes: Arc::clone(&self.bytes_in),
        }
    }
}

/// Generation-checked slab of connections: ids are `(generation << 32)
/// | index`, so a stale id from a late `Done` can never touch a slot
/// that was recycled for a new connection.
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

fn pack(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: Conn) -> u64 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(conn);
                pack(idx, self.gens[idx])
            }
            None => {
                self.slots.push(Some(conn));
                self.gens.push(0);
                pack(self.slots.len() - 1, 0)
            }
        }
    }

    fn index(&self, id: u64) -> Option<usize> {
        let idx = (id & u32::MAX as u64) as usize;
        let gen = (id >> 32) as u32;
        if idx < self.slots.len() && self.gens[idx] == gen && self.slots[idx].is_some() {
            Some(idx)
        } else {
            None
        }
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut Conn> {
        let idx = self.index(id)?;
        self.slots[idx].as_mut()
    }

    fn remove(&mut self, id: u64) -> Option<Conn> {
        let idx = self.index(id)?;
        let conn = self.slots[idx].take();
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        conn
    }

    fn iter(&self) -> impl Iterator<Item = (u64, &Conn)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| slot.as_ref().map(|conn| (pack(idx, self.gens[idx]), conn)))
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(|slot| slot.is_none())
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }
}

/// Reactor construction knobs, filled from `ServerConfig` by `start()`.
pub(crate) struct ReactorOptions {
    pub(crate) executors: usize,
    pub(crate) limits: Limits,
    pub(crate) conn: ConnConfig,
}

/// Runs the reactor until `stop` is observed and every connection has
/// retired. Blocks the calling thread; `start()` spawns it.
pub(crate) fn run(
    listener: TcpListener,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    waker: Waker,
    opts: ReactorOptions,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (done_tx, done_rx) = std::sync::mpsc::channel::<Done>();
    let mut pool = Vec::with_capacity(opts.executors);
    for _ in 0..opts.executors {
        let service = Arc::clone(&service);
        let jobs = Arc::clone(&job_rx);
        let done = done_tx.clone();
        let wake = waker.handle();
        pool.push(std::thread::spawn(move || {
            executor_loop(&service, &jobs, &done, &wake);
        }));
    }
    drop(done_tx);
    let reactor = Reactor {
        service,
        stop,
        limits: opts.limits,
        cfg: opts.conn,
        slab: Slab::new(),
        job_tx: Some(job_tx),
        done_rx,
        waker,
        stopping: false,
        accept_retry_at: None,
    };
    reactor.run_loop(&listener);
    // Dropping the reactor drops `job_tx`, which ends the executors.
    for worker in pool {
        let _ = worker.join();
    }
}

struct Reactor {
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    limits: Limits,
    cfg: ConnConfig,
    slab: Slab,
    job_tx: Option<Sender<Job>>,
    done_rx: Receiver<Done>,
    waker: Waker,
    stopping: bool,
    accept_retry_at: Option<Instant>,
}

impl Reactor {
    fn run_loop(mut self, listener: &TcpListener) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) && !self.stopping {
                self.begin_shutdown();
            }
            if self.stopping && self.slab.is_empty() {
                return;
            }
            let now = Instant::now();
            fds.clear();
            ids.clear();
            fds.push(PollFd::new(self.waker.fd(), POLLIN));
            ids.push(WAKER_ID);
            let accept_armed = !self.stopping && self.accept_retry_at.is_none_or(|at| now >= at);
            if accept_armed {
                self.accept_retry_at = None;
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                ids.push(LISTENER_ID);
            }
            let mut next_deadline: Option<Instant> = if accept_armed {
                None
            } else {
                self.accept_retry_at
            };
            for (id, conn) in self.slab.iter() {
                let events = match conn.state {
                    State::Idle | State::Reading | State::Draining { .. } => POLLIN,
                    State::WritePending(_) => POLLOUT,
                    State::Working => continue,
                };
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                ids.push(id);
                if let Some(deadline) = conn.deadline {
                    next_deadline = Some(match next_deadline {
                        Some(current) => current.min(deadline),
                        None => deadline,
                    });
                }
            }
            let timeout = next_deadline.map(|deadline| deadline.saturating_duration_since(now));
            if poll_fds(&mut fds, timeout).is_err() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            if let Some(metrics) = self.service.metrics.as_ref() {
                metrics.reactor_wakeup();
            }
            if fds[0].ready(POLLIN) {
                self.waker.drain();
            }
            while let Ok(done) = self.done_rx.try_recv() {
                self.apply(done);
            }
            let mut ready: VecDeque<u64> = VecDeque::new();
            let mut accept_ready = false;
            for (fd, &id) in fds.iter().zip(ids.iter()).skip(1) {
                if !fd.ready(POLLIN | POLLOUT) {
                    continue;
                }
                if id == LISTENER_ID {
                    accept_ready = true;
                } else {
                    ready.push_back(id);
                }
            }
            for id in ready {
                self.on_event(id);
            }
            if accept_ready && !self.accept_all(listener) {
                self.accept_retry_at = Some(Instant::now() + ACCEPT_RETRY);
            }
            self.expire_deadlines();
        }
    }

    /// Stop accepting and retire every idle connection; in-flight
    /// requests (Reading / Working / WritePending / Draining) run to
    /// completion, after which `park_idle` closes them.
    fn begin_shutdown(&mut self) {
        self.stopping = true;
        let idle: Vec<u64> = self
            .slab
            .iter()
            .filter(|(_, conn)| matches!(conn.state, State::Idle))
            .map(|(id, _)| id)
            .collect();
        for id in idle {
            self.close(id);
        }
    }

    /// Accepts until the backlog is empty. Returns `false` on a
    /// non-transient accept error so the caller arms the retry backoff.
    fn accept_all(&mut self, listener: &TcpListener) -> bool {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let stream = Arc::new(stream);
                    let bytes_in = Arc::new(AtomicU64::new(0));
                    let shared = SharedStream {
                        stream: Arc::clone(&stream),
                        read_bytes: Arc::clone(&bytes_in),
                    };
                    let conn = Conn {
                        stream,
                        reader: RequestReader::new(shared),
                        served: 0,
                        state: State::Idle,
                        deadline: Some(Instant::now() + self.cfg.keep_alive_timeout),
                        bytes_in,
                        read_marker: 0,
                    };
                    self.slab.insert(conn);
                    if let Some(metrics) = self.service.metrics.as_ref() {
                        metrics.connection_opened();
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => return true,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Readiness on one connection's socket.
    fn on_event(&mut self, id: u64) {
        enum Act {
            Parse,
            Resume,
            Drain,
            None,
        }
        let act = match self.slab.get_mut(id) {
            Some(conn) => match &conn.state {
                State::Idle => {
                    conn.state = State::Reading;
                    conn.deadline = Some(Instant::now() + self.cfg.request_read_timeout);
                    Act::Parse
                }
                State::Reading => Act::Parse,
                State::WritePending(_) => Act::Resume,
                State::Draining { .. } => Act::Drain,
                State::Working => Act::None,
            },
            None => return,
        };
        match act {
            Act::Parse => self.try_parse(id),
            Act::Resume => self.resume_write(id),
            Act::Drain => self.drain_some(id),
            Act::None => {}
        }
    }

    /// Pull bytes and attempt a parse; `WouldBlock` means "keep
    /// waiting", a complete request dispatches, anything else closes or
    /// rejects.
    fn try_parse(&mut self, id: u64) {
        let Some(conn) = self.slab.get_mut(id) else {
            return;
        };
        let parsed = conn.reader.next_request(&self.limits);
        match parsed {
            Ok(request) => self.dispatch(id, request),
            Err(HttpError::Io(ErrorKind::WouldBlock | ErrorKind::Interrupted)) => {
                // Not enough bytes yet; the carry stays valid and the
                // request-read deadline keeps ticking.
            }
            Err(err) => {
                let silent = matches!(err, HttpError::Incomplete)
                    && !conn.reader.has_buffered()
                    && conn.bytes_in.load(Ordering::Relaxed) == conn.read_marker;
                if silent {
                    self.close(id);
                } else {
                    self.reject(id, &err);
                }
            }
        }
    }

    /// Hand a parsed request to the executor pool.
    fn dispatch(&mut self, id: u64, request: Request) {
        let Some(conn) = self.slab.get_mut(id) else {
            return;
        };
        conn.served += 1;
        let keep = request.keep_alive()
            && conn.served < self.cfg.max_requests_per_connection
            && !self.stop.load(Ordering::SeqCst);
        let reused = conn.served > 1;
        let job = Job::Request(RequestJob {
            conn_id: id,
            request,
            keep,
            reused,
            parsed_at: Instant::now(),
            stream: conn.shared(),
        });
        conn.state = State::Working;
        conn.deadline = None;
        let sent = self
            .job_tx
            .as_ref()
            .map(|tx| tx.send(job).is_ok())
            .unwrap_or(false);
        if !sent {
            self.close(id);
        }
    }

    /// Write a typed error response from the reactor thread itself
    /// (parse errors never reach the pool), then drain-and-close —
    /// mirroring the blocking core's error path, including the metrics
    /// and parse-error access-log line.
    fn reject(&mut self, id: u64, err: &HttpError) {
        let status = err.status();
        let served = match self.slab.get_mut(id) {
            Some(conn) => conn.served,
            None => return,
        };
        if let Some(metrics) = self.service.metrics.as_ref() {
            let _guard = metrics.begin_request(served > 0);
            metrics.observe_request("unparsed", status, 0.0);
        }
        if let Some(log) = self.service.access_log.as_ref() {
            log.log(&format!(
                "t={} method=- target=- status={} keep=false dur_us=0 parse_error={:?}",
                unix_millis(),
                status,
                err.to_string()
            ));
        }
        let write = {
            let Some(conn) = self.slab.get_mut(id) else {
                return;
            };
            conn.state = State::Working;
            conn.deadline = None;
            WriteInFlight {
                writer: ResponseWriter::new(error_response(status, &err.to_string()), false),
                stream: conn.shared(),
                keep: false,
                drain_after: true,
                guard: None,
                log: None,
            }
        };
        let done = advance_write(&self.service, id, write);
        self.apply(done);
    }

    /// A parked write's socket went writable: hand it back to the pool.
    fn resume_write(&mut self, id: u64) {
        let write = match self.slab.get_mut(id) {
            Some(conn) => match &mut conn.state {
                State::WritePending(slot) => match slot.take() {
                    Some(write) => {
                        conn.state = State::Working;
                        conn.deadline = None;
                        write
                    }
                    None => return,
                },
                _ => return,
            },
            None => return,
        };
        let sent = self
            .job_tx
            .as_ref()
            .map(|tx| tx.send(Job::Resume { conn_id: id, write }).is_ok())
            .unwrap_or(false);
        if !sent {
            self.close(id);
        }
    }

    /// Apply an executor's notification to the owning connection.
    fn apply(&mut self, done: Done) {
        match done {
            Done::Blocked { conn_id, write } => {
                if let Some(conn) = self.slab.get_mut(conn_id) {
                    conn.state = State::WritePending(Some(write));
                    conn.deadline = Some(Instant::now() + self.cfg.io_timeout);
                }
            }
            Done::Finished {
                conn_id,
                keep,
                write_ok,
                drain_after,
            } => {
                if !write_ok {
                    self.close(conn_id);
                    return;
                }
                if drain_after {
                    if let Some(conn) = self.slab.get_mut(conn_id) {
                        let _ = conn.stream.shutdown(Shutdown::Write);
                        conn.state = State::Draining {
                            budget: DRAIN_BYTES,
                        };
                        conn.deadline = Some(Instant::now() + DRAIN_WINDOW);
                    }
                    return;
                }
                if !keep {
                    if let Some(conn) = self.slab.get_mut(conn_id) {
                        let _ = conn.stream.shutdown(Shutdown::Write);
                    }
                    self.close(conn_id);
                    return;
                }
                self.park_idle(conn_id);
            }
        }
    }

    /// Return a connection to keep-alive idle (or parse the next
    /// pipelined request already sitting in the carry).
    fn park_idle(&mut self, id: u64) {
        if self.stopping || self.stop.load(Ordering::SeqCst) {
            self.close(id);
            return;
        }
        let parse_now = match self.slab.get_mut(id) {
            Some(conn) => {
                conn.read_marker = conn.bytes_in.load(Ordering::Relaxed);
                if conn.reader.has_buffered() {
                    // Pipelined bytes already in the carry never raise
                    // POLLIN — parse immediately.
                    conn.state = State::Reading;
                    conn.deadline = Some(Instant::now() + self.cfg.request_read_timeout);
                    true
                } else {
                    conn.state = State::Idle;
                    conn.deadline = Some(Instant::now() + self.cfg.keep_alive_timeout);
                    false
                }
            }
            None => return,
        };
        if parse_now {
            self.try_parse(id);
        }
    }

    /// Swallow a bounded amount of a rejected client's remaining bytes.
    fn drain_some(&mut self, id: u64) {
        let mut close = false;
        if let Some(conn) = self.slab.get_mut(id) {
            let mut scratch = [0u8; 4096];
            loop {
                match (&*conn.stream).read(&mut scratch) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        if let State::Draining { budget } = &mut conn.state {
                            if *budget <= n {
                                close = true;
                                break;
                            }
                            *budget -= n;
                        } else {
                            break;
                        }
                    }
                    Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
        }
        if close {
            self.close(id);
        }
    }

    /// Fire every expired per-connection deadline.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .slab
            .iter()
            .filter(|(_, conn)| conn.deadline.is_some_and(|deadline| deadline <= now))
            .map(|(id, _)| id)
            .collect();
        for id in expired {
            self.expire(id);
        }
    }

    fn expire(&mut self, id: u64) {
        enum Kind {
            Silent,
            ReadTimeout,
            WriteTimeout(WriteInFlight),
        }
        let kind = match self.slab.get_mut(id) {
            Some(conn) => match &mut conn.state {
                State::Idle | State::Draining { .. } => Kind::Silent,
                State::Reading => Kind::ReadTimeout,
                State::WritePending(slot) => match slot.take() {
                    Some(write) => Kind::WriteTimeout(write),
                    None => return,
                },
                State::Working => return,
            },
            None => return,
        };
        match kind {
            Kind::Silent => self.close(id),
            Kind::ReadTimeout => {
                // Same typed 408 the blocking reader's deadline produces.
                self.reject(id, &HttpError::Io(ErrorKind::TimedOut));
            }
            Kind::WriteTimeout(write) => {
                let _ = finish_write(&self.service, id, write, false);
                self.close(id);
            }
        }
    }

    /// Drop a connection and decrement the open-connections gauge.
    fn close(&mut self, id: u64) {
        if self.slab.remove(id).is_some() {
            if let Some(metrics) = self.service.metrics.as_ref() {
                metrics.connection_closed();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_conn() -> Conn {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        // Keep the client end alive for the duration of the slab tests
        // by leaking it into the connection's bytes_in Arc lifetime —
        // simplest is to just forget it; the fd closes at process exit.
        std::mem::forget(client);
        let stream = Arc::new(server);
        let bytes_in = Arc::new(AtomicU64::new(0));
        let shared = SharedStream {
            stream: Arc::clone(&stream),
            read_bytes: Arc::clone(&bytes_in),
        };
        Conn {
            stream,
            reader: RequestReader::new(shared),
            served: 0,
            state: State::Idle,
            deadline: None,
            bytes_in,
            read_marker: 0,
        }
    }

    #[test]
    fn slab_recycles_slots_with_fresh_generations() {
        let mut slab = Slab::new();
        let a = slab.insert(dummy_conn());
        let b = slab.insert(dummy_conn());
        assert_eq!(slab.len(), 2);
        assert!(slab.remove(a).is_some());
        // Stale id no longer resolves.
        assert!(slab.get_mut(a).is_none());
        assert!(slab.remove(a).is_none());
        // The freed slot is reused under a new generation.
        let c = slab.insert(dummy_conn());
        assert_ne!(a, c);
        assert_eq!(a & u32::MAX as u64, c & u32::MAX as u64);
        assert!(slab.get_mut(c).is_some());
        assert!(slab.get_mut(b).is_some());
        assert_eq!(slab.len(), 2);
        assert!(!slab.is_empty());
        assert!(slab.remove(b).is_some());
        assert!(slab.remove(c).is_some());
        assert!(slab.is_empty());
    }

    #[test]
    fn slab_iter_yields_live_ids() {
        let mut slab = Slab::new();
        let a = slab.insert(dummy_conn());
        let b = slab.insert(dummy_conn());
        slab.remove(a).unwrap();
        let ids: Vec<u64> = slab.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![b]);
    }
}
