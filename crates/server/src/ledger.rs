//! Per-model privacy budget ledger with durable state.
//!
//! The paper's accounting certifies one (ε, δ) guarantee per *release* of
//! a trained model. A serving deployment that hands synthetic data to
//! many downstream consumers may want to bound its total exposure the
//! same way: this ledger treats every synthesis response as a release
//! charged at the model's stamped ε (sequential composition's worst-case
//! bound — an operational ceiling, deliberately more conservative than
//! the post-processing argument under which sampling an already-released
//! model is free), and refuses further requests once a configurable
//! per-model budget is exhausted.
//!
//! The ledger's state is the part an attacker (or an accidental restart)
//! must not be able to reset, so it persists through the `p3gm-store`
//! codec: a charge only reports success after it is durably on disk
//! (fsynced temp file, atomic rename, best-effort directory sync; a
//! failed persist rolls the in-memory balance back), so a crash mid-write
//! leaves the previous state intact and can lose an unserved charge but
//! never a served one. Restarting the server on the same ledger file
//! resumes from the spent budget, not from zero.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The durable per-model balance: cumulative ε charged so far at the
/// model's fixed δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// Total ε charged against this model.
    pub spent_epsilon: f64,
    /// The δ the charges were accounted at (the model's stamp δ).
    pub delta: f64,
}

/// Why a charge (or a ledger open) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The per-model budget cannot cover this charge. Carries the state
    /// the 429 response reports.
    Exhausted {
        /// ε already spent on the model.
        spent: f64,
        /// The configured per-model ε budget.
        budget: f64,
        /// Budget remaining (never negative).
        remaining: f64,
    },
    /// The persisted ledger file failed to decode.
    Store(p3gm_store::StoreError),
    /// Reading or durably writing the ledger file failed.
    Io(String),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Exhausted {
                spent,
                budget,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: spent ε = {spent}, budget ε = {budget}, \
                 remaining ε = {remaining}"
            ),
            LedgerError::Store(e) => write!(f, "ledger file corrupt: {e}"),
            LedgerError::Io(msg) => write!(f, "ledger i/o failure: {msg}"),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<p3gm_store::StoreError> for LedgerError {
    fn from(e: p3gm_store::StoreError) -> Self {
        LedgerError::Store(e)
    }
}

/// Tracks cumulative ε per model against a configurable budget, with
/// durable persistence through the `p3gm-store` codec.
#[derive(Debug)]
pub struct BudgetLedger {
    /// Durable state, keyed by model name (sorted, so the encoded bytes
    /// are deterministic for a given state).
    entries: BTreeMap<String, LedgerEntry>,
    /// Per-model ε ceiling; `None` disables enforcement (the ledger still
    /// records spending).
    budget_epsilon: Option<f64>,
    /// Where charges are committed; `None` keeps the ledger in memory
    /// (tests, ephemeral servers).
    path: Option<PathBuf>,
}

impl BudgetLedger {
    /// An in-memory ledger (no persistence).
    pub fn in_memory(budget_epsilon: Option<f64>) -> Self {
        BudgetLedger {
            entries: BTreeMap::new(),
            budget_epsilon,
            path: None,
        }
    }

    /// Opens (or creates) a durable ledger at `path`. An existing file is
    /// decoded through the store codec — a corrupt or truncated file is a
    /// typed error, never a silent reset to zero spending.
    pub fn open(
        path: impl Into<PathBuf>,
        budget_epsilon: Option<f64>,
    ) -> Result<Self, LedgerError> {
        let path = path.into();
        let entries = match std::fs::read(&path) {
            Ok(bytes) => decode_entries(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(LedgerError::Io(format!("{}: {e}", path.display()))),
        };
        Ok(BudgetLedger {
            entries,
            budget_epsilon,
            path: Some(path),
        })
    }

    /// The configured per-model ε budget, if enforcement is on.
    pub fn budget_epsilon(&self) -> Option<f64> {
        self.budget_epsilon
    }

    /// The balance for a model (zero-spend if it was never charged).
    pub fn entry(&self, model: &str) -> LedgerEntry {
        self.entries.get(model).copied().unwrap_or(LedgerEntry {
            spent_epsilon: 0.0,
            delta: 0.0,
        })
    }

    /// Budget remaining for a model; `None` when enforcement is off.
    pub fn remaining(&self, model: &str) -> Option<f64> {
        self.budget_epsilon
            .map(|budget| (budget - self.entry(model).spent_epsilon).max(0.0))
    }

    /// Charges `epsilon` (at `delta`) against `model`.
    ///
    /// The charge is refused with [`LedgerError::Exhausted`] if it would
    /// push cumulative spend above the budget, and is durably persisted
    /// before it is reported as successful (a failed persist rolls the
    /// balance back and returns the error), so a crash can lose an
    /// unserved charge but never a served one. Returns the post-charge
    /// balance.
    pub fn charge(
        &mut self,
        model: &str,
        epsilon: f64,
        delta: f64,
    ) -> Result<LedgerEntry, LedgerError> {
        let epsilon = epsilon.max(0.0);
        let current = self.entry(model);
        if let Some(budget) = self.budget_epsilon {
            if current.spent_epsilon + epsilon > budget {
                return Err(LedgerError::Exhausted {
                    spent: current.spent_epsilon,
                    budget,
                    remaining: (budget - current.spent_epsilon).max(0.0),
                });
            }
        }
        let updated = LedgerEntry {
            spent_epsilon: current.spent_epsilon + epsilon,
            // δ is fixed per model (its stamp's δ); a hot-reloaded model
            // with a different stamp updates the recorded value.
            delta: if delta > 0.0 { delta } else { current.delta },
        };
        let previous = self.entries.insert(model.to_string(), updated);
        if let Some(path) = &self.path {
            if let Err(e) = persist(path, &self.entries) {
                // Roll the balance back: an uncommitted charge must not
                // be observable.
                match previous {
                    Some(entry) => self.entries.insert(model.to_string(), entry),
                    None => self.entries.remove(model),
                };
                return Err(e);
            }
        }
        Ok(updated)
    }

    /// Serializes the ledger state into one framed `p3gm-store` buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_entries(&self.entries)
    }
}

fn encode_entries(entries: &BTreeMap<String, LedgerEntry>) -> Vec<u8> {
    let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::BUDGET_LEDGER);
    enc.usize(entries.len());
    for (name, entry) in entries {
        enc.str(name).f64(entry.spent_epsilon).f64(entry.delta);
    }
    enc.finish()
}

fn decode_entries(bytes: &[u8]) -> Result<BTreeMap<String, LedgerEntry>, LedgerError> {
    let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::BUDGET_LEDGER)?;
    let count = dec.usize()?;
    let mut entries = BTreeMap::new();
    for _ in 0..count {
        let name = dec.string()?;
        let spent_epsilon = dec.f64()?;
        let delta = dec.f64()?;
        if !(spent_epsilon.is_finite() && spent_epsilon >= 0.0) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!("spent ε must be finite and non-negative, got {spent_epsilon}"),
            }
            .into());
        }
        if !(delta.is_finite() && (0.0..1.0).contains(&delta)) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!("ledger δ must be in [0, 1), got {delta}"),
            }
            .into());
        }
        if entries
            .insert(
                name.clone(),
                LedgerEntry {
                    spent_epsilon,
                    delta,
                },
            )
            .is_some()
        {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!("duplicate ledger entry for model {name:?}"),
            }
            .into());
        }
    }
    dec.finish()?;
    Ok(entries)
}

/// Writes the encoded state to `path` atomically: temp file in the same
/// directory (fsynced before the rename so the swap never installs
/// unwritten data after a power loss), then rename over the target, then
/// best-effort fsync of the directory to make the rename itself durable.
fn persist(path: &Path, entries: &BTreeMap<String, LedgerEntry>) -> Result<(), LedgerError> {
    use std::io::Write as _;
    let bytes = encode_entries(entries);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let io_err = |e: std::io::Error| LedgerError::Io(format!("{}: {e}", tmp.display()));
    let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
    file.write_all(&bytes).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| LedgerError::Io(format!("{} -> {}: {e}", tmp.display(), path.display())))?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("p3gm_ledger_test_{name}_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join("ledger.p3gm")
    }

    #[test]
    fn charges_accumulate_and_exhaust() {
        let mut ledger = BudgetLedger::in_memory(Some(1.0));
        assert_eq!(ledger.remaining("m"), Some(1.0));
        ledger.charge("m", 0.4, 1e-5).unwrap();
        let entry = ledger.charge("m", 0.4, 1e-5).unwrap();
        assert_eq!(entry.spent_epsilon, 0.8);
        assert_eq!(entry.delta, 1e-5);
        let err = ledger.charge("m", 0.4, 1e-5).unwrap_err();
        match err {
            LedgerError::Exhausted {
                spent,
                budget,
                remaining,
            } => {
                assert_eq!(spent, 0.8);
                assert_eq!(budget, 1.0);
                assert!((remaining - 0.2).abs() < 1e-12);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        // A refused charge does not move the balance.
        assert_eq!(ledger.entry("m").spent_epsilon, 0.8);
        // Other models have their own budgets.
        assert!(ledger.charge("other", 0.9, 1e-5).is_ok());
    }

    #[test]
    fn zero_cost_charges_never_exhaust() {
        let mut ledger = BudgetLedger::in_memory(Some(0.5));
        for _ in 0..100 {
            ledger.charge("nonprivate", 0.0, 0.0).unwrap();
        }
        assert_eq!(ledger.entry("nonprivate").spent_epsilon, 0.0);
    }

    #[test]
    fn unlimited_ledger_records_but_never_refuses() {
        let mut ledger = BudgetLedger::in_memory(None);
        for _ in 0..10 {
            ledger.charge("m", 5.0, 1e-5).unwrap();
        }
        assert_eq!(ledger.entry("m").spent_epsilon, 50.0);
        assert_eq!(ledger.remaining("m"), None);
    }

    #[test]
    fn state_survives_reopen() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut ledger = BudgetLedger::open(&path, Some(2.0)).unwrap();
            ledger.charge("a", 0.7, 1e-5).unwrap();
            ledger.charge("b", 1.1, 1e-6).unwrap();
        }
        let reopened = BudgetLedger::open(&path, Some(2.0)).unwrap();
        assert_eq!(reopened.entry("a").spent_epsilon, 0.7);
        assert_eq!(reopened.entry("b").spent_epsilon, 1.1);
        assert_eq!(reopened.entry("b").delta, 1e-6);
        assert_eq!(reopened.entry("never-charged").spent_epsilon, 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_ledger_files_are_typed_errors_not_resets() {
        let path = temp_path("corrupt");
        {
            let mut ledger = BudgetLedger::open(&path, Some(1.0)).unwrap();
            ledger.charge("m", 0.5, 1e-5).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            BudgetLedger::open(&path, Some(1.0)),
            Err(LedgerError::Store(_))
        ));
        // Truncation too.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(
            BudgetLedger::open(&path, Some(1.0)),
            Err(LedgerError::Store(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn codec_rejects_invalid_balances() {
        for (spent, delta) in [
            (f64::NAN, 1e-5),
            (-1.0, 1e-5),
            (0.5, f64::NAN),
            (0.5, 1.5),
            (0.5, -0.1),
        ] {
            let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::BUDGET_LEDGER);
            enc.usize(1).str("m").f64(spent).f64(delta);
            assert!(
                decode_entries(&enc.finish()).is_err(),
                "accepted spent={spent} delta={delta}"
            );
        }
        // Duplicate names are rejected.
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::BUDGET_LEDGER);
        enc.usize(2)
            .str("m")
            .f64(0.1)
            .f64(1e-5)
            .str("m")
            .f64(0.2)
            .f64(1e-5);
        assert!(decode_entries(&enc.finish()).is_err());
    }

    #[test]
    fn round_trip_is_exact() {
        let mut ledger = BudgetLedger::in_memory(None);
        ledger.charge("z", 0.123456789, 1e-5).unwrap();
        ledger.charge("a", 1.0 / 3.0, 1e-6).unwrap();
        let bytes = ledger.to_bytes();
        let decoded = decode_entries(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(
            decoded["a"].spent_epsilon.to_bits(),
            (1.0f64 / 3.0).to_bits()
        );
        // Deterministic encoding: same state, same bytes.
        assert_eq!(bytes, ledger.to_bytes());
    }
}
