//! Server-side observability: pre-registered handles over a
//! [`p3gm_obs::MetricsRegistry`], per-request instrumentation helpers, and
//! the scrape-time re-export of registry / ledger / thread-pool state that
//! `GET /metrics` serves as Prometheus text.
//!
//! Everything here is post-processing of values the server already
//! computed and released: metrics never feed back into sampling or budget
//! decisions, and nothing recorded here is persisted — the (ε, δ)
//! accounting state lives exclusively in the [`crate::ledger`].

use crate::http::{Response, ResponseBody};
use p3gm_obs::time::WallClock;
use p3gm_obs::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BOUNDS_SECONDS};

/// First-byte latency bounds for chunked streams: the interesting region
/// is sub-millisecond (the whole point of streaming), so the buckets lean
/// low.
const FIRST_BYTE_BOUNDS: &[f64] = &[
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.25, 1.0,
];

/// The server's metrics state: one registry plus cached handles for the
/// hot-path series (per-request lookups happen only for label values that
/// genuinely vary, like route and status).
pub(crate) struct ServerMetrics {
    pub(crate) registry: MetricsRegistry,
    /// The server's single real clock. The numeric crates never see it —
    /// they report counts; only this HTTP layer measures durations.
    pub(crate) clock: WallClock,
    in_flight: Gauge,
    keepalive_reuse: Counter,
    stream_first_byte: Histogram,
    stream_bytes: Counter,
    connections_open: Gauge,
    reactor_wakeups: Counter,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        let in_flight = registry.gauge(
            "p3gm_requests_in_flight",
            "Requests currently being served.",
            &[],
        );
        let keepalive_reuse = registry.counter(
            "p3gm_keepalive_reuse_total",
            "Requests served on an already-used keep-alive connection.",
            &[],
        );
        let stream_first_byte = registry.histogram(
            "p3gm_stream_first_byte_seconds",
            "Time from request parse to the first chunk of a streamed body.",
            FIRST_BYTE_BOUNDS,
            &[],
        );
        let stream_bytes = registry.counter(
            "p3gm_stream_bytes_total",
            "Body bytes produced by chunked streaming responses.",
            &[],
        );
        let connections_open = registry.gauge(
            "p3gm_connections_open",
            "Client connections currently open (accepted and not yet closed).",
            &[],
        );
        let reactor_wakeups = registry.counter(
            "p3gm_reactor_wakeups_total",
            "Reactor event-loop wakeups (poll returns); reactor core only.",
            &[],
        );
        ServerMetrics {
            registry,
            clock: WallClock::new(),
            in_flight,
            keepalive_reuse,
            stream_first_byte,
            stream_bytes,
            connections_open,
            reactor_wakeups,
        }
    }

    /// Mark a request in flight; the guard decrements on drop (panic-safe).
    /// The guard owns its gauge handle, so under the reactor core it can
    /// travel with the request across executor threads.
    pub(crate) fn begin_request(&self, reused_connection: bool) -> InFlightGuard {
        self.in_flight.add(1.0);
        if reused_connection {
            self.keepalive_reuse.inc();
        }
        InFlightGuard {
            gauge: self.in_flight.clone(),
        }
    }

    /// Mark a connection open; the guard decrements on drop. The
    /// thread-per-connection core scopes one guard per
    /// `serve_connection`; the reactor uses the paired
    /// [`ServerMetrics::connection_opened`] / `connection_closed` calls
    /// instead because open and close happen at different call sites.
    pub(crate) fn connection_guard(&self) -> ConnectionGuard {
        self.connections_open.add(1.0);
        ConnectionGuard {
            gauge: self.connections_open.clone(),
        }
    }

    /// Mark a connection accepted (reactor core).
    pub(crate) fn connection_opened(&self) {
        self.connections_open.add(1.0);
    }

    /// Mark a connection closed (reactor core).
    pub(crate) fn connection_closed(&self) {
        self.connections_open.add(-1.0);
    }

    /// Count one reactor event-loop wakeup.
    pub(crate) fn reactor_wakeup(&self) {
        self.reactor_wakeups.inc();
    }

    /// Record one completed request.
    pub(crate) fn observe_request(&self, route: &str, status: u16, seconds: f64) {
        self.registry
            .counter(
                "p3gm_requests_total",
                "HTTP requests served, by route pattern and status.",
                &[("route", route), ("status", &status.to_string())],
            )
            .inc();
        self.registry
            .histogram(
                "p3gm_request_duration_seconds",
                "Request service time from parse to response ready, by route pattern \
                 (streamed bodies generate during the write; see the stream series).",
                LATENCY_BOUNDS_SECONDS,
                &[("route", route)],
            )
            .observe(seconds);
    }

    /// The monotone ledger-exhaustion counter (satellite fix: 429s are now
    /// observable over time, and — deliberately — never persisted).
    pub(crate) fn budget_denial(&self, model: &str) {
        self.registry
            .counter(
                "p3gm_budget_denials_total",
                "Sampling requests refused with 429 because the model's privacy budget is exhausted.",
                &[("model", model)],
            )
            .inc();
    }

    /// Wrap a chunked response body so the stream reports its first-byte
    /// latency (relative to `start_nanos` on the server clock) and its
    /// produced bytes. Buffered bodies pass through untouched.
    pub(crate) fn instrument_stream(&self, response: &mut Response, start_nanos: u64) {
        let body = std::mem::replace(&mut response.body, ResponseBody::Buffered(Vec::new()));
        match body {
            ResponseBody::Buffered(bytes) => response.body = ResponseBody::Buffered(bytes),
            ResponseBody::Chunked(mut source) => {
                let first_byte = self.stream_first_byte.clone();
                let bytes_total = self.stream_bytes.clone();
                let clock_now = {
                    // Capture only cheap handles in the closure; the clock
                    // origin is shared through the histogram's span math.
                    let start = start_nanos;
                    let clock = self.clock_nanos_fn();
                    move || (clock)().saturating_sub(start) as f64 * 1e-9
                };
                let mut first = true;
                response.body = ResponseBody::Chunked(Box::new(move || {
                    let block = source();
                    if let Some(block) = &block {
                        if first {
                            first = false;
                            first_byte.observe(clock_now());
                        }
                        bytes_total.add(block.len() as u64);
                    }
                    block
                }));
            }
        }
    }

    /// A `'static` closure reading the server clock, for instrumented
    /// stream closures that outlive this borrow.
    fn clock_nanos_fn(&self) -> impl Fn() -> u64 + Send + 'static {
        // WallClock is origin + elapsed; re-deriving from a cloned origin
        // would need Clone, so share via Arc-free trick: read the current
        // value now and measure deltas with a fresh clock. Simpler and
        // exact: a fresh WallClock's zero is "now", which is precisely the
        // reference the caller's start_nanos was taken against only if both
        // use the same clock — so instead capture a new clock and rebase.
        let now = p3gm_obs::TimeSource::now_nanos(&self.clock);
        let fresh = WallClock::new();
        move || now + p3gm_obs::TimeSource::now_nanos(&fresh)
    }

    /// Re-export a registry-stats snapshot (the same snapshot `GET /stats`
    /// serializes — both surfaces flow through
    /// `Service::registry_snapshot`, so they cannot drift).
    pub(crate) fn export_registry_stats(&self, s: &crate::registry::RegistryStats) {
        let gauge = |name: &str, help: &str, v: u64| {
            self.registry.gauge(name, help, &[]).set(v as f64);
        };
        let counter = |name: &str, help: &str, v: u64| {
            // `store`, not `add`: the registry's atomics are the source of
            // truth; these series mirror them at snapshot time.
            self.registry.counter(name, help, &[]).store(v);
        };
        gauge(
            "p3gm_registry_models",
            "Models registered (headers; weights load lazily).",
            s.models,
        );
        gauge(
            "p3gm_registry_resident_models",
            "Models with decoded weights currently resident.",
            s.resident_models,
        );
        gauge(
            "p3gm_registry_resident_bytes",
            "Estimated resident model-weight bytes.",
            s.resident_bytes,
        );
        gauge(
            "p3gm_registry_max_resident_bytes",
            "Configured resident-bytes ceiling (0 = unlimited).",
            s.max_resident_bytes,
        );
        counter(
            "p3gm_registry_loads_total",
            "Weight decodes (cold loads).",
            s.loads,
        );
        counter(
            "p3gm_registry_evictions_total",
            "LRU evictions back to header-only entries.",
            s.evictions,
        );
        counter(
            "p3gm_registry_hits_total",
            "Lookups served by an already-resident model.",
            s.hits,
        );
        counter(
            "p3gm_registry_misses_total",
            "Lookups that had to decode (or wait for) weights.",
            s.misses,
        );
        counter(
            "p3gm_registry_load_failures_total",
            "Weight decodes that failed.",
            s.load_failures,
        );
        counter(
            "p3gm_registry_header_peeks_total",
            "Snapshot header reads (registration and reload validation).",
            s.header_peeks,
        );
    }

    /// Re-export the process-wide thread-pool counters from
    /// `p3gm-parallel` (scrape-time snapshot).
    pub(crate) fn export_pool_stats(&self) {
        let pool = p3gm_parallel::pool_stats();
        self.registry
            .gauge(
                "p3gm_pool_chunks_in_flight",
                "Parallel work chunks executing right now (queue depth).",
                &[],
            )
            .set(pool.chunks_in_flight as f64);
        self.registry
            .counter(
                "p3gm_pool_chunks_total",
                "Parallel work chunks dispatched since process start.",
                &[],
            )
            .store(pool.chunks_total);
        self.registry
            .counter(
                "p3gm_pool_scope_tasks_total",
                "Task-parallel scope closures run since process start.",
                &[],
            )
            .store(pool.scope_tasks_total);
    }

    /// Set the per-model ledger gauges from one ledger lock (spent is
    /// always exported; remaining only when a budget ceiling is set).
    pub(crate) fn export_ledger(&self, model: &str, spent: f64, remaining: Option<f64>) {
        self.registry
            .gauge(
                "p3gm_epsilon_spent",
                "Cumulative privacy budget (epsilon) spent per model.",
                &[("model", model)],
            )
            .set(spent);
        if let Some(remaining) = remaining {
            self.registry
                .gauge(
                    "p3gm_epsilon_remaining",
                    "Remaining privacy budget (epsilon) per model under the configured ceiling.",
                    &[("model", model)],
                )
                .set(remaining);
        }
    }

    /// Render the exposition body.
    pub(crate) fn render(&self) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
            body: ResponseBody::Buffered(self.registry.render().into_bytes()),
        }
    }
}

/// RAII in-flight marker from [`ServerMetrics::begin_request`]. Owns its
/// gauge handle so it is `Send` and can outlive the borrow of
/// `ServerMetrics` (the reactor core moves it between threads with the
/// in-flight response).
pub(crate) struct InFlightGuard {
    gauge: Gauge,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.gauge.add(-1.0);
    }
}

/// RAII open-connection marker from [`ServerMetrics::connection_guard`].
pub(crate) struct ConnectionGuard {
    gauge: Gauge,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.gauge.add(-1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_observation_renders_expected_series() {
        let m = ServerMetrics::new();
        {
            let _guard = m.begin_request(false);
            m.observe_request("/healthz", 200, 0.0003);
        }
        let _g2 = m.begin_request(true);
        m.budget_denial("mnist");
        let text = m.registry.render();
        assert!(text.contains("p3gm_requests_total{route=\"/healthz\",status=\"200\"} 1"));
        assert!(text.contains("p3gm_budget_denials_total{model=\"mnist\"} 1"));
        assert!(text.contains("p3gm_keepalive_reuse_total 1"));
        // One request finished (guard dropped), one still in flight.
        assert!(text.contains("p3gm_requests_in_flight 1"));
    }

    #[test]
    fn stream_instrumentation_counts_bytes_and_first_byte() {
        let m = ServerMetrics::new();
        let mut remaining = vec![b"world".to_vec(), b"hello ".to_vec()];
        let source: crate::http::ChunkSource = Box::new(move || remaining.pop());
        let mut response = Response::chunked("text/plain", source);
        m.instrument_stream(&mut response, p3gm_obs::TimeSource::now_nanos(&m.clock));
        let body = response.into_body_bytes();
        assert_eq!(body, b"hello world");
        assert_eq!(m.stream_bytes.get(), 11);
        assert_eq!(m.stream_first_byte.count(), 1);
    }

    #[test]
    fn connection_and_reactor_series_render() {
        let m = ServerMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.reactor_wakeup();
        m.reactor_wakeup();
        m.reactor_wakeup();
        let guard = m.connection_guard();
        let text = m.registry.render();
        assert!(text.contains("p3gm_connections_open 2"), "{text}");
        assert!(text.contains("p3gm_reactor_wakeups_total 3"), "{text}");
        drop(guard);
        assert!(m.registry.render().contains("p3gm_connections_open 1"));
    }

    #[test]
    fn in_flight_guard_is_owned_and_sendable() {
        let m = ServerMetrics::new();
        let guard = m.begin_request(false);
        // The reactor hands guards across threads with the request.
        std::thread::spawn(move || drop(guard)).join().unwrap();
        assert!(m.registry.render().contains("p3gm_requests_in_flight 0"));
    }

    #[test]
    fn export_ledger_sets_gauges() {
        let m = ServerMetrics::new();
        m.export_ledger("adult", 2.5, Some(7.5));
        m.export_ledger("mnist", 1.0, None);
        let text = m.registry.render();
        assert!(text.contains("p3gm_epsilon_spent{model=\"adult\"} 2.5"));
        assert!(text.contains("p3gm_epsilon_remaining{model=\"adult\"} 7.5"));
        assert!(text.contains("p3gm_epsilon_spent{model=\"mnist\"} 1"));
        assert!(!text.contains("p3gm_epsilon_remaining{model=\"mnist\"}"));
    }

    #[test]
    fn export_pool_stats_renders() {
        let m = ServerMetrics::new();
        m.export_pool_stats();
        let text = m.registry.render();
        assert!(text.contains("p3gm_pool_chunks_total"));
        assert!(text.contains("p3gm_pool_chunks_in_flight"));
    }
}
