//! Strict HTTP/1.1 request parsing and response writing over `std::io`.
//!
//! The parser mirrors the decoder-hardening discipline of `p3gm-store`:
//! **no input, however malformed, can cause a panic** — every failure is
//! a typed [`HttpError`] that maps to a 4xx/5xx status via
//! [`HttpError::status`]. All reads are bounded by [`Limits`] (head size,
//! header count, body size), every slice access is checked, and a crafted
//! `Content-Length` cannot trigger an unbounded allocation because the
//! body is read incrementally up to the configured cap.
//!
//! Scope is deliberately small: the two methods the service routes
//! (`GET` / `POST`), `Content-Length` bodies only (a `Transfer-Encoding`
//! header is rejected with 501 rather than mis-framed), one request per
//! connection (`Connection: close` on every response). [`read_request`]
//! is generic over [`Read`] so the proptest suite can drive it with
//! arbitrary in-memory bytes — the same code path the TCP socket uses.

use std::io::{Read, Write};

/// Request methods the service understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target exactly as sent (always starts with `/`).
    pub target: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of the first header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Hard input limits enforced while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (before the blank line).
    pub max_head_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum body bytes (`Content-Length` above this is rejected with
    /// 413 before any body byte is read).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Typed request-parse failures. Each maps to a response status via
/// [`HttpError::status`]; none of them is ever a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed (or an in-memory buffer ended) before a
    /// complete request was read.
    Incomplete,
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine,
    /// The method is a valid token but not one the service supports.
    UnsupportedMethod,
    /// The HTTP version is not 1.0 or 1.1.
    UnsupportedVersion,
    /// A header line is malformed (missing colon, bad name token,
    /// control bytes, obsolete line folding).
    BadHeader,
    /// Request line + headers exceed [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// More header fields than [`Limits::max_headers`].
    TooManyHeaders,
    /// `Content-Length` is unparsable or two copies disagree.
    BadContentLength,
    /// `Content-Length` exceeds [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// A `Transfer-Encoding` header was sent (chunked bodies are not
    /// implemented; rejecting beats mis-framing).
    UnsupportedTransferEncoding,
    /// An I/O failure while reading (timeouts surface here).
    Io(std::io::ErrorKind),
}

impl HttpError {
    /// The response status this failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Incomplete
            | HttpError::BadRequestLine
            | HttpError::BadHeader
            | HttpError::BadContentLength => 400,
            HttpError::UnsupportedMethod => 405,
            HttpError::UnsupportedVersion => 505,
            HttpError::HeadTooLarge | HttpError::TooManyHeaders => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::Io(kind) => match kind {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => 408,
                _ => 400,
            },
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Incomplete => write!(f, "connection closed before request completed"),
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::UnsupportedMethod => write!(f, "method not allowed"),
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::BadHeader => write!(f, "malformed header"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::TooManyHeaders => write!(f, "too many headers"),
            HttpError::BadContentLength => write!(f, "invalid content-length"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding not supported")
            }
            HttpError::Io(kind) => write!(f, "i/o failure reading request: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads and parses one request from `reader`, enforcing `limits`.
///
/// Generic over [`Read`] so arbitrary byte streams (the proptest sweep)
/// exercise exactly the code path real sockets do. Returns a typed
/// [`HttpError`] on any malformed, oversized, truncated or unsupported
/// input — never panics.
pub fn read_request<R: Read>(reader: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut tmp = [0u8; 1024];
    // Read until the blank line terminating the head, bounded by
    // max_head_bytes (+3 so a terminator straddling the cap still parses).
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            if pos > limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            break pos;
        }
        if buf.len() > limits.max_head_bytes + 3 {
            return Err(HttpError::HeadTooLarge);
        }
        let n = reader.read(&mut tmp).map_err(|e| HttpError::Io(e.kind()))?;
        if n == 0 {
            return Err(HttpError::Incomplete);
        }
        buf.extend_from_slice(&tmp[..n]);
    };
    let (method, target, headers) = parse_head(&buf[..head_end], limits)?;

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let content_length = content_length(&headers)?;
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    // Whatever followed the head in the buffer is the body prefix; bytes
    // beyond Content-Length (pipelining) are ignored — every response
    // closes the connection.
    let mut body: Vec<u8> = buf.get(head_end + 4..).unwrap_or(&[]).to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        let want = (content_length - body.len()).min(tmp.len());
        let n = reader
            .read(&mut tmp[..want])
            .map_err(|e| HttpError::Io(e.kind()))?;
        if n == 0 {
            return Err(HttpError::Incomplete);
        }
        body.extend_from_slice(&tmp[..n]);
    }

    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line and header lines (everything before the blank
/// line, CRLF separators).
#[allow(clippy::type_complexity)]
fn parse_head(
    head: &[u8],
    limits: &Limits,
) -> Result<(Method, String, Vec<(String, String)>), HttpError> {
    let mut lines = split_crlf(head);
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let (method, target) = parse_request_line(request_line)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        headers.push(parse_header_line(line)?);
    }
    Ok((method, target, headers))
}

/// Splits on `\r\n` exactly (a bare `\n` or stray `\r` stays inside the
/// line and is rejected by the per-line charset checks).
fn split_crlf(head: &[u8]) -> impl Iterator<Item = &[u8]> {
    let mut rest = head;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        match rest.windows(2).position(|w| w == b"\r\n") {
            Some(pos) => {
                let line = &rest[..pos];
                rest = rest.get(pos + 2..).unwrap_or(&[]);
                Some(line)
            }
            None => {
                let line = rest;
                rest = &[];
                Some(line)
            }
        }
    })
}

fn parse_request_line(line: &[u8]) -> Result<(Method, String), HttpError> {
    let mut parts = line.split(|&b| b == b' ');
    let method = parts.next().ok_or(HttpError::BadRequestLine)?;
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }

    if method.is_empty() || !method.iter().all(|&b| is_token_byte(b)) {
        return Err(HttpError::BadRequestLine);
    }
    let method = match method {
        b"GET" => Method::Get,
        b"POST" => Method::Post,
        _ => return Err(HttpError::UnsupportedMethod),
    };

    if target.first() != Some(&b'/') || !target.iter().all(|&b| (0x21..=0x7E).contains(&b)) {
        return Err(HttpError::BadRequestLine);
    }
    let target = String::from_utf8(target.to_vec()).map_err(|_| HttpError::BadRequestLine)?;

    match version {
        b"HTTP/1.1" | b"HTTP/1.0" => Ok((method, target)),
        v if v.starts_with(b"HTTP/") => Err(HttpError::UnsupportedVersion),
        _ => Err(HttpError::BadRequestLine),
    }
}

fn parse_header_line(line: &[u8]) -> Result<(String, String), HttpError> {
    // Obsolete line folding (continuation lines starting with SP/HTAB)
    // is rejected outright, as RFC 7230 recommends for new parsers.
    if matches!(line.first(), Some(b' ' | b'\t')) {
        return Err(HttpError::BadHeader);
    }
    let colon = line
        .iter()
        .position(|&b| b == b':')
        .ok_or(HttpError::BadHeader)?;
    let name = &line[..colon];
    if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
        return Err(HttpError::BadHeader);
    }
    let value = trim_ows(line.get(colon + 1..).unwrap_or(&[]));
    if !value
        .iter()
        .all(|&b| b == b'\t' || (0x20..=0x7E).contains(&b) || b >= 0x80)
    {
        return Err(HttpError::BadHeader);
    }
    let name = String::from_utf8_lossy(name).to_ascii_lowercase();
    let value = String::from_utf8_lossy(value).into_owned();
    Ok((name, value))
}

/// `tchar` from RFC 7230 §3.2.6.
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

fn trim_ows(mut bytes: &[u8]) -> &[u8] {
    while matches!(bytes.first(), Some(b' ' | b'\t')) {
        bytes = &bytes[1..];
    }
    while matches!(bytes.last(), Some(b' ' | b'\t')) {
        bytes = &bytes[..bytes.len() - 1];
    }
    bytes
}

fn content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let mut length: Option<usize> = None;
    for (name, value) in headers {
        if name == "content-length" {
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadContentLength);
            }
            let parsed: usize = value.parse().map_err(|_| HttpError::BadContentLength)?;
            match length {
                Some(existing) if existing != parsed => {
                    return Err(HttpError::BadContentLength);
                }
                _ => length = Some(parsed),
            }
        }
    }
    Ok(length.unwrap_or(0))
}

/// One HTTP response, written with `Connection: close` and an exact
/// `Content-Length`.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Additional response headers (e.g. the privacy-budget trailers).
    pub extra_headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from an already-serialized deterministic body.
    pub fn json(status: u16, body: &crate::json::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.to_string().into_bytes(),
        }
    }

    /// A CSV response.
    pub fn csv(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/csv",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds a response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the status line, headers and body to `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The canonical reason phrase for the status codes this service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse(b"GET /models HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/models");
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /models/m/sample HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"seed\":1}")
                .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.target, "/models/m/sample");
        assert_eq!(req.body, b"{\"seed\":1}");
        // Bytes past Content-Length are ignored (one request per
        // connection, pipelining unsupported).
        let req = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nokEXTRA").unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn header_names_are_lowercased_and_values_trimmed() {
        let req = parse(b"GET / HTTP/1.1\r\nX-Thing:   spaced value  \r\n\r\n").unwrap();
        assert_eq!(req.header("x-thing"), Some("spaced value"));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET /\x01 HTTP/1.1\r\n\r\n",
            b"G@T / HTTP/1.1\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
        ] {
            assert_eq!(parse(bad).unwrap_err().status(), 400, "{bad:?}");
        }
        assert_eq!(
            parse(b"PUT / HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedMethod
        );
        assert_eq!(
            parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedVersion
        );
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for bad in [
            &b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: ok\r\n folded\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: bad\x01byte\r\n\r\n",
        ] {
            assert_eq!(parse(bad).unwrap_err(), HttpError::BadHeader, "{bad:?}");
        }
    }

    #[test]
    fn content_length_abuse_is_rejected() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx")
                .unwrap_err(),
            HttpError::BadContentLength
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength
        );
        // Over the body cap: rejected before reading any body byte.
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            Limits::default().max_body_bytes + 1
        );
        assert_eq!(parse(huge.as_bytes()).unwrap_err(), HttpError::BodyTooLarge);
        // Duplicate but equal values are fine.
        assert!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok").is_ok()
        );
    }

    #[test]
    fn truncated_requests_are_incomplete() {
        for bad in [
            &b""[..],
            b"GET / HT",
            b"GET / HTTP/1.1\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
        ] {
            assert_eq!(parse(bad).unwrap_err(), HttpError::Incomplete, "{bad:?}");
        }
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let limits = Limits {
            max_head_bytes: 128,
            ..Limits::default()
        };
        let big = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(256));
        assert_eq!(
            read_request(&mut Cursor::new(big.into_bytes()), &limits).unwrap_err(),
            HttpError::HeadTooLarge
        );
        // A stream that never terminates its head is also cut off at the cap.
        let endless = vec![b'A'; 4096];
        assert_eq!(
            read_request(&mut Cursor::new(endless), &limits).unwrap_err(),
            HttpError::HeadTooLarge
        );
    }

    #[test]
    fn too_many_headers_are_rejected() {
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            req.push_str(&format!("H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        assert_eq!(
            parse(req.as_bytes()).unwrap_err(),
            HttpError::TooManyHeaders
        );
    }

    #[test]
    fn transfer_encoding_is_rejected_not_misframed() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedTransferEncoding
        );
    }

    #[test]
    fn every_error_maps_to_a_4xx_or_5xx_status() {
        for e in [
            HttpError::Incomplete,
            HttpError::BadRequestLine,
            HttpError::UnsupportedMethod,
            HttpError::UnsupportedVersion,
            HttpError::BadHeader,
            HttpError::HeadTooLarge,
            HttpError::TooManyHeaders,
            HttpError::BadContentLength,
            HttpError::BodyTooLarge,
            HttpError::UnsupportedTransferEncoding,
            HttpError::Io(std::io::ErrorKind::TimedOut),
            HttpError::Io(std::io::ErrorKind::ConnectionReset),
        ] {
            let status = e.status();
            assert!((400..=599).contains(&status), "{e:?} -> {status}");
            assert!(!e.to_string().is_empty());
            assert_ne!(reason_phrase(status), "");
        }
    }

    #[test]
    fn responses_serialize_with_exact_framing() {
        let resp = Response::json(200, &crate::json::Json::Bool(true))
            .with_header("x-p3gm-privacy", "(1.0, 1e-5)-DP");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("x-p3gm-privacy: (1.0, 1e-5)-DP\r\n"));
        assert!(text.ends_with("\r\n\r\ntrue"));
    }
}
