//! Strict HTTP/1.1 request parsing and response writing over `std::io`.
//!
//! The parser mirrors the decoder-hardening discipline of `p3gm-store`:
//! **no input, however malformed, can cause a panic** — every failure is
//! a typed [`HttpError`] that maps to a 4xx/5xx status via
//! [`HttpError::status`]. All reads are bounded by [`Limits`] (head size,
//! header count, body size), every slice access is checked, and a crafted
//! `Content-Length` cannot trigger an unbounded allocation because the
//! body is read incrementally up to the configured cap.
//!
//! Scope is deliberately small: the two methods the service routes
//! (`GET` / `POST`) and `Content-Length` request bodies only (a request
//! `Transfer-Encoding` header is rejected with 501 rather than
//! mis-framed). Connections are persistent: [`RequestReader`] reads a
//! *sequence* of requests from one stream, carrying bytes that arrive
//! past one request's body over to the next (HTTP/1.1 keep-alive and
//! pipelining), and [`Request::keep_alive`] implements the `Connection`
//! header semantics of RFC 7230 §6.3. Responses are either fully
//! buffered with an exact `Content-Length` or streamed with RFC 7230
//! §4.1 chunked `Transfer-Encoding` ([`ResponseBody`]).
//!
//! [`read_request`] and [`RequestReader`] are generic over [`Read`] so
//! the proptest suite can drive them with arbitrary in-memory bytes —
//! the same code path the TCP socket uses. [`ResponseReader`] is the
//! matching minimal *client* (used by the benches, examples and
//! integration tests): it parses one response per call, de-chunking
//! streamed bodies, without reading past the response's end — which is
//! what lets a client reuse a keep-alive connection.

use std::io::{Read, Write};

/// Request methods the service understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// The HTTP protocol versions the service accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0`: connections close by default, chunked responses are
    /// not available (bodies are buffered with a `Content-Length`).
    Http10,
    /// `HTTP/1.1`: connections persist by default, responses may stream
    /// with chunked `Transfer-Encoding`.
    Http11,
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target exactly as sent (always starts with `/`).
    pub target: String,
    /// The protocol version of the request line.
    pub version: Version,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of the first header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether this request asks for the connection to stay open after
    /// the response (RFC 7230 §6.3): HTTP/1.1 defaults to keep-alive
    /// unless a `Connection` header lists `close`; HTTP/1.0 defaults to
    /// close unless one lists `keep-alive` (and none lists `close`).
    pub fn keep_alive(&self) -> bool {
        let mut close = false;
        let mut keep = false;
        for (name, value) in &self.headers {
            if name == "connection" {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep = true;
                    }
                }
            }
        }
        match self.version {
            Version::Http11 => !close,
            Version::Http10 => keep && !close,
        }
    }
}

/// Hard input limits enforced while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (before the blank line).
    pub max_head_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum body bytes (`Content-Length` above this is rejected with
    /// 413 before any body byte is read).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Typed request-parse failures. Each maps to a response status via
/// [`HttpError::status`]; none of them is ever a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed (or an in-memory buffer ended) before a
    /// complete request was read.
    Incomplete,
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine,
    /// The method is a valid token but not one the service supports.
    UnsupportedMethod,
    /// The HTTP version is not 1.0 or 1.1.
    UnsupportedVersion,
    /// A header line is malformed (missing colon, bad name token,
    /// control bytes, obsolete line folding).
    BadHeader,
    /// Request line + headers exceed [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// More header fields than [`Limits::max_headers`].
    TooManyHeaders,
    /// `Content-Length` is unparsable or two copies disagree.
    BadContentLength,
    /// `Content-Length` exceeds [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// A `Transfer-Encoding` header was sent (chunked request bodies are
    /// not implemented; rejecting beats mis-framing).
    UnsupportedTransferEncoding,
    /// An I/O failure while reading (timeouts surface here: `TimedOut` /
    /// `WouldBlock` map to 408, so a stalled or slow-trickling client
    /// gets a typed Request Timeout, not a pinned worker).
    Io(std::io::ErrorKind),
}

impl HttpError {
    /// The response status this failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Incomplete
            | HttpError::BadRequestLine
            | HttpError::BadHeader
            | HttpError::BadContentLength => 400,
            HttpError::UnsupportedMethod => 405,
            HttpError::UnsupportedVersion => 505,
            HttpError::HeadTooLarge | HttpError::TooManyHeaders => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::Io(kind) => match kind {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => 408,
                _ => 400,
            },
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Incomplete => write!(f, "connection closed before request completed"),
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::UnsupportedMethod => write!(f, "method not allowed"),
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::BadHeader => write!(f, "malformed header"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::TooManyHeaders => write!(f, "too many headers"),
            HttpError::BadContentLength => write!(f, "invalid content-length"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding not supported")
            }
            HttpError::Io(kind) => match kind {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                    write!(f, "timed out reading request")
                }
                _ => write!(f, "i/o failure reading request: {kind:?}"),
            },
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads a sequence of requests from one connection, enforcing `limits`
/// per request and carrying bytes that arrive past one request's body
/// over to the next (keep-alive and pipelining).
///
/// Generic over [`Read`] so arbitrary byte streams (the proptest sweep)
/// exercise exactly the code path real sockets do.
#[derive(Debug)]
pub struct RequestReader<R> {
    reader: R,
    carry: Vec<u8>,
}

impl<R> RequestReader<R> {
    /// Wraps `reader`.
    pub fn new(reader: R) -> Self {
        RequestReader {
            reader,
            carry: Vec::new(),
        }
    }

    /// Whether bytes of a (possibly pipelined) next request are already
    /// buffered — if so, the next [`RequestReader::next_request`] makes
    /// progress without touching the underlying reader.
    pub fn has_buffered(&self) -> bool {
        !self.carry.is_empty()
    }

    /// The wrapped reader (for e.g. re-arming a read deadline between
    /// requests).
    pub fn reader_mut(&mut self) -> &mut R {
        &mut self.reader
    }
}

impl<R: Read> RequestReader<R> {
    /// Reads and parses the next request on the connection. Returns a
    /// typed [`HttpError`] on any malformed, oversized, truncated or
    /// unsupported input — never panics. After an error the carried
    /// buffer is unreliable (framing is lost); the connection must be
    /// closed.
    pub fn next_request(&mut self, limits: &Limits) -> Result<Request, HttpError> {
        let mut tmp = [0u8; 1024];
        // Read until the blank line terminating the head, bounded by
        // max_head_bytes (+3 so a terminator straddling the cap parses).
        let head_end = loop {
            // RFC 7230 §3.5 robustness: ignore empty line(s) received
            // prior to the request line (e.g. a client that terminates
            // each request frame with an extra CRLF).
            while self.carry.starts_with(b"\r\n") {
                self.carry.drain(..2);
            }
            if let Some(pos) = find_head_end(&self.carry) {
                if pos > limits.max_head_bytes {
                    return Err(HttpError::HeadTooLarge);
                }
                break pos;
            }
            if self.carry.len() > limits.max_head_bytes + 3 {
                return Err(HttpError::HeadTooLarge);
            }
            let n = self
                .reader
                .read(&mut tmp)
                .map_err(|e| HttpError::Io(e.kind()))?;
            if n == 0 {
                return Err(HttpError::Incomplete);
            }
            self.carry.extend_from_slice(&tmp[..n]);
        };
        let (method, target, version, headers) = parse_head(&self.carry[..head_end], limits)?;

        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        let content_length = content_length(&headers)?;
        if content_length > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }

        // Read exactly Content-Length body bytes past the head; anything
        // after them stays in the carry buffer as the next request.
        let body_start = head_end + 4;
        let frame_end = body_start + content_length;
        while self.carry.len() < frame_end {
            let want = (frame_end - self.carry.len()).min(tmp.len());
            let n = self
                .reader
                .read(&mut tmp[..want])
                .map_err(|e| HttpError::Io(e.kind()))?;
            if n == 0 {
                return Err(HttpError::Incomplete);
            }
            self.carry.extend_from_slice(&tmp[..n]);
        }
        let rest = self.carry.split_off(frame_end);
        let frame = std::mem::replace(&mut self.carry, rest);
        let body = frame.get(body_start..).unwrap_or(&[]).to_vec();

        Ok(Request {
            method,
            target,
            version,
            headers,
            body,
        })
    }
}

/// Reads and parses one request from `reader`, enforcing `limits`. The
/// one-shot convenience over [`RequestReader`]; bytes past the request's
/// body are discarded.
pub fn read_request<R: Read>(reader: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    RequestReader::new(reader).next_request(limits)
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line and header lines (everything before the blank
/// line, CRLF separators).
#[allow(clippy::type_complexity)]
fn parse_head(
    head: &[u8],
    limits: &Limits,
) -> Result<(Method, String, Version, Vec<(String, String)>), HttpError> {
    let mut lines = split_crlf(head);
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let (method, target, version) = parse_request_line(request_line)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        headers.push(parse_header_line(line)?);
    }
    Ok((method, target, version, headers))
}

/// Splits on `\r\n` exactly (a bare `\n` or stray `\r` stays inside the
/// line and is rejected by the per-line charset checks).
fn split_crlf(head: &[u8]) -> impl Iterator<Item = &[u8]> {
    let mut rest = head;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        match rest.windows(2).position(|w| w == b"\r\n") {
            Some(pos) => {
                let line = &rest[..pos];
                rest = rest.get(pos + 2..).unwrap_or(&[]);
                Some(line)
            }
            None => {
                let line = rest;
                rest = &[];
                Some(line)
            }
        }
    })
}

fn parse_request_line(line: &[u8]) -> Result<(Method, String, Version), HttpError> {
    let mut parts = line.split(|&b| b == b' ');
    let method = parts.next().ok_or(HttpError::BadRequestLine)?;
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }

    if method.is_empty() || !method.iter().all(|&b| is_token_byte(b)) {
        return Err(HttpError::BadRequestLine);
    }
    let method = match method {
        b"GET" => Method::Get,
        b"POST" => Method::Post,
        _ => return Err(HttpError::UnsupportedMethod),
    };

    if target.first() != Some(&b'/') || !target.iter().all(|&b| (0x21..=0x7E).contains(&b)) {
        return Err(HttpError::BadRequestLine);
    }
    let target = String::from_utf8(target.to_vec()).map_err(|_| HttpError::BadRequestLine)?;

    match version {
        b"HTTP/1.1" => Ok((method, target, Version::Http11)),
        b"HTTP/1.0" => Ok((method, target, Version::Http10)),
        v if v.starts_with(b"HTTP/") => Err(HttpError::UnsupportedVersion),
        _ => Err(HttpError::BadRequestLine),
    }
}

fn parse_header_line(line: &[u8]) -> Result<(String, String), HttpError> {
    // Obsolete line folding (continuation lines starting with SP/HTAB)
    // is rejected outright, as RFC 7230 recommends for new parsers.
    if matches!(line.first(), Some(b' ' | b'\t')) {
        return Err(HttpError::BadHeader);
    }
    let colon = line
        .iter()
        .position(|&b| b == b':')
        .ok_or(HttpError::BadHeader)?;
    let name = &line[..colon];
    if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
        return Err(HttpError::BadHeader);
    }
    let value = trim_ows(line.get(colon + 1..).unwrap_or(&[]));
    if !value
        .iter()
        .all(|&b| b == b'\t' || (0x20..=0x7E).contains(&b) || b >= 0x80)
    {
        return Err(HttpError::BadHeader);
    }
    let name = String::from_utf8_lossy(name).to_ascii_lowercase();
    let value = String::from_utf8_lossy(value).into_owned();
    Ok((name, value))
}

/// `tchar` from RFC 7230 §3.2.6.
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

fn trim_ows(mut bytes: &[u8]) -> &[u8] {
    while matches!(bytes.first(), Some(b' ' | b'\t')) {
        bytes = &bytes[1..];
    }
    while matches!(bytes.last(), Some(b' ' | b'\t')) {
        bytes = &bytes[..bytes.len() - 1];
    }
    bytes
}

fn content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let mut length: Option<usize> = None;
    for (name, value) in headers {
        if name == "content-length" {
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadContentLength);
            }
            let parsed: usize = value.parse().map_err(|_| HttpError::BadContentLength)?;
            match length {
                Some(existing) if existing != parsed => {
                    return Err(HttpError::BadContentLength);
                }
                _ => length = Some(parsed),
            }
        }
    }
    Ok(length.unwrap_or(0))
}

/// A pull-based producer of response body chunks: each call yields the
/// next block of bytes, `None` when the body is complete.
pub type ChunkSource = Box<dyn FnMut() -> Option<Vec<u8>> + Send>;

/// How a response body is framed on the wire.
pub enum ResponseBody {
    /// The whole body up front: written with an exact `Content-Length`.
    Buffered(Vec<u8>),
    /// A lazily-produced body: written with RFC 7230 §4.1 chunked
    /// `Transfer-Encoding`, one wire chunk per yielded block, flushed as
    /// produced so the first byte leaves before the last row is
    /// generated. Empty blocks are skipped (a zero-length wire chunk
    /// would terminate the body early).
    Chunked(ChunkSource),
}

impl std::fmt::Debug for ResponseBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResponseBody::Buffered(bytes) => f.debug_tuple("Buffered").field(&bytes.len()).finish(),
            ResponseBody::Chunked(_) => f.debug_tuple("Chunked").field(&"..").finish(),
        }
    }
}

/// One HTTP response. Buffered bodies are written with an exact
/// `Content-Length`; chunked bodies stream with `Transfer-Encoding:
/// chunked`. The `Connection` header is decided at write time by the
/// connection state machine ([`Response::write_to`]'s `keep_alive`).
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Additional response headers (e.g. the privacy-budget trailers).
    pub extra_headers: Vec<(String, String)>,
    /// The response body.
    pub body: ResponseBody,
}

impl Response {
    /// A JSON response from an already-serialized deterministic body.
    pub fn json(status: u16, body: &crate::json::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: ResponseBody::Buffered(body.to_string().into_bytes()),
        }
    }

    /// A CSV response.
    pub fn csv(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/csv",
            extra_headers: Vec::new(),
            body: ResponseBody::Buffered(body.into_bytes()),
        }
    }

    /// A 200 response streaming `source`'s blocks with chunked
    /// `Transfer-Encoding`.
    pub fn chunked(content_type: &'static str, source: ChunkSource) -> Response {
        Response {
            status: 200,
            content_type,
            extra_headers: Vec::new(),
            body: ResponseBody::Chunked(source),
        }
    }

    /// Adds a response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Drains a chunked body into a buffered one (for HTTP/1.0 clients,
    /// which cannot parse chunked `Transfer-Encoding`). Buffered bodies
    /// are returned unchanged.
    pub fn into_buffered(mut self) -> Response {
        self.body = ResponseBody::Buffered(self.drain_body_bytes());
        self
    }

    /// The complete body bytes, draining a chunked source if necessary
    /// (test and HTTP/1.0 convenience — streaming callers use
    /// [`Response::write_to`]).
    pub fn into_body_bytes(mut self) -> Vec<u8> {
        self.drain_body_bytes()
    }

    fn drain_body_bytes(&mut self) -> Vec<u8> {
        match &mut self.body {
            ResponseBody::Buffered(bytes) => std::mem::take(bytes),
            ResponseBody::Chunked(source) => {
                let mut out = Vec::new();
                while let Some(block) = source() {
                    out.extend_from_slice(&block);
                }
                out
            }
        }
    }

    /// Serializes the status line, headers and body to `writer`.
    ///
    /// `keep_alive` decides the `Connection` header: `keep-alive` when the
    /// connection will serve another request, `close` when it won't. A
    /// chunked body is framed per RFC 7230 §4.1 (hex size line, chunk
    /// data, terminating `0\r\n\r\n`) and flushed block by block, so a
    /// client sees the first rows while later ones are still being
    /// generated; any write failure aborts the stream (the framing is
    /// unrecoverable mid-body, so the caller must close the connection).
    pub fn write_to<W: Write>(&mut self, writer: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
        )?;
        match &self.body {
            ResponseBody::Buffered(bytes) => {
                write!(writer, "Content-Length: {}\r\n", bytes.len())?;
            }
            ResponseBody::Chunked(_) => {
                write!(writer, "Transfer-Encoding: chunked\r\n")?;
            }
        }
        write!(writer, "Connection: {connection}\r\n")?;
        for (name, value) in &self.extra_headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        match &mut self.body {
            ResponseBody::Buffered(bytes) => writer.write_all(bytes)?,
            ResponseBody::Chunked(source) => {
                writer.flush()?;
                while let Some(block) = source() {
                    if block.is_empty() {
                        continue;
                    }
                    write!(writer, "{:x}\r\n", block.len())?;
                    writer.write_all(&block)?;
                    writer.write_all(b"\r\n")?;
                    writer.flush()?;
                }
                writer.write_all(b"0\r\n\r\n")?;
            }
        }
        writer.flush()
    }
}

/// Progress of a resumable response write ([`ResponseWriter::write_some`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProgress {
    /// The entire response — head, body and (for chunked bodies) the
    /// terminator — has been written.
    Complete,
    /// The writer returned `WouldBlock`; call
    /// [`ResponseWriter::write_some`] again when the socket is writable.
    Blocked,
}

/// A resumable serializer for one [`Response`] over a nonblocking
/// writer: the reactor core's replacement for [`Response::write_to`].
///
/// `write_to` assumes a blocking socket — a slow reader parks the
/// calling thread inside `write`. `ResponseWriter` instead makes
/// incremental progress: [`ResponseWriter::write_some`] writes until the
/// writer reports `WouldBlock`, then returns [`WriteProgress::Blocked`]
/// so the caller can park the *connection* (waiting for `POLLOUT`)
/// rather than a thread. Chunked sources are pulled lazily — the next
/// block is generated only after the previous one has been handed to the
/// socket, preserving the bounded-memory streaming property.
///
/// The wire bytes are identical to what [`Response::write_to`] produces
/// for the same response and `keep_alive` flag (pinned by tests): same
/// head, same RFC 7230 §4.1 chunk framing, same skipping of empty
/// blocks, same `0\r\n\r\n` terminator.
pub struct ResponseWriter {
    /// Bytes framed and awaiting the socket (head, then one framed chunk
    /// at a time for chunked bodies).
    pending: Vec<u8>,
    /// How much of `pending` has been written.
    pos: usize,
    /// The remaining chunk source; `None` once the terminator is framed
    /// (or for buffered bodies, from the start).
    source: Option<ChunkSource>,
}

impl std::fmt::Debug for ResponseWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseWriter")
            .field("pending", &self.pending.len())
            .field("pos", &self.pos)
            .field("streaming", &self.source.is_some())
            .finish()
    }
}

impl ResponseWriter {
    /// Frames `response`'s head (and, for buffered bodies, the whole
    /// body) and takes ownership of a chunked body's source.
    pub fn new(response: Response, keep_alive: bool) -> ResponseWriter {
        let Response {
            status,
            content_type,
            extra_headers,
            body,
        } = response;
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut pending = Vec::with_capacity(256);
        // Writes into a Vec cannot fail; the results are discarded so
        // this stays panic-free on the D4 surface.
        let _ = write!(
            pending,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n",
            status,
            reason_phrase(status),
            content_type,
        );
        match &body {
            ResponseBody::Buffered(bytes) => {
                let _ = write!(pending, "Content-Length: {}\r\n", bytes.len());
            }
            ResponseBody::Chunked(_) => {
                let _ = write!(pending, "Transfer-Encoding: chunked\r\n");
            }
        }
        let _ = write!(pending, "Connection: {connection}\r\n");
        for (name, value) in &extra_headers {
            let _ = write!(pending, "{name}: {value}\r\n");
        }
        pending.extend_from_slice(b"\r\n");
        let source = match body {
            ResponseBody::Buffered(bytes) => {
                pending.extend_from_slice(&bytes);
                None
            }
            ResponseBody::Chunked(source) => Some(source),
        };
        ResponseWriter {
            pending,
            pos: 0,
            source,
        }
    }

    /// Writes as much of the response as `writer` accepts. Returns
    /// [`WriteProgress::Blocked`] on `WouldBlock` (resume on the next
    /// writability event), [`WriteProgress::Complete`] when the response
    /// has been fully written, or the underlying error (the connection
    /// must then be closed — mid-body framing is unrecoverable).
    pub fn write_some<W: Write>(&mut self, writer: &mut W) -> std::io::Result<WriteProgress> {
        loop {
            while self.pos < self.pending.len() {
                match writer.write(&self.pending[self.pos..]) {
                    Ok(0) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WriteZero,
                            "socket accepted no bytes",
                        ));
                    }
                    Ok(n) => self.pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return Ok(WriteProgress::Blocked);
                    }
                    Err(e) => return Err(e),
                }
            }
            if !self.pending.is_empty() {
                self.pending.clear();
                self.pos = 0;
                // Mirror write_to's per-block flush (a no-op on raw
                // sockets, meaningful under buffered writers).
                writer.flush()?;
            }
            let Some(source) = &mut self.source else {
                return Ok(WriteProgress::Complete);
            };
            // Frame the next non-empty block; a drained source frames
            // the terminator instead and ends the stream.
            loop {
                match source() {
                    Some(block) if block.is_empty() => continue,
                    Some(block) => {
                        let _ = write!(self.pending, "{:x}\r\n", block.len());
                        self.pending.extend_from_slice(&block);
                        self.pending.extend_from_slice(b"\r\n");
                        break;
                    }
                    None => {
                        self.pending.extend_from_slice(b"0\r\n\r\n");
                        self.source = None;
                        break;
                    }
                }
            }
        }
    }
}

/// The canonical reason phrase for the status codes this service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Upper bound on a response body the minimal client ([`ResponseReader`])
/// will buffer — the client-side analogue of [`Limits::max_body_bytes`],
/// sized for the largest sampling response the server can emit
/// (`max_rows` rows) with headroom. A `Content-Length` or accumulated
/// chunk total past this is a malformed-response error, so a hostile or
/// buggy server cannot drive unbounded allocation.
pub const MAX_CLIENT_BODY_BYTES: usize = 256 * 1024 * 1024;

/// One response as seen by the minimal client ([`ResponseReader`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The de-framed body: de-chunked when the response streamed, exact
    /// `Content-Length` bytes when it was buffered.
    pub body: Vec<u8>,
    /// Whether the body arrived with chunked `Transfer-Encoding`.
    pub chunked: bool,
}

impl ClientResponse {
    /// The value of the first header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The minimal framed-response client used by the benches, examples and
/// integration tests: parses one response per call — status line,
/// headers, then a `Content-Length` or chunked body — without reading a
/// byte past the response's end, so the same keep-alive connection can
/// carry the next request. Malformed responses are
/// [`std::io::ErrorKind::InvalidData`] errors, never panics.
#[derive(Debug)]
pub struct ResponseReader<R> {
    reader: R,
    carry: Vec<u8>,
}

impl<R: Read> ResponseReader<R> {
    /// Wraps `reader`.
    pub fn new(reader: R) -> Self {
        ResponseReader {
            reader,
            carry: Vec::new(),
        }
    }

    /// Reads and parses the next response on the connection. Bodies are
    /// bounded by [`MAX_CLIENT_BODY_BYTES`] — like the request parser,
    /// the client never lets the peer drive unbounded allocation.
    pub fn next_response(&mut self) -> std::io::Result<ClientResponse> {
        let head_end = self.fill_until_terminator()?;
        let head: Vec<u8> = self.carry.drain(..head_end + 4).take(head_end).collect();
        let mut lines = split_crlf(&head);
        let status_line = lines.next().ok_or_else(bad_response)?;
        let status: u16 = std::str::from_utf8(status_line)
            .ok()
            .filter(|l| l.starts_with("HTTP/1."))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(bad_response)?;
        let mut headers = Vec::new();
        for line in lines {
            headers.push(parse_header_line(line).map_err(|_| bad_response())?);
        }

        let chunked = headers.iter().any(|(n, v)| {
            n == "transfer-encoding"
                && v.split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("chunked"))
        });
        let body = if chunked {
            self.read_chunked_body()?
        } else {
            let length = content_length(&headers).map_err(|_| bad_response())?;
            if length > MAX_CLIENT_BODY_BYTES {
                return Err(bad_response());
            }
            self.fill_to(length)?;
            self.carry.drain(..length).collect()
        };
        Ok(ClientResponse {
            status,
            headers,
            body,
            chunked,
        })
    }

    /// Reads until the carry buffer holds a `\r\n\r\n`; returns its
    /// index.
    fn fill_until_terminator(&mut self) -> std::io::Result<usize> {
        let mut tmp = [0u8; 1024];
        loop {
            if let Some(pos) = find_head_end(&self.carry) {
                return Ok(pos);
            }
            if self.carry.len() > 1024 * 1024 {
                return Err(bad_response());
            }
            let n = self.reader.read(&mut tmp)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.carry.extend_from_slice(&tmp[..n]);
        }
    }

    /// Reads until the carry buffer holds at least `len` bytes.
    fn fill_to(&mut self, len: usize) -> std::io::Result<()> {
        let mut tmp = [0u8; 4096];
        while self.carry.len() < len {
            let want = (len - self.carry.len()).min(tmp.len());
            let n = self.reader.read(&mut tmp[..want])?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.carry.extend_from_slice(&tmp[..n]);
        }
        Ok(())
    }

    /// Reads the next CRLF-terminated line from the carry buffer.
    fn read_line(&mut self) -> std::io::Result<Vec<u8>> {
        let mut tmp = [0u8; 256];
        loop {
            if let Some(pos) = self.carry.windows(2).position(|w| w == b"\r\n") {
                let line: Vec<u8> = self.carry.drain(..pos + 2).take(pos).collect();
                return Ok(line);
            }
            if self.carry.len() > 16 * 1024 {
                return Err(bad_response());
            }
            let n = self.reader.read(&mut tmp)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-chunk",
                ));
            }
            self.carry.extend_from_slice(&tmp[..n]);
        }
    }

    /// De-chunks an RFC 7230 §4.1 body: hex size lines, chunk data, a
    /// zero-size terminator (chunk extensions and trailers rejected —
    /// this server never emits them). The accumulated body is bounded
    /// by [`MAX_CLIENT_BODY_BYTES`].
    fn read_chunked_body(&mut self) -> std::io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let line = self.read_line()?;
            let text = std::str::from_utf8(&line).map_err(|_| bad_response())?;
            let size = usize::from_str_radix(text.trim(), 16).map_err(|_| bad_response())?;
            if size > MAX_CLIENT_BODY_BYTES.saturating_sub(body.len()) {
                return Err(bad_response());
            }
            if size == 0 {
                // The terminating CRLF after the zero chunk.
                let end = self.read_line()?;
                if !end.is_empty() {
                    return Err(bad_response());
                }
                return Ok(body);
            }
            self.fill_to(size + 2)?;
            body.extend(self.carry.drain(..size));
            let crlf: Vec<u8> = self.carry.drain(..2).collect();
            if crlf != b"\r\n" {
                return Err(bad_response());
            }
        }
    }
}

fn bad_response() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed http response")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse(b"GET /models HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/models");
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /models/m/sample HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"seed\":1}")
                .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.target, "/models/m/sample");
        assert_eq!(req.body, b"{\"seed\":1}");
        // The one-shot helper ignores bytes past Content-Length.
        let req = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nokEXTRA").unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn empty_lines_before_a_request_line_are_ignored() {
        // RFC 7230 §3.5: a stray CRLF before the request line (e.g. a
        // client terminating each frame with an extra CRLF) must not
        // poison the next keep-alive request.
        let req = parse(b"\r\nGET /models HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.target, "/models");
        let bytes =
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nok\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
                .to_vec();
        let mut reader = RequestReader::new(Cursor::new(bytes));
        assert_eq!(
            reader.next_request(&Limits::default()).unwrap().target,
            "/a"
        );
        assert_eq!(
            reader.next_request(&Limits::default()).unwrap().target,
            "/b"
        );
    }

    #[test]
    fn client_reader_refuses_unbounded_bodies() {
        // A Content-Length past the client cap is rejected before any
        // body byte is buffered.
        let wire = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n",
            MAX_CLIENT_BODY_BYTES + 1
        );
        let err = ResponseReader::new(Cursor::new(wire.into_bytes()))
            .next_response()
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // So is a chunk-size line claiming an absurd chunk.
        let wire =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nffffffffffffff\r\n".to_vec();
        let err = ResponseReader::new(Cursor::new(wire))
            .next_response()
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn request_reader_carries_pipelined_requests_across_calls() {
        let bytes =
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nokGET /b HTTP/1.1\r\n\r\n".to_vec();
        let mut reader = RequestReader::new(Cursor::new(bytes));
        let first = reader.next_request(&Limits::default()).unwrap();
        assert_eq!(
            (first.target.as_str(), first.body.as_slice()),
            ("/a", &b"ok"[..])
        );
        assert!(reader.has_buffered(), "second request should be buffered");
        let second = reader.next_request(&Limits::default()).unwrap();
        assert_eq!(second.target, "/b");
        assert_eq!(second.method, Method::Get);
        assert!(!reader.has_buffered());
        assert_eq!(
            reader.next_request(&Limits::default()).unwrap_err(),
            HttpError::Incomplete
        );
    }

    #[test]
    fn keep_alive_follows_rfc_7230_connection_semantics() {
        let ka = |raw: &[u8]| parse(raw).unwrap().keep_alive();
        // HTTP/1.1 defaults to keep-alive; `close` opts out.
        assert!(ka(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"));
        assert!(!ka(
            b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"
        ));
        // HTTP/1.0 defaults to close; `keep-alive` opts in.
        assert!(!ka(b"GET / HTTP/1.0\r\n\r\n"));
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
    }

    #[test]
    fn header_names_are_lowercased_and_values_trimmed() {
        let req = parse(b"GET / HTTP/1.1\r\nX-Thing:   spaced value  \r\n\r\n").unwrap();
        assert_eq!(req.header("x-thing"), Some("spaced value"));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET /\x01 HTTP/1.1\r\n\r\n",
            b"G@T / HTTP/1.1\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
        ] {
            assert_eq!(parse(bad).unwrap_err().status(), 400, "{bad:?}");
        }
        assert_eq!(
            parse(b"PUT / HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedMethod
        );
        assert_eq!(
            parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedVersion
        );
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for bad in [
            &b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: ok\r\n folded\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: bad\x01byte\r\n\r\n",
        ] {
            assert_eq!(parse(bad).unwrap_err(), HttpError::BadHeader, "{bad:?}");
        }
    }

    #[test]
    fn content_length_abuse_is_rejected() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx")
                .unwrap_err(),
            HttpError::BadContentLength
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength
        );
        // Over the body cap: rejected before reading any body byte.
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            Limits::default().max_body_bytes + 1
        );
        assert_eq!(parse(huge.as_bytes()).unwrap_err(), HttpError::BodyTooLarge);
        // Duplicate but equal values are fine.
        assert!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok").is_ok()
        );
    }

    #[test]
    fn truncated_requests_are_incomplete() {
        for bad in [
            &b""[..],
            b"GET / HT",
            b"GET / HTTP/1.1\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
        ] {
            assert_eq!(parse(bad).unwrap_err(), HttpError::Incomplete, "{bad:?}");
        }
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let limits = Limits {
            max_head_bytes: 128,
            ..Limits::default()
        };
        let big = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(256));
        assert_eq!(
            read_request(&mut Cursor::new(big.into_bytes()), &limits).unwrap_err(),
            HttpError::HeadTooLarge
        );
        // A stream that never terminates its head is also cut off at the cap.
        let endless = vec![b'A'; 4096];
        assert_eq!(
            read_request(&mut Cursor::new(endless), &limits).unwrap_err(),
            HttpError::HeadTooLarge
        );
    }

    #[test]
    fn too_many_headers_are_rejected() {
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            req.push_str(&format!("H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        assert_eq!(
            parse(req.as_bytes()).unwrap_err(),
            HttpError::TooManyHeaders
        );
    }

    #[test]
    fn transfer_encoding_is_rejected_not_misframed() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedTransferEncoding
        );
    }

    #[test]
    fn every_error_maps_to_a_4xx_or_5xx_status() {
        for e in [
            HttpError::Incomplete,
            HttpError::BadRequestLine,
            HttpError::UnsupportedMethod,
            HttpError::UnsupportedVersion,
            HttpError::BadHeader,
            HttpError::HeadTooLarge,
            HttpError::TooManyHeaders,
            HttpError::BadContentLength,
            HttpError::BodyTooLarge,
            HttpError::UnsupportedTransferEncoding,
            HttpError::Io(std::io::ErrorKind::TimedOut),
            HttpError::Io(std::io::ErrorKind::ConnectionReset),
        ] {
            let status = e.status();
            assert!((400..=599).contains(&status), "{e:?} -> {status}");
            assert!(!e.to_string().is_empty());
            assert_ne!(reason_phrase(status), "");
        }
        // The request-timeout path is a typed 408.
        assert_eq!(HttpError::Io(std::io::ErrorKind::TimedOut).status(), 408);
        assert_eq!(HttpError::Io(std::io::ErrorKind::WouldBlock).status(), 408);
    }

    #[test]
    fn buffered_responses_serialize_with_exact_framing() {
        let mut resp = Response::json(200, &crate::json::Json::Bool(true))
            .with_header("x-p3gm-privacy", "(1.0, 1e-5)-DP");
        let mut out = Vec::new();
        resp.write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("x-p3gm-privacy: (1.0, 1e-5)-DP\r\n"));
        assert!(text.ends_with("\r\n\r\ntrue"));
        // Keep-alive flips only the Connection header.
        let mut resp = Response::json(200, &crate::json::Json::Bool(true));
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn chunked_responses_frame_blocks_and_terminate() {
        let blocks = vec![b"hello ".to_vec(), Vec::new(), b"world".to_vec()];
        let mut iter = blocks.into_iter();
        let mut resp = Response::chunked("text/csv", Box::new(move || iter.next()));
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Content-Length"));
        // 6-byte and 5-byte chunks; the empty block is skipped, not a
        // premature terminator.
        assert!(
            text.ends_with("6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"),
            "{text}"
        );
    }

    #[test]
    fn client_reader_parses_buffered_and_chunked_responses() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: text/csv\r\nTransfer-Encoding: chunked\r\n\
            Connection: keep-alive\r\n\r\n6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n\
            HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\nConnection: close\r\n\r\nno";
        let mut client = ResponseReader::new(Cursor::new(wire.to_vec()));
        let first = client.next_response().unwrap();
        assert_eq!(first.status, 200);
        assert!(first.chunked);
        assert_eq!(first.body, b"hello world");
        assert_eq!(first.header("connection"), Some("keep-alive"));
        // The reader stopped exactly at the first response's end: the
        // second response on the same stream parses cleanly.
        let second = client.next_response().unwrap();
        assert_eq!(second.status, 404);
        assert!(!second.chunked);
        assert_eq!(second.body, b"no");
        assert!(client.next_response().is_err());
    }

    #[test]
    fn client_reader_round_trips_a_written_chunked_response() {
        let payload: Vec<u8> = (0u32..2048).map(|i| (i % 251) as u8).collect();
        let mut blocks = payload
            .chunks(97)
            .map(<[u8]>::to_vec)
            .collect::<Vec<_>>()
            .into_iter();
        let mut resp =
            Response::chunked("application/octet-stream", Box::new(move || blocks.next()));
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).unwrap();
        let parsed = ResponseReader::new(Cursor::new(wire))
            .next_response()
            .unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, payload);
    }

    /// A writer that accepts at most `burst` bytes per call and returns
    /// `WouldBlock` on every other call — the worst-case slow reader.
    struct ChokeWriter {
        out: Vec<u8>,
        burst: usize,
        choked: bool,
    }

    impl Write for ChokeWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.choked = !self.choked;
            if self.choked {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "choked",
                ));
            }
            let n = buf.len().min(self.burst);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_chunked_response() -> Response {
        let blocks = vec![b"hello ".to_vec(), Vec::new(), b"world".to_vec()];
        let mut iter = blocks.into_iter();
        Response::chunked("text/csv", Box::new(move || iter.next()))
            .with_header("x-p3gm-privacy", "(1.0, 1e-5)-DP")
    }

    #[test]
    fn resumable_writer_matches_write_to_byte_for_byte() {
        // Buffered.
        let mk =
            || Response::json(429, &crate::json::Json::Bool(false)).with_header("x-extra", "v");
        for keep in [false, true] {
            let mut want = Vec::new();
            mk().write_to(&mut want, keep).unwrap();
            let mut got = Vec::new();
            let mut writer = ResponseWriter::new(mk(), keep);
            assert_eq!(
                writer.write_some(&mut got).unwrap(),
                WriteProgress::Complete
            );
            assert_eq!(got, want);
        }
        // Chunked (empty blocks skipped, terminator appended).
        let mut want = Vec::new();
        sample_chunked_response().write_to(&mut want, true).unwrap();
        let mut got = Vec::new();
        let mut writer = ResponseWriter::new(sample_chunked_response(), true);
        assert_eq!(
            writer.write_some(&mut got).unwrap(),
            WriteProgress::Complete
        );
        assert_eq!(got, want);
    }

    #[test]
    fn resumable_writer_survives_would_block() {
        let mut want = Vec::new();
        sample_chunked_response()
            .write_to(&mut want, false)
            .unwrap();
        let mut writer = ResponseWriter::new(sample_chunked_response(), false);
        let mut sink = ChokeWriter {
            out: Vec::new(),
            burst: 3,
            choked: false,
        };
        let mut blocked = 0usize;
        loop {
            match writer.write_some(&mut sink).unwrap() {
                WriteProgress::Complete => break,
                WriteProgress::Blocked => blocked += 1,
            }
            assert!(blocked < 10_000, "writer made no progress");
        }
        assert!(blocked > 0, "choke writer never blocked");
        assert_eq!(sink.out, want);
        // Resuming a completed writer is a no-op Complete.
        assert_eq!(
            writer.write_some(&mut sink).unwrap(),
            WriteProgress::Complete
        );
    }

    #[test]
    fn into_buffered_drains_a_chunked_body() {
        let mut blocks = vec![b"ab".to_vec(), b"cd".to_vec()].into_iter();
        let resp = Response::chunked("text/csv", Box::new(move || blocks.next()));
        let resp = resp.into_buffered();
        assert!(matches!(&resp.body, ResponseBody::Buffered(b) if b == b"abcd"));
        assert_eq!(resp.into_body_bytes(), b"abcd");
    }
}
