//! # p3gm-server
//!
//! A std-only HTTP/1.1 synthesis service over [`std::net::TcpListener`]
//! that serves `SynthesisSnapshot` files: the network-facing layer that
//! turns P3GM's train-once/sample-forever deployment story into a
//! multi-model service, with the (ε, δ) stamp attached to every response
//! the way the paper attaches it to every release.
//!
//! Four pieces:
//!
//! * a **model registry** ([`registry`]) that registers named snapshots
//!   from a directory by peeking their headers (geometry + privacy stamp,
//!   no weight payload), decodes weights lazily on first request through
//!   `p3gm-store` typed errors with single-flight de-duplication, evicts
//!   least-recently-used models under a resident-bytes budget, swaps
//!   entries atomically behind `Arc` handles, and hot-reloads changed
//!   files without dropping in-flight requests;
//! * a **request layer** — a hand-rolled JSON value module ([`json`]) and
//!   a strict HTTP parser ([`http`]) that reject malformed input with 4xx
//!   responses and never panic on untrusted bytes; connections are
//!   persistent (HTTP/1.1 keep-alive with `Connection` header semantics,
//!   a bounded number of requests per connection, an idle timeout between
//!   requests, and an absolute per-request read deadline so a stalled or
//!   byte-trickling client gets a typed 408 instead of pinning a worker).
//!   Two interchangeable connection cores serve this layer (selected by
//!   [`ServerConfig::core`] / `P3GM_SERVER_CORE`, see [`ServerCore`]):
//!   the default **reactor** — one nonblocking thread multiplexing every
//!   socket over `poll(2)` readiness, executor workers running synthesis,
//!   resumable response writes so a slow reader parks its socket rather
//!   than a thread, scaling concurrent keep-alive connections to the fd
//!   limit — and the legacy **thread-per-connection** core;
//! * a **streaming synthesis executor**: `POST /models/{name}/sample`
//!   generates rows through the core chunked sampler
//!   (`SynthesisSnapshot::sample_chunks`) and streams them as RFC 7230
//!   chunked `Transfer-Encoding`, so first-byte latency and peak memory
//!   are bounded by the chunk size, not `n` — while the de-chunked body
//!   stays byte-identical per (model, seed, n) to the buffered body an
//!   HTTP/1.0 client receives and to in-process `sample(seed, n)`;
//! * a **privacy budget ledger** ([`ledger`]) tracking cumulative ε per
//!   model, refusing requests with 429 once a configurable budget is
//!   exhausted, persisted through the `p3gm-store` codec so restarts
//!   cannot reset spent budget. Each streamed response is charged exactly
//!   once, before its first chunk — a client aborting mid-stream has
//!   still spent the release's ε (the rows it already received are a
//!   release), never more.
//!
//! ## Endpoints
//!
//! | Method | Path                    | Purpose                                        |
//! |--------|-------------------------|------------------------------------------------|
//! | GET    | `/`                     | Service overview and endpoint list             |
//! | GET    | `/healthz`              | Liveness + model count                         |
//! | GET    | `/models`               | All models: geometry, privacy stamp, budget    |
//! | GET    | `/models/{name}`        | One model's geometry, stamp and budget         |
//! | GET    | `/stats`                | Registry residency and eviction counters       |
//! | GET    | `/metrics`              | Prometheus text exposition (see below)         |
//! | POST   | `/models/{name}/sample` | Draw rows: `{"seed", "n", "labels"?, "format"?}` |
//! | POST   | `/reload`               | Rescan the snapshot directory (hot reload)     |
//!
//! ## Observability
//!
//! With [`ServerConfig::obs`] metrics enabled (the default), the server
//! keeps a `p3gm-obs` [`p3gm_obs::MetricsRegistry`] — request counts and
//! latency by route and status, in-flight gauge, keep-alive reuse,
//! chunked-stream first-byte latency and bytes, the model registry's
//! residency counters, per-model `p3gm_epsilon_spent` /
//! `p3gm_epsilon_remaining` gauges, and the monotone
//! `p3gm_budget_denials_total` 429 counter — and serves it as Prometheus
//! text on `GET /metrics`. An optional structured access log (off by
//! default) writes one line per request. Telemetry is pure
//! post-processing: nothing in it feeds back into sampling or the (ε, δ)
//! accounting, and none of it is persisted.
//!
//! Model listings and details are served from **peeked snapshot
//! headers**; weight payloads decode lazily on a model's first sampling
//! request and are evicted least-recently-used under the configured
//! [`ServerConfig::max_resident_bytes`] ceiling (see [`registry`]).
//!
//! Sampling is deterministic per `(model, seed, n)`: every delivery path
//! consumes the core's canonical per-seed-block sample stream, and the
//! serializers are deterministic — the same request always yields the
//! same de-framed bytes, from any replica, under any concurrency, chunk
//! framing or thread count. The varying budget state travels in
//! `x-p3gm-epsilon-*` response headers, never in the body.

// `deny`, not `forbid`: conform rule D5 sanctions exactly one file-level
// `#![allow(unsafe_code)]` — the `poll(2)` FFI shim in `sys.rs` — and a
// `forbid` here would reject that override. Every other file in this
// crate remains unsafe-free, and conform verifies that token-by-token.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod ledger;
mod metrics;
#[cfg(unix)]
mod reactor;
pub mod registry;
#[cfg(unix)]
mod sys;

use http::{Limits, Method, Request, RequestReader, Response, ResponseBody};
use json::Json;
use ledger::{BudgetLedger, LedgerError};
use metrics::ServerMetrics;
use p3gm_linalg::Matrix;
use p3gm_obs::time::unix_millis;
use p3gm_obs::{AccessLogger, ObsConfig, TimeSource};
use p3gm_privacy::rdp::PrivacySpec;
use registry::{LoadedModel, Registry, RegistryConfig, RegistryError};
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Rows per streamed response chunk. A multiple of the core stream's
/// [`p3gm_core::snapshot::SEED_BLOCK_ROWS`], so chunk boundaries align
/// with seed blocks and streaming regenerates nothing; peak memory per
/// in-flight response is one chunk of rows, never the full batch.
const STREAM_CHUNK_ROWS: usize = 512;

/// Which connection-handling core [`start`] runs.
///
/// Both cores serve byte-identical responses through the same parser,
/// router and serializers, enforce the same timeouts
/// (`request_read_timeout`, `keep_alive_timeout`, a typed 408 for
/// stalled clients), and honor the same graceful-shutdown and
/// `max_requests_per_connection` contracts — the integration suite runs
/// against both. They differ only in how connections map to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCore {
    /// One nonblocking reactor thread multiplexes **every** accepted
    /// socket over `poll(2)` readiness and hands parsed requests to
    /// [`ServerConfig::threads`] executor workers; a response write that
    /// would block parks the socket instead of the worker. Concurrent
    /// (mostly idle) keep-alive connections scale to the fd limit —
    /// thousands — with a thread count fixed at `threads + 1`. The
    /// default on Unix targets.
    Reactor,
    /// The legacy core: each of [`ServerConfig::threads`] workers
    /// accepts and serves one connection at a time to completion, so at
    /// most `threads` connections progress concurrently and excess
    /// keep-alive clients queue in the accept backlog. Selected with
    /// `P3GM_SERVER_CORE=thread` or [`ServerConfigBuilder::core`]; the
    /// only core on non-Unix targets.
    ThreadPerConnection,
}

impl ServerCore {
    fn parse(value: Option<&str>) -> ServerCore {
        match value {
            Some("thread" | "thread-per-connection" | "threaded") => {
                ServerCore::ThreadPerConnection
            }
            _ => ServerCore::Reactor,
        }
    }

    /// The default core: honors the `P3GM_SERVER_CORE` environment
    /// variable (`thread` / `thread-per-connection` / `threaded` select
    /// the legacy core — this is how the CI matrix runs the suite under
    /// both cores); anything else selects the reactor.
    pub fn from_env() -> ServerCore {
        ServerCore::parse(std::env::var("P3GM_SERVER_CORE").ok().as_deref())
    }
}

/// Configuration of one [`start`]ed server.
///
/// Construct through [`ServerConfig::builder`] — the struct is
/// `#[non_exhaustive]`, so struct-literal construction (including
/// `..Default`-style update syntax) no longer compiles outside this
/// crate, and new knobs can be added without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads accepting and serving connections.
    pub threads: usize,
    /// Directory of `*.snapshot` model files.
    pub model_dir: PathBuf,
    /// Where the budget ledger persists. `None` keeps it in memory
    /// (spent budget then resets on restart — only for ephemeral use).
    pub ledger_path: Option<PathBuf>,
    /// Per-model cumulative ε ceiling; `None` disables enforcement.
    pub budget_epsilon: Option<f64>,
    /// Upper bound on rows per sampling request.
    pub max_rows: usize,
    /// HTTP input limits.
    pub limits: Limits,
    /// Socket write timeout (one stalled write may block up to this
    /// long; a streamed response aborts on the first timed-out chunk).
    pub io_timeout: Duration,
    /// Total time a client gets to deliver one complete request once its
    /// first byte has arrived. This is an absolute deadline enforced
    /// across reads, so a client trickling one byte per second cannot
    /// hold a worker — it gets a typed 408 when the deadline passes.
    pub request_read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// (and a fresh connection before its first byte) before the server
    /// closes it.
    pub keep_alive_timeout: Duration,
    /// Requests served per connection before the server closes it
    /// (`Connection: close` on the final response). Bounds how long one
    /// client can pin a worker thread.
    pub max_requests_per_connection: usize,
    /// Soft ceiling on estimated resident model-weight bytes; past it,
    /// least-recently-used models are evicted back to header-only
    /// entries. `None` keeps every loaded model resident.
    pub max_resident_bytes: Option<u64>,
    /// How long a request waits for another request's in-flight decode
    /// of the same model before failing with 503.
    pub load_wait: Duration,
    /// Observability: metrics (on by default; `GET /metrics` serves the
    /// Prometheus exposition) and the per-request access log (off by
    /// default). Telemetry never feeds back into sampling or budget
    /// accounting and is never persisted.
    pub obs: ObsConfig,
    /// Which connection-handling core to run (see [`ServerCore`]). The
    /// builder default honors `P3GM_SERVER_CORE` and otherwise selects
    /// the reactor; non-Unix targets always run the
    /// thread-per-connection core.
    pub core: ServerCore,
}

impl ServerConfig {
    /// Starts building a config serving `model_dir`. The builder's
    /// defaults: ephemeral localhost port, two workers, a durable ledger
    /// at `model_dir/ledger.p3gm`, no budget ceiling, no residency
    /// ceiling.
    pub fn builder(model_dir: impl Into<PathBuf>) -> ServerConfigBuilder {
        let model_dir = model_dir.into();
        ServerConfigBuilder {
            config: ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                threads: 2,
                ledger_path: Some(model_dir.join("ledger.p3gm")),
                model_dir,
                budget_epsilon: None,
                max_rows: 100_000,
                limits: Limits::default(),
                io_timeout: Duration::from_secs(10),
                request_read_timeout: Duration::from_secs(10),
                keep_alive_timeout: Duration::from_secs(5),
                max_requests_per_connection: 100,
                max_resident_bytes: None,
                load_wait: Duration::from_secs(30),
                obs: ObsConfig::enabled(),
                core: ServerCore::from_env(),
            },
        }
    }

    /// A config serving `model_dir` with every builder default.
    #[deprecated(
        since = "0.1.0",
        note = "use ServerConfig::builder(model_dir)...build(); the struct is \
                non_exhaustive, so struct-literal updates over new() no \
                longer compile"
    )]
    pub fn new(model_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig::builder(model_dir).build()
    }
}

/// Builder for [`ServerConfig`]; obtained from [`ServerConfig::builder`].
///
/// Every setter takes and returns the builder by value, so a config
/// reads as one chain:
///
/// ```ignore
/// let config = ServerConfig::builder("models/")
///     .threads(4)
///     .budget_epsilon(Some(10.0))
///     .max_resident_bytes(Some(256 << 20))
///     .build();
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Bind address; use port 0 for an ephemeral port.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Worker threads accepting and serving connections.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Where the budget ledger persists; `None` keeps it in memory.
    pub fn ledger_path(mut self, path: Option<PathBuf>) -> Self {
        self.config.ledger_path = path;
        self
    }

    /// Per-model cumulative ε ceiling; `None` disables enforcement.
    pub fn budget_epsilon(mut self, budget: Option<f64>) -> Self {
        self.config.budget_epsilon = budget;
        self
    }

    /// Upper bound on rows per sampling request.
    pub fn max_rows(mut self, max_rows: usize) -> Self {
        self.config.max_rows = max_rows;
        self
    }

    /// HTTP input limits.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.config.limits = limits;
        self
    }

    /// Socket write timeout.
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.config.io_timeout = timeout;
        self
    }

    /// Absolute deadline for reading one complete request.
    pub fn request_read_timeout(mut self, timeout: Duration) -> Self {
        self.config.request_read_timeout = timeout;
        self
    }

    /// Idle time allowed between keep-alive requests.
    pub fn keep_alive_timeout(mut self, timeout: Duration) -> Self {
        self.config.keep_alive_timeout = timeout;
        self
    }

    /// Requests served per connection before the server closes it.
    pub fn max_requests_per_connection(mut self, max: usize) -> Self {
        self.config.max_requests_per_connection = max;
        self
    }

    /// Soft ceiling on estimated resident model-weight bytes (see
    /// [`registry::RegistryConfig::max_resident_bytes`]).
    pub fn max_resident_bytes(mut self, ceiling: Option<u64>) -> Self {
        self.config.max_resident_bytes = ceiling;
        self
    }

    /// How long a request waits on another request's in-flight decode of
    /// the same model before failing with 503.
    pub fn load_wait(mut self, wait: Duration) -> Self {
        self.config.load_wait = wait;
        self
    }

    /// Observability configuration: metrics on/off and the access-log
    /// target (see [`ObsConfig`]). `ObsConfig::disabled()` removes all
    /// instrumentation from the request path; `GET /metrics` then
    /// answers 404.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.config.obs = obs;
        self
    }

    /// Which connection-handling core to run (see [`ServerCore`]).
    pub fn core(mut self, core: ServerCore) -> Self {
        self.config.core = core;
        self
    }

    /// Finishes the chain.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// Why a server failed to start (or a ledger operation failed).
#[derive(Debug)]
pub enum ServerError {
    /// Binding, listing the model directory, or another I/O failure.
    Io(std::io::Error),
    /// The persisted ledger failed to open.
    Ledger(LedgerError),
    /// The configuration is unusable.
    InvalidConfig(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o failure: {e}"),
            ServerError::Ledger(e) => write!(f, "budget ledger failure: {e}"),
            ServerError::InvalidConfig(msg) => write!(f, "invalid server config: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<LedgerError> for ServerError {
    fn from(e: LedgerError) -> Self {
        ServerError::Ledger(e)
    }
}

/// Shared state every worker thread serves from.
struct Service {
    registry: Registry,
    ledger: Mutex<BudgetLedger>,
    max_rows: usize,
    /// `Some` when [`ObsConfig::metrics`] is on.
    metrics: Option<ServerMetrics>,
    /// `Some` when the access log has a target.
    access_log: Option<AccessLogger>,
}

impl Service {
    /// The single registry-stats snapshot both `GET /stats` and
    /// `GET /metrics` flow through: reads the counters once (see
    /// [`Registry::stats`] for the tear semantics) and, when metrics are
    /// on, mirrors that same snapshot into the exposition registry — so
    /// the two surfaces can never drift apart.
    fn registry_snapshot(&self) -> registry::RegistryStats {
        let snapshot = self.registry.stats();
        if let Some(m) = &self.metrics {
            m.export_registry_stats(&snapshot);
        }
        snapshot
    }
}

/// The per-connection pacing knobs, split out of [`ServerConfig`] so the
/// connection state machine takes one small copy.
#[derive(Debug, Clone, Copy)]
struct ConnConfig {
    io_timeout: Duration,
    request_read_timeout: Duration,
    keep_alive_timeout: Duration,
    max_requests_per_connection: usize,
}

/// Where thread-per-connection workers park while waiting for a
/// keep-alive connection's next request, registered so shutdown can
/// interrupt the blocked `peek`s directly instead of the old 50 ms
/// stop-flag polling: each parked worker blocks on the socket itself
/// (readiness-driven — zero wakeups while idle), and
/// [`IdleRegistry::interrupt_all`] shuts down the read half of every
/// parked socket, which returns those `peek`s immediately.
struct IdleRegistry {
    next_id: AtomicU64,
    parked: Mutex<BTreeMap<u64, TcpStream>>,
}

impl IdleRegistry {
    fn new() -> IdleRegistry {
        IdleRegistry {
            next_id: AtomicU64::new(0),
            parked: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers `stream` as parked-idle; the returned ticket
    /// unregisters on drop. `None` (clone failure) means the caller
    /// should close instead of waiting.
    fn park(&self, stream: &TcpStream) -> Option<IdleTicket<'_>> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.parked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, clone);
        Some(IdleTicket { registry: self, id })
    }

    /// Unblocks every parked worker by shutting down the read half of
    /// its socket (the blocked `peek` then returns EOF). Only called on
    /// shutdown, when those idle connections are being retired anyway.
    fn interrupt_all(&self) {
        let parked = self
            .parked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for stream in parked.values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

struct IdleTicket<'a> {
    registry: &'a IdleRegistry,
    id: u64,
}

impl Drop for IdleTicket<'_> {
    fn drop(&mut self) {
        self.registry
            .parked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&self.id);
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the workers (they keep serving
/// until the process exits).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
    service: Arc<Service>,
    /// Present under the reactor core: wakes the reactor out of `poll`.
    wake: Option<Box<dyn Fn() + Send + Sync>>,
    /// Thread-per-connection core: workers parked on idle keep-alive
    /// connections, interruptible for prompt shutdown.
    idle: Arc<IdleRegistry>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Rescans the model directory (the programmatic equivalent of
    /// `POST /reload`).
    pub fn reload(&self) -> std::io::Result<registry::ReloadReport> {
        self.service.registry.reload()
    }

    /// Number of models currently registered (headers; weights load
    /// lazily on first request).
    pub fn model_count(&self) -> usize {
        self.service.registry.len()
    }

    /// The registry's residency counters (the programmatic equivalent of
    /// `GET /stats`; flows through the same snapshot path, so the
    /// exposition registry sees the same numbers).
    pub fn registry_stats(&self) -> registry::RegistryStats {
        self.service.registry_snapshot()
    }

    /// Stops accepting, wakes every worker, and joins them. In-flight
    /// requests finish before their worker exits; idle keep-alive
    /// connections are interrupted immediately (reactor: retired from
    /// the poll set; thread core: their parked `peek`s unblocked), so
    /// shutdown latency is bounded by in-flight work, never by idle
    /// timeouts.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Keep nudging until every worker has observed the flag and
        // exited (a real client racing in could consume a wake-up, so
        // this loops rather than counting).
        while self.workers.iter().any(|w| !w.is_finished()) {
            match &self.wake {
                // Reactor core: a waker byte interrupts the poll wait.
                Some(wake) => wake(),
                // Thread core: each connect wakes one blocked accept.
                None => {
                    let _ = TcpStream::connect(self.addr);
                }
            }
            self.idle.interrupt_all();
            std::thread::sleep(Duration::from_millis(1));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Starts a server: opens the registry and ledger, binds the listener,
/// and spawns the worker threads.
pub fn start(config: ServerConfig) -> Result<ServerHandle, ServerError> {
    if config.threads == 0 {
        return Err(ServerError::InvalidConfig(
            "threads must be at least 1".to_string(),
        ));
    }
    if let Some(budget) = config.budget_epsilon {
        if !(budget.is_finite() && budget >= 0.0) {
            return Err(ServerError::InvalidConfig(format!(
                "budget_epsilon must be finite and non-negative, got {budget}"
            )));
        }
    }
    let (registry, _report) = Registry::open_with(
        &config.model_dir,
        RegistryConfig {
            max_resident_bytes: config.max_resident_bytes,
            load_wait: config.load_wait,
        },
    )?;
    let ledger = match &config.ledger_path {
        Some(path) => BudgetLedger::open(path, config.budget_epsilon)?,
        None => BudgetLedger::in_memory(config.budget_epsilon),
    };
    let metrics = config.obs.metrics.then(ServerMetrics::new);
    let access_log =
        AccessLogger::open_sampled(&config.obs.access_log, config.obs.log_sample_every_n)?;
    let service = Arc::new(Service {
        registry,
        ledger: Mutex::new(ledger),
        max_rows: config.max_rows,
        metrics,
        access_log,
    });

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conn_config = ConnConfig {
        io_timeout: config.io_timeout,
        request_read_timeout: config.request_read_timeout,
        keep_alive_timeout: config.keep_alive_timeout,
        max_requests_per_connection: config.max_requests_per_connection.max(1),
    };

    #[cfg(unix)]
    if config.core == ServerCore::Reactor {
        let waker = sys::Waker::new()?;
        let wake = waker.handle();
        let opts = reactor::ReactorOptions {
            executors: config.threads,
            limits: config.limits,
            conn: conn_config,
        };
        let reactor_service = Arc::clone(&service);
        let reactor_stop = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            reactor::run(listener, reactor_service, reactor_stop, waker, opts);
        });
        return Ok(ServerHandle {
            addr,
            stop,
            workers: vec![worker],
            service,
            wake: Some(Box::new(move || wake.wake())),
            idle: Arc::new(IdleRegistry::new()),
        });
    }

    let idle = Arc::new(IdleRegistry::new());
    let mut workers = Vec::with_capacity(config.threads);
    for _ in 0..config.threads {
        let listener = listener.try_clone()?;
        let stop = Arc::clone(&stop);
        let service = Arc::clone(&service);
        let idle = Arc::clone(&idle);
        let limits = config.limits;
        workers.push(std::thread::spawn(move || {
            worker_loop(&listener, &stop, &service, &limits, conn_config, &idle);
        }));
    }
    Ok(ServerHandle {
        addr,
        stop,
        workers,
        service,
        wake: None,
        idle,
    })
}

fn worker_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    service: &Service,
    limits: &Limits,
    conn: ConnConfig,
    idle: &IdleRegistry,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failures (e.g. fd exhaustion under a
                // connection flood) must not busy-spin a core.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        serve_connection(stream, service, limits, conn, stop, idle);
    }
}

/// Why the idle wait for a connection's next request ended.
enum IdleOutcome {
    /// Request bytes are available (buffered or on the socket).
    Ready,
    /// The peer closed, the idle timeout passed, the server is shutting
    /// down, or the socket failed — close without a response.
    Close,
}

/// Waits for the first byte of the next request by blocking on the
/// socket itself — zero wakeups while the connection idles (the old
/// implementation re-polled every 50 ms to notice shutdown). Prompt
/// shutdown is preserved by parking the socket in the [`IdleRegistry`]
/// first: `ServerHandle::shutdown` stores the stop flag and then
/// interrupts every parked socket, so the blocked `peek` returns
/// immediately and the stop re-check below closes the connection.
fn wait_for_request(
    stream: &TcpStream,
    buffered: bool,
    conn: ConnConfig,
    stop: &AtomicBool,
    idle: &IdleRegistry,
) -> IdleOutcome {
    if buffered {
        // A pipelined request is already in the parse buffer.
        return IdleOutcome::Ready;
    }
    let Some(_ticket) = idle.park(stream) else {
        return IdleOutcome::Close;
    };
    // Checked AFTER parking: shutdown stores the flag before it
    // interrupts, so a store racing this park is observed here and a
    // store after this check finds the socket already parked.
    if stop.load(Ordering::SeqCst) {
        return IdleOutcome::Close;
    }
    let idle_deadline = Instant::now() + conn.keep_alive_timeout;
    let mut probe = [0u8; 1];
    loop {
        let Some(remaining) = idle_deadline
            .checked_duration_since(Instant::now())
            .filter(|r| !r.is_zero())
        else {
            return IdleOutcome::Close;
        };
        if stream.set_read_timeout(Some(remaining)).is_err() {
            return IdleOutcome::Close;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return IdleOutcome::Close,
            Ok(_) => {
                if stop.load(Ordering::SeqCst) {
                    return IdleOutcome::Close;
                }
                return IdleOutcome::Ready;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The full idle window elapsed (or an interrupt raced a
                // timeout); the loop re-derives the remaining window.
                if stop.load(Ordering::SeqCst) {
                    return IdleOutcome::Close;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return IdleOutcome::Close,
        }
    }
}

/// A [`Read`] over a `TcpStream` that enforces an absolute per-request
/// deadline across however many reads the request takes: the remaining
/// budget shrinks with every read, so a client trickling bytes cannot
/// reset the clock — once the deadline passes every read fails with
/// `TimedOut`, which the parser maps to a typed 408.
struct TimedStream {
    stream: TcpStream,
    deadline: Option<Instant>,
}

impl TimedStream {
    fn arm(&mut self, timeout: Duration) {
        self.deadline = Some(Instant::now() + timeout);
    }
}

impl Read for TimedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = match self.deadline {
            Some(deadline) => deadline
                .checked_duration_since(Instant::now())
                .filter(|r| !r.is_zero())
                .ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::TimedOut, "request read deadline")
                })?,
            None => Duration::from_secs(3600),
        };
        self.stream.set_read_timeout(Some(remaining))?;
        match self.stream.read(buf) {
            // Normalize the platform's timeout kind so the deadline is
            // one typed condition.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request read deadline",
                ))
            }
            other => other,
        }
    }
}

/// The per-connection state machine: serves a sequence of requests over
/// one TCP connection with HTTP/1.1 keep-alive.
///
/// States, per iteration: **idle** (wait for the next request's first
/// byte, bounded by the keep-alive timeout, stop-flag aware) → **read**
/// (parse one request under an absolute deadline — a stalled or
/// trickling client gets a typed 408) → **respond** (route, then stream
/// or buffer the response with the right `Connection` header) → back to
/// idle, until the client asks to close, the requests-per-connection
/// bound is hit, a parse or write fails, or the server shuts down. Any
/// parse failure becomes the matching 4xx/5xx and closes (framing is
/// unreliable after an error); a worker never dies on a bad connection.
fn serve_connection(
    stream: TcpStream,
    service: &Service,
    limits: &Limits,
    conn: ConnConfig,
    stop: &AtomicBool,
    idle: &IdleRegistry,
) {
    let _open = service.metrics.as_ref().map(|m| m.connection_guard());
    let _ = stream.set_write_timeout(Some(conn.io_timeout));
    // Chunked responses are flushed block by block; without TCP_NODELAY
    // the small framing writes sit in Nagle's buffer waiting for delayed
    // ACKs, turning every keep-alive round trip into ~40-80 ms of idle.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = RequestReader::new(TimedStream {
        stream: read_half,
        deadline: None,
    });
    let mut write_half = stream;
    let mut served = 0usize;
    // An idle wait ending in `Close` (peer gone, idle timeout, or
    // shutdown) exits silently — no request is in flight, so no
    // response is owed.
    while let IdleOutcome::Ready =
        wait_for_request(&write_half, reader.has_buffered(), conn, stop, idle)
    {
        reader.reader_mut().arm(conn.request_read_timeout);
        let parsed = reader.next_request(limits);
        match parsed {
            Ok(request) => {
                served += 1;
                let started = Instant::now();
                let in_flight = service
                    .metrics
                    .as_ref()
                    .map(|m| m.begin_request(served > 1));
                let keep = request.keep_alive()
                    && served < conn.max_requests_per_connection
                    && !stop.load(Ordering::SeqCst);
                let mut response = route(service, &request);
                if request.version == http::Version::Http10 {
                    // HTTP/1.0 clients cannot parse chunked framing: the
                    // documented fallback buffers the stream.
                    response = response.into_buffered();
                }
                let status = response.status;
                // Observed BEFORE the body is written: once the client
                // has the response, the next scrape is guaranteed to see
                // this request counted. Streamed bodies generate rows
                // during the write; that phase is covered by the
                // dedicated first-byte and bytes series the wrapper below
                // records.
                let seconds = started.elapsed().as_secs_f64();
                if let Some(m) = &service.metrics {
                    m.observe_request(route_label(&request), status, seconds);
                    m.instrument_stream(&mut response, m.clock.now_nanos());
                }
                let write_ok = response.write_to(&mut write_half, keep).is_ok();
                drop(in_flight);
                if let Some(log) = &service.access_log {
                    log.log(&format!(
                        "t={} method={} target={} status={} keep={} dur_us={}",
                        unix_millis(),
                        request.method,
                        request.target,
                        status,
                        keep && write_ok,
                        (seconds * 1e6) as u64,
                    ));
                }
                if !write_ok {
                    // A failed or aborted write (including mid-stream)
                    // leaves the wire framing unrecoverable.
                    break;
                }
                if !keep {
                    let _ = write_half.shutdown(std::net::Shutdown::Write);
                    break;
                }
            }
            Err(e) => {
                let status = e.status();
                if let Some(m) = &service.metrics {
                    let _in_flight = m.begin_request(served > 0);
                    m.observe_request("unparsed", status, 0.0);
                }
                if let Some(log) = &service.access_log {
                    log.log(&format!(
                        "t={} method=- target=- status={status} keep=false dur_us=0 parse_error={:?}",
                        unix_millis(),
                        e.to_string(),
                    ));
                }
                let mut response = error_response(status, &e.to_string());
                let _ = response.write_to(&mut write_half, false);
                let _ = write_half.shutdown(std::net::Shutdown::Write);
                // The request was rejected mid-send (oversized head, huge
                // Content-Length, …): briefly drain what the client is
                // still writing so closing does not RST the socket and
                // discard the error response before the client reads it.
                // Bounded in both bytes and time so a hostile client
                // cannot pin the worker.
                let _ = write_half.set_read_timeout(Some(Duration::from_millis(200)));
                let mut scratch = [0u8; 4096];
                for _ in 0..64 {
                    match write_half.read(&mut scratch) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                break;
            }
        }
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        &Json::Obj(vec![("error".to_string(), Json::str(message))]),
    )
}

/// The bounded route pattern a request's metrics are labelled with.
/// Model names collapse to `{name}` so one misbehaving client cannot
/// inflate the label space (series cardinality stays fixed).
fn route_label(request: &Request) -> &'static str {
    let segments: Vec<&str> = request
        .target
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match segments.as_slice() {
        [] => "/",
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["models"] => "/models",
        ["models", _] => "/models/{name}",
        ["models", _, "sample"] => "/models/{name}/sample",
        ["stats"] => "/stats",
        ["reload"] => "/reload",
        _ => "other",
    }
}

/// Dispatches one parsed request to its handler.
fn route(service: &Service, request: &Request) -> Response {
    let segments: Vec<&str> = request
        .target
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method, segments.as_slice()) {
        (Method::Get, []) => overview(),
        (Method::Get, ["healthz"]) => Response::json(
            200,
            &Json::Obj(vec![
                ("status".to_string(), Json::str("ok")),
                (
                    "models".to_string(),
                    Json::Num(service.registry.len() as f64),
                ),
            ]),
        ),
        (Method::Get, ["models"]) => list_models(service),
        (Method::Get, ["models", name]) => model_detail(service, name),
        (Method::Get, ["stats"]) => stats(service),
        (Method::Get, ["metrics"]) => metrics_endpoint(service),
        (Method::Post, ["models", name, "sample"]) => sample(service, name, &request.body),
        (Method::Post, ["reload"]) => reload(service),
        // Known paths with the wrong method are 405, unknown paths 404.
        (
            _,
            [] | ["healthz"] | ["models"] | ["models", _] | ["stats"] | ["metrics"] | ["reload"],
        )
        | (Method::Get, ["models", _, "sample"]) => {
            error_response(405, "method not allowed for this path")
        }
        _ => error_response(404, "no such endpoint"),
    }
}

fn overview() -> Response {
    Response::json(
        200,
        &Json::Obj(vec![
            ("service".to_string(), Json::str("p3gm-server")),
            (
                "endpoints".to_string(),
                Json::Arr(
                    [
                        "GET /",
                        "GET /healthz",
                        "GET /models",
                        "GET /models/{name}",
                        "GET /stats",
                        "GET /metrics",
                        "POST /models/{name}/sample",
                        "POST /reload",
                    ]
                    .iter()
                    .map(|e| Json::str(*e))
                    .collect(),
                ),
            ),
        ]),
    )
}

/// The stamp formatted for the constant `x-p3gm-privacy` header.
fn stamp_header(stamp: Option<&PrivacySpec>) -> String {
    match stamp {
        Some(spec) => spec.to_string(),
        None => "non-private".to_string(),
    }
}

fn stamp_json(stamp: Option<&PrivacySpec>) -> Json {
    match stamp {
        Some(spec) => Json::Obj(vec![
            ("epsilon".to_string(), Json::Num(spec.epsilon)),
            ("delta".to_string(), Json::Num(spec.delta)),
            ("optimal_order".to_string(), Json::Num(spec.optimal_order)),
        ]),
        None => Json::Null,
    }
}

/// One model's listing entry, assembled **entirely from its peeked
/// header** — geometry, stamp and budget state require no weight decode,
/// so `GET /models` over a thousand tenants touches no payload bytes.
fn model_json(service: &Service, header: &registry::ModelHeader) -> Json {
    let ledger = service
        .ledger
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let entry = ledger.entry(header.name());
    let budget = Json::Obj(vec![
        ("spent_epsilon".to_string(), Json::Num(entry.spent_epsilon)),
        (
            "budget_epsilon".to_string(),
            ledger.budget_epsilon().map_or(Json::Null, Json::Num),
        ),
        (
            "remaining_epsilon".to_string(),
            ledger
                .remaining(header.name())
                .map_or(Json::Null, Json::Num),
        ),
    ]);
    Json::Obj(vec![
        ("name".to_string(), Json::str(header.name())),
        ("data_dim".to_string(), Json::Num(header.data_dim() as f64)),
        (
            "latent_dim".to_string(),
            Json::Num(header.latent_dim() as f64),
        ),
        (
            "n_classes".to_string(),
            header
                .n_classes()
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        ("privacy".to_string(), stamp_json(header.stamp())),
        (
            "resident".to_string(),
            Json::Bool(service.registry.is_resident(header.name())),
        ),
        ("budget".to_string(), budget),
    ])
}

fn list_models(service: &Service) -> Response {
    let models = service
        .registry
        .list_headers()
        .iter()
        .map(|header| model_json(service, header))
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![("models".to_string(), Json::Arr(models))]),
    )
}

fn model_detail(service: &Service, name: &str) -> Response {
    match service.registry.header(name) {
        Some(header) => Response::json(200, &model_json(service, &header)),
        None => error_response(404, "no such model"),
    }
}

fn stats(service: &Service) -> Response {
    let s = service.registry_snapshot();
    let num = |v: u64| Json::Num(v as f64);
    Response::json(
        200,
        &Json::Obj(vec![
            ("models".to_string(), num(s.models)),
            ("resident_models".to_string(), num(s.resident_models)),
            ("resident_bytes".to_string(), num(s.resident_bytes)),
            ("max_resident_bytes".to_string(), num(s.max_resident_bytes)),
            ("loads".to_string(), num(s.loads)),
            ("evictions".to_string(), num(s.evictions)),
            ("hits".to_string(), num(s.hits)),
            ("misses".to_string(), num(s.misses)),
            ("load_failures".to_string(), num(s.load_failures)),
            ("header_peeks".to_string(), num(s.header_peeks)),
        ]),
    )
}

/// `GET /metrics`: refreshes the scrape-time snapshots (registry
/// residency, per-model budget gauges, thread-pool counters) and renders
/// the whole registry as Prometheus text exposition v0.0.4. Answers 404
/// when metrics are disabled so scrapers fail loudly instead of reading
/// an empty page.
fn metrics_endpoint(service: &Service) -> Response {
    let Some(m) = &service.metrics else {
        return error_response(404, "metrics are disabled on this server");
    };
    // The shared snapshot path also mirrors registry stats into `m`.
    let _ = service.registry_snapshot();
    m.export_pool_stats();
    {
        let ledger = service
            .ledger
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for header in service.registry.list_headers() {
            let name = header.name();
            m.export_ledger(
                name,
                ledger.entry(name).spent_epsilon,
                ledger.remaining(name),
            );
        }
    }
    m.render()
}

fn reload(service: &Service) -> Response {
    match service.registry.reload() {
        Ok(report) => {
            let names = |items: &[String]| Json::Arr(items.iter().map(Json::str).collect());
            Response::json(
                200,
                &Json::Obj(vec![
                    ("loaded".to_string(), names(&report.loaded)),
                    ("unchanged".to_string(), names(&report.unchanged)),
                    ("removed".to_string(), names(&report.removed)),
                    (
                        "failed".to_string(),
                        Json::Arr(
                            report
                                .failed
                                .iter()
                                .map(|(name, reason)| {
                                    Json::Obj(vec![
                                        ("name".to_string(), Json::str(name)),
                                        ("reason".to_string(), Json::str(reason)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            )
        }
        Err(e) => error_response(500, &format!("reload failed: {e}")),
    }
}

/// The parsed, validated body of one sampling request.
#[derive(Debug)]
struct SampleSpec {
    seed: u64,
    n: usize,
    labels: Option<Vec<usize>>,
    csv: bool,
}

/// Validates the JSON body of `POST /models/{name}/sample`. Strict:
/// unknown fields are rejected so a typo'd request fails loudly instead
/// of silently sampling defaults.
fn parse_sample_spec(body: &[u8], max_rows: usize) -> Result<SampleSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Err("a JSON body is required: {\"seed\": <int>, \"n\": <int>}".to_string());
    }
    let value = json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    let members = value.as_obj().ok_or("body must be a JSON object")?;
    for (key, _) in members {
        if !matches!(key.as_str(), "seed" | "n" | "labels" | "format") {
            return Err(format!("unknown field {key:?}"));
        }
    }

    let seed = value
        .get("seed")
        .ok_or("missing required field \"seed\"")?
        .as_u64()
        .ok_or("\"seed\" must be an integer in [0, 2^53]")?;

    // Per-class counts are attacker-controlled: accumulate with checked
    // arithmetic against the row cap, so a crafted array can neither
    // overflow the sum nor smuggle huge counts past the limit.
    let labels: Option<(Vec<usize>, usize)> = match value.get("labels") {
        None => None,
        Some(Json::Arr(items)) => {
            let mut counts = Vec::with_capacity(items.len());
            let mut total: usize = 0;
            for item in items {
                let c = item
                    .as_u64()
                    .ok_or("\"labels\" entries must be non-negative integers")?;
                let c = usize::try_from(c)
                    .map_err(|_| "\"labels\" entry does not fit in usize".to_string())?;
                total = total
                    .checked_add(c)
                    .filter(|&t| t <= max_rows)
                    .ok_or_else(|| {
                        format!("\"labels\" counts sum past the per-request limit ({max_rows})")
                    })?;
                counts.push(c);
            }
            if total == 0 {
                return Err("\"labels\" must request at least one row".to_string());
            }
            Some((counts, total))
        }
        Some(_) => return Err("\"labels\" must be an array of per-class counts".to_string()),
    };

    let n = match (value.get("n"), &labels) {
        (Some(v), _) => {
            let n = v.as_u64().ok_or("\"n\" must be an integer in [0, 2^53]")?;
            usize::try_from(n).map_err(|_| "\"n\" does not fit in usize".to_string())?
        }
        (None, Some((_, total))) => *total,
        (None, None) => return Err("missing required field \"n\"".to_string()),
    };
    if let Some((_, total)) = &labels {
        if *total != n {
            return Err(format!(
                "\"n\" ({n}) must equal the sum of \"labels\" ({total})"
            ));
        }
    }
    if n > max_rows {
        return Err(format!(
            "n ({n}) exceeds the per-request limit ({max_rows})"
        ));
    }

    let csv = match value.get("format") {
        None => false,
        Some(v) => match v.as_str() {
            Some("json") => false,
            Some("csv") => true,
            _ => return Err("\"format\" must be \"json\" or \"csv\"".to_string()),
        },
    };

    Ok(SampleSpec {
        seed,
        n,
        labels: labels.map(|(counts, _)| counts),
        csv,
    })
}

/// The synthesis executor: charges the ledger exactly once, then either
/// streams the rows as chunked `Transfer-Encoding` (plain sampling — the
/// rows are generated chunk by chunk as the socket drains, so first-byte
/// latency and peak memory are bounded by the chunk size, not `n`) or
/// serializes a buffered body (labelled synthesis). De-chunking a
/// streamed body yields exactly the bytes the buffered serializer would
/// have produced.
fn sample(service: &Service, name: &str, body: &[u8]) -> Response {
    // First touch of a cold model decodes it here (single-flight with
    // any concurrent request); the typed failure surface maps to HTTP:
    // unknown name → 404, corrupt snapshot or decode-wait timeout → 503
    // (the file may be repaired and reloaded; the request can be
    // retried).
    let model = match service.registry.get(name) {
        Ok(model) => model,
        Err(RegistryError::NotFound) => return error_response(404, "no such model"),
        Err(e @ (RegistryError::DecodeFailed(_) | RegistryError::LoadTimeout)) => {
            return error_response(503, &e.to_string())
        }
    };
    let spec = match parse_sample_spec(body, service.max_rows) {
        Ok(spec) => spec,
        Err(msg) => return error_response(400, &msg),
    };
    let snapshot = model.snapshot();
    let stamp = snapshot.privacy_stamp().copied();

    // Validate everything a 400 can reject BEFORE charging: a request
    // that cannot possibly be served must never burn budget.
    if let Some(counts) = &spec.labels {
        match snapshot.synthesizer() {
            None => {
                return error_response(400, "model has no labelled synthesizer attached");
            }
            Some(s) if counts.len() != s.n_classes() => {
                return error_response(
                    400,
                    &format!(
                        "expected {} class counts in \"labels\", got {}",
                        s.n_classes(),
                        counts.len()
                    ),
                );
            }
            Some(_) => {}
        }
    }

    // Charge the budget before any synthesis work: a refused request
    // must not cost compute, and a served request must be durably
    // recorded first (crash-safety favors over-counting).
    let (epsilon, delta) = stamp.map_or((0.0, 0.0), |s| (s.epsilon, s.delta));
    let charged = {
        let mut ledger = service
            .ledger
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ledger.charge(name, epsilon, delta)
    };
    let entry = match charged {
        Ok(entry) => entry,
        Err(LedgerError::Exhausted {
            spent,
            budget,
            remaining,
        }) => {
            if let Some(m) = &service.metrics {
                m.budget_denial(name);
            }
            return Response::json(
                429,
                &Json::Obj(vec![
                    (
                        "error".to_string(),
                        Json::str("privacy budget exhausted for this model"),
                    ),
                    ("model".to_string(), Json::str(name)),
                    ("spent_epsilon".to_string(), Json::Num(spent)),
                    ("budget_epsilon".to_string(), Json::Num(budget)),
                    ("remaining_epsilon".to_string(), Json::Num(remaining)),
                ]),
            );
        }
        Err(e) => return error_response(500, &format!("budget ledger failure: {e}")),
    };

    let response = match &spec.labels {
        None => stream_rows(model.clone(), name, &spec),
        Some(counts) => match snapshot.synthesize_labelled(spec.seed, counts) {
            Ok((rows, labels)) => render_rows(name, &spec, &rows, Some(&labels)),
            // Client-rejectable conditions were all checked before the
            // charge; anything left is an internal failure.
            Err(e) => return error_response(500, &format!("labelled synthesis failed: {e}")),
        },
    };

    let remaining = {
        let ledger = service
            .ledger
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ledger.remaining(name)
    };
    response
        .with_header("x-p3gm-privacy", stamp_header(stamp.as_ref()))
        .with_header("x-p3gm-epsilon-spent", entry.spent_epsilon.to_string())
        .with_header(
            "x-p3gm-epsilon-remaining",
            remaining.map_or("unlimited".to_string(), |r| r.to_string()),
        )
}

/// One row as a compact JSON array, through the same shortest-round-trip
/// `f64` formatting as [`Json`]'s serializer — the streamed body must be
/// byte-identical to what the buffered serializer would produce.
fn json_row(out: &mut String, row: &[f64]) {
    out.push('[');
    let mut first = true;
    for &v in row {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&Json::Num(v).to_string());
    }
    out.push(']');
}

/// One row as a CSV line (newline included), optionally with the label
/// appended as the last column.
fn csv_row(out: &mut String, row: &[f64], label: Option<usize>) {
    let mut first = true;
    for v in row {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&v.to_string());
    }
    if let Some(label) = label {
        if !first {
            out.push(',');
        }
        out.push_str(&label.to_string());
    }
    out.push('\n');
}

/// The JSON body prefix up to (and including) the opening `[` of the
/// rows array — shared by the streamed and buffered serializers.
fn json_body_prefix(name: &str, seed: u64, n: usize) -> String {
    format!(
        "{{\"model\":{},\"seed\":{},\"n\":{},\"rows\":[",
        Json::str(name),
        Json::Num(seed as f64),
        Json::Num(n as f64),
    )
}

/// A chunked streaming response for a plain (unlabelled) sampling
/// request: each chunk serializes up to [`STREAM_CHUNK_ROWS`] rows that
/// are generated — via the core chunked sampler — only when the previous
/// chunk has been handed to the socket. The `Arc` keeps the model alive
/// for the stream's whole lifetime, so a hot reload mid-stream never
/// yanks the snapshot out from under the response.
fn stream_rows(model: Arc<LoadedModel>, name: &str, spec: &SampleSpec) -> Response {
    let content_type = if spec.csv {
        "text/csv"
    } else {
        "application/json"
    };
    let (seed, n, csv) = (spec.seed, spec.n, spec.csv);
    let prefix = if csv {
        String::new()
    } else {
        json_body_prefix(name, seed, n)
    };
    // Stream state: Some(prefix) until the prefix chunk is emitted, then
    // row chunks tracked by `next_row`, then the suffix, then None.
    let mut prefix = Some(prefix);
    let mut next_row = 0usize;
    let mut suffix_pending = !csv;
    let source = move || {
        if let Some(p) = prefix.take() {
            return Some(p.into_bytes());
        }
        if next_row < n {
            let rows = STREAM_CHUNK_ROWS.min(n - next_row);
            let chunk = model.snapshot().sample_rows(seed, next_row, rows);
            let mut out = String::new();
            for (i, row) in chunk.row_iter().enumerate() {
                if csv {
                    csv_row(&mut out, row, None);
                } else {
                    if next_row + i > 0 {
                        out.push(',');
                    }
                    json_row(&mut out, row);
                }
            }
            next_row += rows;
            return Some(out.into_bytes());
        }
        if suffix_pending {
            suffix_pending = false;
            return Some(b"]}".to_vec());
        }
        None
    };
    Response::chunked(content_type, Box::new(source))
}

/// Serializes sampled rows deterministically into a buffered body. JSON
/// and CSV both print values through Rust's shortest-round-trip `f64`
/// formatting, so equal samples are equal bytes and parsing a value back
/// yields the identical bit pattern. De-chunking a streamed response
/// yields exactly these bytes for the same rows.
fn render_rows(name: &str, spec: &SampleSpec, rows: &Matrix, labels: Option<&[usize]>) -> Response {
    if spec.csv {
        let mut out = String::new();
        for (i, row) in rows.row_iter().enumerate() {
            csv_row(
                &mut out,
                row,
                labels.map(|l| l.get(i).copied().unwrap_or(0)),
            );
        }
        Response::csv(out)
    } else {
        let mut out = json_body_prefix(name, spec.seed, rows.rows());
        for (i, row) in rows.row_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_row(&mut out, row);
        }
        out.push(']');
        if let Some(labels) = labels {
            out.push_str(",\"labels\":[");
            for (i, &l) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&Json::Num(l as f64).to_string());
            }
            out.push(']');
        }
        out.push('}');
        Response {
            status: 200,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: ResponseBody::Buffered(out.into_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_core_selection_spellings() {
        assert_eq!(ServerCore::parse(None), ServerCore::Reactor);
        assert_eq!(ServerCore::parse(Some("reactor")), ServerCore::Reactor);
        assert_eq!(ServerCore::parse(Some("")), ServerCore::Reactor);
        for spelling in ["thread", "thread-per-connection", "threaded"] {
            assert_eq!(
                ServerCore::parse(Some(spelling)),
                ServerCore::ThreadPerConnection,
                "{spelling}"
            );
        }
    }

    #[test]
    fn sample_spec_validation() {
        let ok = parse_sample_spec(br#"{"seed": 7, "n": 10}"#, 100).unwrap();
        assert_eq!((ok.seed, ok.n, ok.csv), (7, 10, false));
        assert!(ok.labels.is_none());

        let labelled = parse_sample_spec(br#"{"seed": 1, "labels": [6, 4]}"#, 100).unwrap();
        assert_eq!(labelled.n, 10);
        assert_eq!(labelled.labels, Some(vec![6, 4]));

        let csv = parse_sample_spec(br#"{"seed": 1, "n": 2, "format": "csv"}"#, 100).unwrap();
        assert!(csv.csv);

        for bad in [
            &br#""#[..],
            br#"not json"#,
            br#"[1]"#,
            br#"{"n": 10}"#,
            br#"{"seed": -1, "n": 10}"#,
            br#"{"seed": 1.5, "n": 10}"#,
            br#"{"seed": 1}"#,
            br#"{"seed": 1, "n": 101}"#,
            br#"{"seed": 1, "n": 9, "labels": [6, 4]}"#,
            br#"{"seed": 1, "labels": "six"}"#,
            br#"{"seed": 1, "labels": [1.5]}"#,
            br#"{"seed": 1, "labels": [0, 0]}"#,
            br#"{"seed": 1, "labels": [90, 90]}"#,
            br#"{"seed": 1, "n": 2, "format": "xml"}"#,
            br#"{"seed": 1, "n": 2, "typo": true}"#,
        ] {
            assert!(parse_sample_spec(bad, 100).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn seed_at_the_exact_f64_integer_limit_is_accepted() {
        let spec = parse_sample_spec(br#"{"seed": 9007199254740992, "n": 1}"#, 10).unwrap();
        assert_eq!(spec.seed, 1 << 53);
    }

    #[test]
    fn label_counts_cannot_overflow_the_row_cap() {
        // Many maximal counts: the checked accumulation must reject at the
        // cap instead of overflowing usize (a panic in debug builds, a
        // wrapped sum bypassing max_rows in release).
        let mut body = String::from(r#"{"seed": 1, "labels": ["#);
        for i in 0..64 {
            if i > 0 {
                body.push(',');
            }
            body.push_str("9007199254740992");
        }
        body.push_str("]}");
        let err = parse_sample_spec(body.as_bytes(), 100).unwrap_err();
        assert!(err.contains("per-request limit"), "{err}");
    }

    #[test]
    fn csv_rendering_is_deterministic() {
        let rows = Matrix::from_rows(&[vec![0.5, 1.0 / 3.0], vec![-1.25, 2.0]]).unwrap();
        let spec = SampleSpec {
            seed: 1,
            n: 2,
            labels: None,
            csv: true,
        };
        let a = render_rows("m", &spec, &rows, None).into_body_bytes();
        let b = render_rows("m", &spec, &rows, None).into_body_bytes();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert_eq!(text, format!("0.5,{}\n-1.25,2\n", 1.0 / 3.0));
        // With labels appended as the last column.
        let labelled = render_rows("m", &spec, &rows, Some(&[1, 0])).into_body_bytes();
        let text = String::from_utf8(labelled).unwrap();
        assert!(text.ends_with(",0\n"));
        assert!(text.contains("0.5,"));
    }

    #[test]
    fn json_rendering_round_trips_row_values_bit_exactly() {
        let rows = Matrix::from_rows(&[vec![0.1, 1.0 / 3.0, -2.5e-7]]).unwrap();
        let spec = SampleSpec {
            seed: 9,
            n: 1,
            labels: None,
            csv: false,
        };
        let resp = render_rows("m", &spec, &rows, None);
        let body = String::from_utf8(resp.into_body_bytes()).unwrap();
        let parsed = json::parse(&body).unwrap();
        let row = parsed.get("rows").unwrap().as_arr().unwrap()[0]
            .as_arr()
            .unwrap();
        for (got, want) in row.iter().zip(rows.row(0)) {
            assert_eq!(got.as_f64().unwrap().to_bits(), want.to_bits());
        }
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(9));
    }

    #[test]
    fn hand_rolled_json_body_matches_the_json_serializer() {
        // The streamed/buffered sample body is assembled by hand (so it
        // can stream); it must stay byte-identical to serializing the
        // equivalent Json value tree.
        let rows = Matrix::from_rows(&[vec![0.1, -2.5e-7], vec![1.0 / 3.0, 4.0]]).unwrap();
        let spec = SampleSpec {
            seed: 42,
            n: 2,
            labels: None,
            csv: false,
        };
        let body = render_rows("na\"me", &spec, &rows, Some(&[1, 0])).into_body_bytes();
        let tree = Json::Obj(vec![
            ("model".to_string(), Json::str("na\"me")),
            ("seed".to_string(), Json::Num(42.0)),
            ("n".to_string(), Json::Num(2.0)),
            (
                "rows".to_string(),
                Json::Arr(
                    rows.row_iter()
                        .map(|row| Json::Arr(row.iter().map(|&v| Json::Num(v)).collect()))
                        .collect(),
                ),
            ),
            (
                "labels".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(0.0)]),
            ),
        ]);
        assert_eq!(String::from_utf8(body).unwrap(), tree.to_string());
    }
}
