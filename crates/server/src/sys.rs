//! The workspace's one sanctioned `unsafe` site: a minimal `poll(2)`
//! FFI shim (plus the self-pipe waker built on safe `UnixStream`s) for
//! the reactor core.
//!
//! ## Why FFI, and why here
//!
//! The reactor multiplexes thousands of nonblocking sockets from one
//! thread. The tentpole offered two mechanisms: (a) a pure-std
//! level-triggered scan loop (one `peek` syscall per socket per pass —
//! O(connections) userspace work even when nothing is ready), or (b) a
//! confined `poll(2)` shim — one syscall per pass, O(ready) results,
//! and real `POLLOUT` write-readiness so a blocked response write parks
//! until the peer drains instead of being re-probed. This file is
//! choice (b). `std` already links the platform C library on every Unix
//! target, so declaring `poll` adds **no dependency** — only this one
//! `extern` block and one `unsafe` call, both confined here.
//!
//! The confinement is machine-checked: conform rule D5 pairs this file
//! with the crate root's `#![deny(unsafe_code)]` — any `unsafe` token in
//! a *different* `crates/server` file is a D5 violation (see
//! `p3gm_conform::rules::D5_SHIM_EXEMPT`), mirroring how rule D2
//! confines wall-clock reads to `crates/obs/src/time.rs`.
#![allow(unsafe_code)]

use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// There is data to read.
pub(crate) const POLLIN: i16 = 0x001;
/// Writing will not block.
pub(crate) const POLLOUT: i16 = 0x004;
/// Error condition (always polled; only meaningful in `revents`).
pub(crate) const POLLERR: i16 = 0x008;
/// Peer hung up (only meaningful in `revents`).
pub(crate) const POLLHUP: i16 = 0x010;
/// The fd is not open (only meaningful in `revents`).
pub(crate) const POLLNVAL: i16 = 0x020;

/// `struct pollfd` from `<poll.h>`, bit-compatible by `repr(C)` (the
/// layout is identical on every Unix libc: int fd, short events, short
/// revents).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    pub(crate) fd: RawFd,
    pub(crate) events: i16,
    pub(crate) revents: i16,
}

impl PollFd {
    /// A poll entry watching `fd` for `events`.
    pub(crate) fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `mask` (or an error/hangup
    /// condition, which always needs handling).
    pub(crate) fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one entry in `fds` is ready, the timeout
/// elapses (`Ok(0)`), or a signal interrupts the wait (also `Ok(0)` —
/// the caller's loop re-evaluates deadlines either way). `None` waits
/// indefinitely. Sub-millisecond timeouts round **up** so a deadline
/// wait can never busy-spin.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    let timeout_ms: c_int = match timeout {
        None => -1,
        Some(d) => {
            let ms = d.saturating_add(Duration::from_nanos(999_999)).as_millis();
            c_int::try_from(ms).unwrap_or(c_int::MAX)
        }
    };
    // SAFETY: `fds` is an exclusively borrowed slice of `repr(C)`
    // pollfd-layout structs; the pointer and length describe exactly
    // that allocation for the duration of the call, and `poll` writes
    // only within it (the `revents` fields).
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc < 0 {
        let err = std::io::Error::last_os_error();
        if err.kind() == std::io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// The reactor's wake-up channel: a nonblocking `UnixStream` pair whose
/// read end sits in the poll set. Executor threads and the shutdown path
/// write one byte to interrupt a parked `poll`; the reactor drains the
/// pipe on wake. Entirely safe code — it lives here because it is part
/// of the same platform shim surface.
pub(crate) struct Waker {
    rx: UnixStream,
    tx: Arc<UnixStream>,
}

impl Waker {
    /// A connected, nonblocking waker pair.
    pub(crate) fn new() -> std::io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker {
            rx,
            tx: Arc::new(tx),
        })
    }

    /// The fd the reactor registers for `POLLIN`.
    pub(crate) fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// A cloneable handle that wakes the reactor.
    pub(crate) fn handle(&self) -> WakeHandle {
        WakeHandle(Arc::clone(&self.tx))
    }

    /// Discards every pending wake byte (level-triggered poll would
    /// otherwise re-report the pipe forever).
    pub(crate) fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Wakes the reactor out of `poll`. A full pipe means a wake is already
/// pending, so the dropped write is harmless.
#[derive(Clone)]
pub(crate) struct WakeHandle(Arc<UnixStream>);

impl WakeHandle {
    pub(crate) fn wake(&self) {
        let _ = (&*self.0).write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_reports_readiness_and_timeouts() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // Nothing written yet: a short wait times out with zero ready.
        let n = poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].ready(POLLIN));
        // One byte makes the read end level-triggered readable.
        (&b).write_all(&[7]).unwrap();
        fds[0].revents = 0;
        let n = poll_fds(&mut fds, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
        // A stream socket is immediately writable.
        let mut wfds = [PollFd::new(b.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut wfds, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(n, 1);
        assert!(wfds[0].ready(POLLOUT));
    }

    #[test]
    fn waker_round_trip_wakes_and_drains() {
        let waker = Waker::new().unwrap();
        let handle = waker.handle();
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        assert_eq!(
            poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap(),
            0
        );
        handle.wake();
        handle.wake();
        fds[0].revents = 0;
        assert_eq!(
            poll_fds(&mut fds, Some(Duration::from_millis(1000))).unwrap(),
            1
        );
        waker.drain();
        // Drained: the next wait times out again.
        fds[0].revents = 0;
        assert_eq!(
            poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap(),
            0
        );
    }
}
